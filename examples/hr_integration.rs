//! Integrating two conflicting HR systems.
//!
//! The paper's introduction motivates inconsistency with the integration
//! of conflicting sources. This example merges two payroll exports that
//! disagree on departments and salaries, then uses approximate CQA to
//! rank answers by how *likely* they are to be consistent — strictly more
//! informative than the certain-answer yes/no.
//!
//! Run with: `cargo run --release --example hr_integration`

use cqa::prelude::*;

fn main() -> Result<()> {
    let schema = Schema::builder()
        .relation(
            "employee",
            &[
                ("id", ColumnType::Int),
                ("name", ColumnType::Str),
                ("dept", ColumnType::Str),
                ("salary", ColumnType::Int),
            ],
            Some(1),
        )
        .relation(
            "dept",
            &[("dname", ColumnType::Str), ("head", ColumnType::Str), ("budget", ColumnType::Int)],
            Some(1),
        )
        .foreign_key("employee", &["dept"], "dept", &["dname"])
        .build();
    let mut db = Database::new(schema);

    // Source A: the HR system of record.
    let source_a: &[(i64, &str, &str, i64)] = &[
        (1, "Ada", "Engineering", 120),
        (2, "Grace", "Engineering", 130),
        (3, "Edsger", "Research", 110),
        (4, "Barbara", "Research", 115),
        (5, "Donald", "Publishing", 95),
    ];
    // Source B: a stale payroll export — same ids, some different values.
    let source_b: &[(i64, &str, &str, i64)] = &[
        (1, "Ada", "Research", 120),        // dept conflict
        (2, "Grace", "Engineering", 125),   // salary conflict
        (3, "Edsger", "Research", 110),     // agrees
        (4, "Barbara", "Engineering", 115), // dept conflict
        (5, "Donald", "Publishing", 95),    // agrees
    ];
    for src in [source_a, source_b] {
        for &(id, name, dept, salary) in src {
            db.insert_named(
                "employee",
                &[Value::Int(id), Value::str(name), Value::str(dept), Value::Int(salary)],
            )?;
        }
    }
    for (dname, head, budget) in
        [("Engineering", "Grace", 900), ("Research", "Barbara", 700), ("Publishing", "Donald", 300)]
    {
        db.insert_named("dept", &[Value::str(dname), Value::str(head), Value::Int(budget)])?;
    }

    println!("merged database: {} facts, consistent = {}", db.fact_count(), is_consistent(&db));
    println!("repairs: {}", db.repair_count());

    // Which employees work in a department headed by Grace, and how likely
    // is each answer across the repairs?
    let q = parse(db.schema(), "Q(n) :- employee(id, n, d, s), dept(d, 'Grace', b)")?;
    println!("\nquery: {}", q.display(db.schema()));

    let mut rng = Mt64::new(7);
    let res = apx_cqa(&db, &q, Scheme::Klm, 0.1, 0.25, &Budget::unbounded(), &mut rng)?;
    let mut ranked = res.answers.clone();
    ranked.sort_by(|a, b| b.frequency.partial_cmp(&a.frequency).expect("finite"));
    println!("answers ranked by relative frequency:");
    for te in &ranked {
        let verdict = if te.frequency > 0.999 {
            "certain"
        } else if te.frequency >= 0.5 {
            "likely"
        } else {
            "possible"
        };
        println!("  {:<12} {:>6.1}%  ({verdict})", db.fmt_tuple(&te.tuple), te.frequency * 100.0);
    }

    // Compare against exact ground truth (small enough to enumerate).
    let exact = consistent_answers_exact(&db, &q, 100_000)?;
    println!("\nexact check:");
    for (t, f) in &exact {
        println!("  {:<12} {:>6.1}%", db.fmt_tuple(t), f * 100.0);
    }
    Ok(())
}
