//! Quickstart: the paper's Example 1.1, end to end.
//!
//! An `Employee(id, name, dept)` relation keyed on `id` holds conflicting
//! facts about Bob's department and employee 2's name. Classical certain
//! answers can only say "not certain"; the relative frequency tells us the
//! query holds in exactly 50% of the repairs — and all four approximation
//! schemes recover that number.
//!
//! Run with: `cargo run --release --example quickstart`

use cqa::prelude::*;

fn main() -> Result<()> {
    // Schema: the first column (`id`) is the primary key.
    let schema = Schema::builder()
        .relation(
            "employee",
            &[("id", ColumnType::Int), ("name", ColumnType::Str), ("dept", ColumnType::Str)],
            Some(1),
        )
        .build();
    let mut db = Database::new(schema);
    for (id, name, dept) in
        [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT")]
    {
        db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])?;
    }

    println!("database ({} facts):", db.fact_count());
    println!("  consistent w.r.t. the key? {}", is_consistent(&db));
    println!("  repairs: {}", db.repair_count());

    // "Do employees 1 and 2 work in the same department?"
    let q = parse(db.schema(), "Q() :- employee(1, n1, d), employee(2, n2, d)")?;
    println!("\nquery: {}", q.display(db.schema()));

    // Ground truth by brute-force repair enumeration (only viable because
    // this example has 4 repairs; the problem is #P-hard in general).
    let exact = relative_frequency_exact(&db, &q, &[], 1000)?;
    println!("exact relative frequency: {exact}");

    // All four approximation schemes, ε = 0.1, δ = 0.25.
    let mut rng = Mt64::new(2021);
    for scheme in ALL_SCHEMES {
        let res = apx_cqa(&db, &q, scheme, 0.1, 0.25, &Budget::unbounded(), &mut rng)?;
        let est = res.answers[0].frequency;
        println!(
            "{:>8}: estimate {est:.4} ({} samples, {:?} scheme time)",
            scheme.name(),
            res.total_samples,
            res.scheme_time
        );
    }

    // A non-Boolean query: how likely is each name for employee 2?
    let q2 = parse(db.schema(), "Q(n) :- employee(2, n, d)")?;
    println!("\nquery: {}", q2.display(db.schema()));
    let res = apx_cqa(&db, &q2, Scheme::Klm, 0.1, 0.25, &Budget::unbounded(), &mut rng)?;
    for te in &res.answers {
        println!("  {} -> {:.4}", db.fmt_tuple(&te.tuple), te.frequency);
    }
    Ok(())
}
