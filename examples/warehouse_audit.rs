//! Auditing a noisy data warehouse.
//!
//! Generates a TPC-H-like warehouse, injects query-aware key violations
//! (the paper's noise generator, §6.1), and runs a reporting query under
//! all four approximation schemes — the full pipeline of the benchmark in
//! miniature, with synopsis statistics and per-scheme timings printed.
//!
//! Run with: `cargo run --release --example warehouse_audit`

use cqa::noise::{add_query_aware_noise, NoiseSpec};
use cqa::prelude::*;
use cqa::tpch::{generate, TpchConfig};

fn main() -> Result<()> {
    let db = generate(TpchConfig { scale: 0.001, seed: 1234 });
    println!("warehouse: {} facts over {} relations", db.fact_count(), db.schema().len());

    // A reporting query: which market segments bought which priorities?
    let q = parse(
        db.schema(),
        "Q(seg, pr) :- customer(ck, cn, nk, seg, bal), orders(ok, ck, st, tp, od, pr, cl)",
    )?;
    println!("query: {}\n", q.display(db.schema()));

    // Inject 50% query-aware noise with block sizes in [2, 5].
    let mut rng = Mt64::new(5678);
    let (noisy, report) = add_query_aware_noise(&db, &q, NoiseSpec::with_p(0.5), &mut rng)?;
    println!("noise report (relation, relevant, selected, added):");
    for (name, relevant, selected, added) in &report.per_relation {
        println!("  {name:<10} {relevant:>6} {selected:>6} {added:>6}");
    }
    println!("total facts now: {} (consistent = {})", noisy.fact_count(), is_consistent(&noisy));
    println!("repairs: {}\n", noisy.repair_count());

    // Preprocessing: one synopsis pass shared by every scheme.
    let syn = build_synopses(&noisy, &q, BuildOptions::default())?;
    let stats = SynopsisStats::of(&syn);
    println!(
        "synopses: {} answers, homomorphic size {}, balance {:.2}, built in {:.3}s",
        stats.output_size, stats.hom_size, stats.balance, stats.build_secs
    );

    // All four schemes with a 30s safety budget.
    println!("\n{:>8} {:>10} {:>14} {:>12}", "scheme", "time (s)", "samples", "max |est-f|");
    let mut reference: Option<Vec<(Vec<Datum>, f64)>> = None;
    for scheme in ALL_SCHEMES {
        let mut rng = Mt64::new(42);
        let budget = Budget::with_timeout_secs(30.0);
        let sw = std::time::Instant::now();
        let res = cqa::core::apx_cqa_on_synopses(&syn, scheme, 0.1, 0.25, &budget, &mut rng)?;
        let secs = sw.elapsed().as_secs_f64();
        // Agreement across schemes: compare against the first scheme's
        // estimates (they all target the same frequencies).
        let max_dev = match &reference {
            None => {
                reference =
                    Some(res.answers.iter().map(|t| (t.tuple.clone(), t.frequency)).collect());
                0.0
            }
            Some(reference) => res
                .answers
                .iter()
                .map(|te| {
                    reference
                        .iter()
                        .find(|(t, _)| *t == te.tuple)
                        .map(|(_, f)| (te.frequency - f).abs())
                        .unwrap_or(1.0)
                })
                .fold(0.0f64, f64::max),
        };
        println!("{:>8} {:>10.3} {:>14} {:>12.4}", scheme.name(), secs, res.total_samples, max_dev);
    }

    // The five most and least reliable answers under KLM.
    let mut rng = Mt64::new(43);
    let res = cqa::core::apx_cqa_on_synopses(
        &syn,
        Scheme::Klm,
        0.1,
        0.25,
        &Budget::with_timeout_secs(30.0),
        &mut rng,
    )?;
    let mut ranked = res.answers.clone();
    ranked.sort_by(|a, b| b.frequency.partial_cmp(&a.frequency).expect("finite"));
    println!("\nmost reliable answers:");
    for te in ranked.iter().take(5) {
        println!("  {:<40} {:>6.1}%", noisy.fmt_tuple(&te.tuple), te.frequency * 100.0);
    }
    println!("least reliable answers:");
    for te in ranked.iter().rev().take(5) {
        println!("  {:<40} {:>6.1}%", noisy.fmt_tuple(&te.tuple), te.frequency * 100.0);
    }
    Ok(())
}
