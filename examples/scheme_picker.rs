//! Picking the right approximation scheme from synopsis statistics.
//!
//! The paper's take-home messages (§7.2) give a decision rule: after the
//! (cheap, scheme-independent) preprocessing step, look at the synopsis
//! statistics — Boolean/low-balance inputs want `Natural`, everything
//! else wants `KLM`. This example implements that rule and shows it
//! picking correctly on two contrasting workloads.
//!
//! Run with: `cargo run --release --example scheme_picker`

use cqa::prelude::*;
use cqa::synopsis::SynopsisSet;

/// The paper's decision rule (§7.2): `Natural` for Boolean / near-zero
/// balance inputs, `KLM` otherwise.
fn recommend(stats: &SynopsisStats) -> Scheme {
    if stats.balance < 0.05 {
        Scheme::Natural
    } else {
        Scheme::Klm
    }
}

fn time_all(syn: &SynopsisSet) -> Result<Vec<(Scheme, f64)>> {
    let mut out = Vec::new();
    for scheme in ALL_SCHEMES {
        let mut rng = Mt64::new(99);
        let sw = std::time::Instant::now();
        cqa::core::apx_cqa_on_synopses(
            syn,
            scheme,
            0.1,
            0.25,
            &Budget::with_timeout_secs(60.0),
            &mut rng,
        )?;
        out.push((scheme, sw.elapsed().as_secs_f64()));
    }
    Ok(out)
}

fn analyze(db: &Database, q: &ConjunctiveQuery, label: &str) -> Result<()> {
    println!("── {label}: {}", q.display(db.schema()));
    let syn = build_synopses(db, q, BuildOptions::default())?;
    let stats = SynopsisStats::of(&syn);
    println!(
        "   output size {}, homomorphic size {}, balance {:.2}",
        stats.output_size, stats.hom_size, stats.balance
    );
    let pick = recommend(&stats);
    println!("   recommendation: {pick}");
    let timings = time_all(&syn)?;
    let best =
        timings.iter().min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite")).expect("non-empty");
    for (scheme, secs) in &timings {
        let marker = if *scheme == pick { "  <- recommended" } else { "" };
        println!("   {:>8}: {secs:>8.4}s{marker}", scheme.name());
    }
    println!(
        "   fastest was {} — recommendation {}\n",
        best.0,
        if best.0 == pick { "CORRECT" } else { "different (small inputs can tie)" }
    );
    Ok(())
}

fn main() -> Result<()> {
    // A database with wide blocks so the contrast is visible.
    let schema = Schema::builder()
        .relation("reading", &[("sensor", ColumnType::Int), ("value", ColumnType::Int)], Some(1))
        .relation(
            "alarm",
            &[("aid", ColumnType::Int), ("sensor", ColumnType::Int), ("level", ColumnType::Int)],
            Some(1),
        )
        .foreign_key("alarm", &["sensor"], "reading", &["sensor"])
        .build();
    let mut db = Database::new(schema);
    let mut rng = Mt64::new(1);
    // 40 sensors, each reporting 3 conflicting values (blocks of size 3).
    for s in 0..40 {
        for _ in 0..3 {
            db.insert_named("reading", &[Value::Int(s), Value::Int(rng.below(10) as i64)])?;
        }
    }
    // 120 alarms with 2 conflicting rows each.
    for a in 0..120 {
        for _ in 0..2 {
            db.insert_named(
                "alarm",
                &[Value::Int(a), Value::Int(rng.below(40) as i64), Value::Int(rng.below(4) as i64)],
            )?;
        }
    }

    // Boolean workload: is any sensor reading 7 while alarmed at level 3?
    let boolean = parse(db.schema(), "Q() :- reading(s, 7), alarm(a, s, 3)")?;
    analyze(&db, &boolean, "Boolean monitoring check")?;

    // Non-Boolean workload: per-alarm sensor values (high balance).
    let wide = parse(db.schema(), "Q(a, v) :- alarm(a, s, l), reading(s, v)")?;
    analyze(&db, &wide, "Per-alarm report")?;
    Ok(())
}
