// The same logic shedding errors instead of panicking. The test-module
// `.unwrap()` is fine: `#[cfg(test)]` items are outside the request path.
fn handle(x: Option<u32>) -> Result<u32, String> {
    match x {
        Some(v) if v <= 10 => Ok(v),
        Some(v) => Err(format!("too big: {v}")),
        None => Err("missing".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn small_values_pass() {
        assert_eq!(super::handle(Some(3)).unwrap(), 3);
    }
}
