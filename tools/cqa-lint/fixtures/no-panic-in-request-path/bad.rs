// Two request-path panics: an `.unwrap()` and a `panic!`.
fn handle(x: Option<u32>) -> u32 {
    let v = x.unwrap();
    if v > 10 {
        panic!("too big");
    }
    v
}
