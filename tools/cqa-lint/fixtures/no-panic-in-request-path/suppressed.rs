// A reviewed suppression: the finding on the next line is waived.
fn startup_only(x: Option<u32>) -> u32 {
    // cqa-lint: allow(no-panic-in-request-path): runs before the listener binds
    x.unwrap()
}
