// All randomness forks from the caller's seeded root generator.
pub fn sample_loop(root: &mut Mt64) -> u64 {
    let mut local = root.fork();
    local.next_u64()
}
