// Two randomness violations: ambient entropy, and a fresh root RNG
// constructed inside a sampling-reachable fn instead of forked from the
// seeded root.
pub fn sample_loop() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn fresh_generator() -> u64 {
    let mut rng = Mt64::new(42);
    rng.next_u64()
}
