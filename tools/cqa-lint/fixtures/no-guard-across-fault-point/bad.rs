//! Guards held across fault points, directly and through a callee: an
//! injected delay at either point stalls every `TABLE` contender, and an
//! injected panic poisons the lock.

use crate::sync::Mutex;

pub static TABLE: Mutex<u32> = Mutex::new(0);

pub fn rebuild() -> u32 {
    let g = TABLE.lock();
    fault_point!("demo/parse");
    *g
}

pub fn persist() -> u32 {
    let g = TABLE.lock();
    flush_side(*g)
}

fn flush_side(n: u32) -> u32 {
    fault_point!("demo/write");
    n
}
