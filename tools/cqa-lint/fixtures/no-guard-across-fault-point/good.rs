//! Fault points fire lock-free: before the guard exists, or after a
//! one-line temporary has already released it.

use crate::sync::Mutex;

pub static TABLE: Mutex<u32> = Mutex::new(0);

pub fn rebuild() -> u32 {
    fault_point!("demo/parse");
    let g = TABLE.lock();
    *g
}

pub fn probe() -> u32 {
    let n = *TABLE.lock();
    fault_point!("demo/write");
    n
}
