// Miniature name registry the fixture tests lint against.
pub const SPANS: &[&str] = &["server/request", "demo/work"];
pub const METRICS: &[&str] = &["server_requests_total"];
pub const SERIES: &[&str] = &["demo/build_ns", "demo/throughput_rps"];
pub const FIELDS: &[&str] = &["request_id", "total_us"];
pub const POINTS: &[&str] = &["demo/parse", "demo/write"];
pub const VALIDATORS: &[&str] = &["capped_u64"];
