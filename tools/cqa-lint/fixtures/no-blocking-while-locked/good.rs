//! The guard is dropped before any blocking work, and a one-line
//! temporary never extends over the statements that follow it.

use crate::sync::Mutex;
use std::sync::mpsc::Receiver;

pub static STATE: Mutex<u32> = Mutex::new(0);

pub fn drain(rx: &Receiver<u32>) -> u32 {
    let mut g = STATE.lock();
    *g += 1;
    drop(g);
    let got = rx.recv().unwrap_or(0);
    let n = *STATE.lock();
    n + got
}
