//! Blocking work under a held request-path guard: a second lock
//! acquisition, a channel recv, and a sleep, all inside the `STATE` span.

use crate::sync::Mutex;
use std::sync::mpsc::Receiver;
use std::time::Duration;

pub static STATE: Mutex<u32> = Mutex::new(0);
pub static AUX: Mutex<u32> = Mutex::new(0);

pub fn drain(rx: &Receiver<u32>) -> u32 {
    let mut g = STATE.lock();
    let aux = AUX.lock();
    let got = rx.recv().unwrap_or(0);
    std::thread::sleep(Duration::from_millis(1));
    *g += got + *aux;
    *g
}
