// Three malformed suppressions: no reason, unknown rule, and an attempt
// to suppress the hygiene rule itself.
fn startup_only(x: Option<u32>) -> u32 {
    // cqa-lint: allow(no-panic-in-request-path)
    x.unwrap()
}

// cqa-lint: allow(made-up-rule): confidently wrong
fn misspelled() {}

fn meta() {
    // cqa-lint: allow(suppression-needs-reason): nice try
}
