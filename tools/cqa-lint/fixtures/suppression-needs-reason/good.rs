// A well-formed suppression: rule plus a justification clause.
fn startup_only(x: Option<u32>) -> u32 {
    // cqa-lint: allow(no-panic-in-request-path): runs before the listener binds, so no request thread exists yet
    x.unwrap()
}
