// A marked sampling region whose only allocation happens inside a
// helper defined in another module.
pub struct Sampler {
    n: usize,
}

impl Sampler {
    // cqa-lint: hot-path begin
    pub fn sample(&mut self) -> usize {
        tabulate(self.n)
    }
    // cqa-lint: hot-path end
}
