//! Other half of the seeded ABBA cycle: the pool takes its queue lock and
//! then calls back into the cache, which retakes the shard lock — so the
//! order graph holds `Cache.shard → Pool.queue` and `Pool.queue →
//! Cache.shard` with one reconstructed acquisition path per direction.

use crate::sync::Mutex;

pub struct Pool {
    queue: Mutex<u32>,
}

impl Pool {
    pub fn reserve_worker(&self) -> u32 {
        let q = self.queue.lock();
        *q
    }

    pub fn shed(&self, cache: &Cache) -> u32 {
        let q = self.queue.lock();
        cache.refresh();
        *q
    }
}
