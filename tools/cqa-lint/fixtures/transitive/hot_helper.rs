// The helper allocates; the hot region that calls it lives in another
// file entirely.
pub fn tabulate(n: usize) -> usize {
    let buf: Vec<usize> = Vec::with_capacity(n);
    buf.capacity()
}
