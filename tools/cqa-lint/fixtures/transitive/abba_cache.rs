//! Half of a seeded interprocedural ABBA cycle: the cache takes its shard
//! lock and then calls into the pool, which takes the queue lock.

use crate::sync::Mutex;

pub struct Cache {
    shard: Mutex<u32>,
}

impl Cache {
    pub fn lookup(&self, pool: &Pool) -> u32 {
        let shard = self.shard.lock();
        pool.reserve_worker();
        *shard
    }

    pub fn refresh(&self) -> u32 {
        let shard = self.shard.lock();
        *shard + 1
    }
}
