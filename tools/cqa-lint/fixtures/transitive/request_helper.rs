// Helper module: clean at every token the old scanner looked at, but
// two hops in, it panics.
pub fn decode(x: Option<u32>) -> u32 {
    finishing_move(x)
}

fn finishing_move(x: Option<u32>) -> u32 {
    x.unwrap()
}
