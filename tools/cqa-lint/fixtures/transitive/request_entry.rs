// Request-path entry point. The panic it reaches lives in another
// module — only the call graph can connect the two.
pub fn handle(x: Option<u32>) -> u32 {
    decode(x)
}
