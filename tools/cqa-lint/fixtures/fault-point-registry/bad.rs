// One typo'd point name among registered ones: exactly one finding.

pub fn plant() {
    if cqa_chaos::fault_point!("demo/prase").is_some() {
        return;
    }
    let _ = cqa_chaos::fault_point!("demo/write");
}
