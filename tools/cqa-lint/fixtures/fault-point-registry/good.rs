// Registered literals, a computed name (the runtime registry check's
// job), and the macro definition site itself: none fire.

pub fn plant() {
    if cqa_chaos::fault_point!("demo/parse").is_some() {
        return;
    }
    let _ = cqa_chaos::fault_point!("demo/write");
}

pub fn computed(name: &str) {
    let _ = cqa_chaos::fault_point!(name);
}

macro_rules! fault_point {
    ($name:literal) => {
        None::<()>
    };
}
