fn first(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    let p = v.as_ptr();
    // SAFETY: the assert above guarantees the slice is non-empty, so the
    // pointer dereference reads within bounds.
    unsafe { *p }
}
