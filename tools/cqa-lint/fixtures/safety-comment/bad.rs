// An unsafe block with no proof obligation written down.
fn first(v: &[u8]) -> u8 {
    let p = v.as_ptr();
    unsafe { *p }
}
