// The same arithmetic with explicit overflow/truncation policy.
pub fn plan(k: u64, x: f64) -> u64 {
    let mut n: u64 = 1;
    n = n.saturating_add(k);
    let bounded = cqa_common::checked::f64_to_u64((x * 3.0).ceil());
    let small = u32::try_from(k).unwrap_or(u32::MAX);
    n.saturating_add(bounded).saturating_add(u64::from(small))
}
