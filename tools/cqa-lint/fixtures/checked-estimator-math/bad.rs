// Three classic silent-corruption sites in estimator arithmetic.
pub fn plan(k: u64, x: f64) -> u64 {
    let mut n: u64 = 1;
    n += k;
    let truncated = (x * 3.0).ceil() as u64;
    let small = k as u32;
    n.wrapping_add(truncated).wrapping_add(small as u64)
}
