// A toy protocol module: writes ("key", value) pairs, reads via accessors.
fn encode(q: &Query) -> Json {
    Json::obj([("query", Json::str(&q.text)), ("seed", Json::num(q.seed as f64))])
}

fn decode(v: &Json) -> Result<Query, Error> {
    Ok(Query { text: v.req_str("query")?.to_owned(), seed: v.get("seed").unwrap_or(0) })
}
