// A miniature ErrorKind with both wire-name directions; the extractor
// reads the `from_name` parse table only.

pub enum ErrorKind {
    Overloaded,
    BadRequest,
}

impl ErrorKind {
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::BadRequest => "bad_request",
        }
    }

    pub fn from_name(name: &str) -> Option<ErrorKind> {
        match name {
            "overloaded" => Some(ErrorKind::Overloaded),
            "bad_request" => Some(ErrorKind::BadRequest),
            _ => None,
        }
    }
}
