// A begin marker with no matching end: the region boundary itself is the
// finding (an accidentally unbounded region would otherwise swallow the
// whole file).
// cqa-lint: hot-path begin
pub fn sample() -> u32 {
    7
}
