pub struct Sampler {
    buf: Vec<u32>,
}

impl Sampler {
    // cqa-lint: hot-path begin
    pub fn sample(&mut self) -> usize {
        let copy = self.buf.clone();
        let label = format!("n={}", copy.len());
        let extra: Vec<u32> = Vec::new();
        label.len() + extra.len()
    }
    // cqa-lint: hot-path end
}
