pub struct Sampler {
    buf: Vec<u32>,
    scratch: Vec<u32>,
}

impl Sampler {
    // Allocation is fine outside the marked region…
    pub fn new(n: usize) -> Sampler {
        Sampler { buf: Vec::with_capacity(n), scratch: vec![0; n] }
    }

    // cqa-lint: hot-path begin
    // …and the region itself only reuses preallocated buffers.
    pub fn sample(&mut self) -> u32 {
        let mut acc = 0;
        for (slot, &v) in self.scratch.iter_mut().zip(self.buf.iter()) {
            *slot = v;
            acc += v;
        }
        acc
    }
    // cqa-lint: hot-path end
}
