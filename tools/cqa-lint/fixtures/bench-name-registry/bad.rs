// A typo of a registered series name.
fn record(summary: &cqa_perf::Summary) {
    let _ = cqa_perf::schema::bench_series("demo/biuld_ns", summary);
}
