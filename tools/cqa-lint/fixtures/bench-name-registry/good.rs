fn record(summary: &cqa_perf::Summary) {
    let _ = cqa_perf::schema::bench_series("demo/build_ns", summary);
    // Computed names cannot be checked statically and are not flagged;
    // bench_series rejects unregistered ones at runtime instead.
    let dynamic = "demo/throughput_rps";
    let _ = cqa_perf::schema::bench_series(dynamic, summary);
}

// Definition sites carry no literal and are not flagged.
fn bench_series(name: &str, _summary: &Summary) {}

// A reasoned suppression is the escape hatch for intentionally
// unregistered names (e.g. a scratch series during development).
fn scratch(summary: &cqa_perf::Summary) {
    // cqa-lint: allow(bench-name-registry): scratch series, never gated on
    let _ = cqa_perf::schema::bench_series("demo/scratch_ns", summary);
}
