// A wire-supplied row count flows, unvalidated, into an allocation size.
pub fn handle(msg: &Json) {
    let n = msg.req_u64("rows");
    let mut buf: Vec<u8> = Vec::with_capacity(n as usize);
    buf.clear();
}
