// The same read clamped through the registered `capped_u64` validator:
// the clamp is the negative control for the taint analysis.
pub fn handle(msg: &Json) {
    let n = capped_u64(msg.req_u64("rows"), 4096);
    let mut buf: Vec<u8> = Vec::with_capacity(n as usize);
    buf.clear();
}
