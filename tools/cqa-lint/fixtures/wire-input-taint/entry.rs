// Entry half of the multi-hop fixture: the wire read happens in a helper
// (another module), travels back here, then into a second helper that
// allocates — two interprocedural hops end to end.
pub fn handle(msg: &Json) {
    let n = read_rows(msg);
    grow_buffer(n);
}
