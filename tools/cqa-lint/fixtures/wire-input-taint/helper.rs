// Helper half of the multi-hop fixture: the source and the sink, with
// the flow routed through the entry module in between.
pub fn read_rows(msg: &Json) -> u64 {
    msg.req_u64("rows")
}

pub fn grow_buffer(n: u64) {
    let mut buf: Vec<u8> = Vec::with_capacity(n as usize);
    buf.clear();
}
