//! Consistent A-before-B everywhere, plus a re-acquisition that is legal
//! only because the first guard is explicitly dropped — if the analysis
//! missed the `drop`, this file would report a cycle.

use crate::sync::Mutex;

pub static ORDER_A: Mutex<u32> = Mutex::new(0);
pub static ORDER_B: Mutex<u32> = Mutex::new(0);

pub fn both() -> u32 {
    let a = ORDER_A.lock();
    let b = ORDER_B.lock();
    *a + *b
}

pub fn b_then_a_released() -> u32 {
    let b = ORDER_B.lock();
    let n = *b;
    drop(b);
    let a = ORDER_A.lock();
    *a + n
}
