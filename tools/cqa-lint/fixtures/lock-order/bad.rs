//! Seeded ABBA deadlock: `first` takes A then B, `second` takes B then A.
//! The order graph gets both `LOCK_A → LOCK_B` and `LOCK_B → LOCK_A`, so
//! each direction is reported at its own second acquisition.

use crate::sync::Mutex;

pub static LOCK_A: Mutex<u32> = Mutex::new(0);
pub static LOCK_B: Mutex<u32> = Mutex::new(0);

pub fn first() -> u32 {
    let a = LOCK_A.lock();
    let b = LOCK_B.lock();
    *a + *b
}

pub fn second() -> u32 {
    let b = LOCK_B.lock();
    let a = LOCK_A.lock();
    *a + *b
}
