// All three names are typos of registered ones.
fn observe() {
    let _guard = cqa_obs::span("serve/request_typo");
    cqa_obs::metrics::global().counter("server_requets_total", "typo").inc();
    let _pair = digest_field("reqest_id", Json::Num(1.0));
}
