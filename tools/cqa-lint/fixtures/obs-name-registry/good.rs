fn observe() {
    let _guard = cqa_obs::span("server/request");
    cqa_obs::metrics::global().counter("server_requests_total", "Total requests").inc();
    let _pair = digest_field("request_id", Json::Str(id));
    // Computed names cannot be checked statically and are not flagged.
    let dynamic = "server/request";
    let _other = cqa_obs::span(dynamic);
    let _computed = digest_field(dynamic_field, Json::Num(0.0));
}
