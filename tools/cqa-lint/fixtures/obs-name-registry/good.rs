fn observe() {
    let _guard = cqa_obs::span("server/request");
    cqa_obs::metrics::global().counter("server_requests_total", "Total requests").inc();
    // Computed names cannot be checked statically and are not flagged.
    let dynamic = "server/request";
    let _other = cqa_obs::span(dynamic);
}
