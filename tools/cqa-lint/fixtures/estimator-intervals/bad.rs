// Two semantic estimator-math defects the syntactic rule cannot see: a
// divisor whose range includes zero, and a "probability" above 1.
pub fn mean(total: f64, n: u64) -> f64 {
    total / n as f64
}

pub fn escape() -> f64 {
    let p = 1.5;
    p
}
