// The same shapes made provable: an explicit zero guard bounds the
// divisor away from zero, and a clamp pins the probability to [0, 1].
pub fn mean(total: f64, n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    total / n as f64
}

pub fn bounded(x: f64) -> f64 {
    let p = x.clamp(0.0, 1.0);
    p
}
