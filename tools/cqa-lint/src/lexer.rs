//! A hand-rolled Rust token scanner.
//!
//! The build container has no crates-io mirror, so `syn` is out of reach;
//! the lint rules only need a faithful *token* view anyway — idents,
//! punctuation, and string literals with comments set aside — not a parse
//! tree. The scanner handles the lexical subtleties that break naive
//! regex-based linting: nested block comments, raw strings with `#`
//! fences, byte strings, char literals vs. lifetimes, and escaped quotes.

use std::collections::{BTreeMap, BTreeSet};

/// Token classes the rules inspect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#idents`, fence stripped).
    Ident,
    /// String literal (plain, raw, or byte); `text` is the *content*
    /// between the quotes, escapes left as written.
    Str,
    /// Character or byte-character literal.
    Char,
    /// A lifetime such as `'a` (tick stripped).
    Lifetime,
    /// Numeric literal, suffix included.
    Num,
    /// A single punctuation character.
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// The result of scanning one file: code tokens, plus the comment text per
/// line (a line spanned by a block comment gets an entry for every line it
/// covers) and the set of lines holding at least one code token.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    /// line → concatenated comment text on that line.
    pub comments: BTreeMap<u32, String>,
    /// Lines that carry at least one code token.
    pub token_lines: BTreeSet<u32>,
}

impl Lexed {
    /// The comment text on `line`, if any.
    pub fn comment_on(&self, line: u32) -> Option<&str> {
        self.comments.get(&line).map(String::as_str)
    }
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

/// Scans `src` into tokens and comments. Unterminated constructs (string,
/// block comment) consume to end of file rather than erroring: the lint
/// runs on code that `rustc` already accepted, so this is only a guard
/// against pathological fixtures.
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner { src: src.as_bytes(), pos: 0, line: 1, out: Lexed::default() };
    s.run();
    s.out
}

impl<'a> Scanner<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied();
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.token_lines.insert(line);
        self.out.toks.push(Tok { kind, text, line });
    }

    fn push_comment(&mut self, line: u32, text: &str) {
        let slot = self.out.comments.entry(line).or_default();
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(text);
    }

    fn run(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'r' if self.peek(1) == Some(b'"') || self.peek(1) == Some(b'#') => {
                    if !self.raw_string_or_ident() {
                        self.ident();
                    }
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.bump(); // b
                    self.string();
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.bump(); // b
                    self.char_lit();
                }
                b'b' if self.peek(1) == Some(b'r')
                    && (self.peek(2) == Some(b'"') || self.peek(2) == Some(b'#')) =>
                {
                    self.bump(); // b
                    if !self.raw_string_or_ident() {
                        self.ident();
                    }
                }
                b'\'' => self.char_or_lifetime(),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(),
                b'0'..=b'9' => self.number(),
                _ => {
                    let line = self.line;
                    let c = self.bump().unwrap_or(b'?') as char;
                    self.push_tok(TokKind::Punct(c), c.to_string(), line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push_comment(line, &text);
    }

    fn block_comment(&mut self) {
        let mut line = self.line;
        let mut depth = 0usize;
        let mut buf = String::new();
        loop {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    buf.push_str("/*");
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    buf.push_str("*/");
                    if depth == 0 {
                        break;
                    }
                }
                (Some(b'\n'), _) => {
                    self.push_comment(line, &buf);
                    buf.clear();
                    self.bump();
                    line = self.line;
                }
                (Some(b), _) => {
                    buf.push(b as char);
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate
            }
        }
        if !buf.is_empty() {
            self.push_comment(line, &buf);
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    self.bump(); // the escaped character, whatever it is
                }
                b'"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.bump(); // closing quote
        self.push_tok(TokKind::Str, text, line);
    }

    /// At `r"`, `r#`, `br"`, or `br#` (the leading `b` already consumed).
    /// Returns false if this turns out to be a raw identifier (`r#ident`)
    /// instead of a raw string, leaving the scanner position untouched.
    fn raw_string_or_ident(&mut self) -> bool {
        let save_pos = self.pos;
        let save_line = self.line;
        self.bump(); // r
        let mut fence = 0usize;
        while self.peek(0) == Some(b'#') {
            fence += 1;
            self.bump();
        }
        if self.peek(0) != Some(b'"') {
            // r#ident — rewind and lex as identifier.
            self.pos = save_pos;
            self.line = save_line;
            return false;
        }
        self.bump(); // opening quote
        let start = self.pos;
        let end;
        'scan: loop {
            match self.peek(0) {
                Some(b'"') => {
                    let mut matched = 0usize;
                    while matched < fence && self.peek(1 + matched) == Some(b'#') {
                        matched += 1;
                    }
                    if matched == fence {
                        end = self.pos;
                        self.bump(); // quote
                        for _ in 0..fence {
                            self.bump();
                        }
                        break 'scan;
                    }
                    self.bump();
                }
                Some(_) => {
                    self.bump();
                }
                None => {
                    end = self.pos; // unterminated: tolerate
                    break 'scan;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.push_tok(TokKind::Str, text, save_line);
        true
    }

    fn char_lit(&mut self) {
        let line = self.line;
        self.bump(); // opening tick
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'\'' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.bump(); // closing tick
        self.push_tok(TokKind::Char, text, line);
    }

    /// Disambiguates `'x'` (char) from `'label` (lifetime/loop label): a
    /// tick starts a char literal iff a closing tick follows the (possibly
    /// escaped) single character.
    fn char_or_lifetime(&mut self) {
        if self.peek(1) == Some(b'\\')
            || (self.peek(2) == Some(b'\'') && self.peek(1) != Some(b'\''))
        {
            self.char_lit();
            return;
        }
        let line = self.line;
        self.bump(); // tick
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push_tok(TokKind::Lifetime, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        if self.peek(0) == Some(b'r') && self.peek(1) == Some(b'#') {
            self.bump();
            self.bump(); // raw-ident fence; keep only the name
        }
        let name_start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let _ = start;
        let text = String::from_utf8_lossy(&self.src[name_start..self.pos]).into_owned();
        self.push_tok(TokKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            match b {
                b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    self.bump();
                }
                // Consume a dot only when a digit follows, so `0..n`
                // lexes as `0`, `.`, `.`, `n` rather than eating `0.`.
                b'.' if self.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                    self.bump();
                }
                _ => break,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push_tok(TokKind::Num, text, line);
    }
}

/// Returns the token stream with every `#[cfg(test)]`-gated item removed
/// (also `cfg(all(test, …))` and `cfg_attr(test, …)`: any `cfg`-ish
/// attribute that mentions the `test` ident). Rules that only police
/// production code run on this view; the `safety-comment` rule runs on
/// the full stream.
pub fn strip_cfg_test(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Find the attribute's closing bracket.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut mentions_cfg = false;
            let mut mentions_test = false;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Ident => {
                        if toks[j].text == "cfg" || toks[j].text == "cfg_attr" {
                            mentions_cfg = true;
                        }
                        if toks[j].text == "test" {
                            mentions_test = true;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if mentions_cfg && mentions_test {
                // Skip the attribute and the item it gates: consume until
                // a top-level `;` (item without a body) or until the
                // item's brace block closes.
                i = j + 1;
                let mut nest = 0isize;
                let mut saw_brace = false;
                while i < toks.len() {
                    match toks[i].kind {
                        TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => {
                            if toks[i].is_punct('{') {
                                saw_brace = true;
                            }
                            nest += 1;
                        }
                        TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                            nest -= 1;
                            if nest == 0 && saw_brace && toks[i].is_punct('}') {
                                i += 1;
                                break;
                            }
                        }
                        TokKind::Punct(';') if nest == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_comments_and_chars() {
        let l = lex("let s = \"a // not comment\"; // real\nlet c = 'x'; let lt: &'a u8;");
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Str && t.text == "a // not comment"));
        assert_eq!(l.comment_on(1), Some("// real"));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Char && t.text == "x"));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let l = lex(r####"let a = r#"has "quotes" inside"#; let r#fn = 1;"####);
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == r#"has "quotes" inside"#));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "fn"));
    }

    #[test]
    fn nested_block_comments_are_comments() {
        let l = lex("/* outer /* inner */ still */ let x = 1;");
        assert!(l.comment_on(1).unwrap().contains("inner"));
        assert!(l.toks.iter().any(|t| t.is_ident("let")));
        assert!(!l.toks.iter().any(|t| t.is_ident("outer")));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = kinds(r#"let s = "a\"b";"#);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t == r#"a\"b"#));
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "10"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Punct('.')).count(), 2);
    }

    #[test]
    fn cfg_test_items_are_stripped() {
        let src = r#"
            fn keep() { hot(); }
            #[cfg(test)]
            mod tests {
                fn gone() { x.unwrap(); }
            }
            fn also_keep() {}
            #[cfg(all(test, feature = "x"))]
            fn gone_too() { panic!("x"); }
        "#;
        let l = lex(src);
        let stripped = strip_cfg_test(&l.toks);
        let names: Vec<&str> =
            stripped.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect();
        assert!(names.contains(&"keep"));
        assert!(names.contains(&"also_keep"));
        assert!(!names.contains(&"gone"));
        assert!(!names.contains(&"unwrap"));
        assert!(!names.contains(&"gone_too"));
    }

    #[test]
    fn lifetimes_in_generics_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> Guard<'a, T> {}");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 3);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 0);
    }
}
