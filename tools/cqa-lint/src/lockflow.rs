//! Interprocedural held-locks dataflow: the three lock-discipline rules.
//!
//! The [`crate::parser`] models each lock acquisition as a [`LockSpan`] —
//! a lock *identity* plus the line range its guard stays alive (let-bound
//! guards live to `drop()`/block close/fn end; everything else is a
//! statement temporary). This module lifts those spans through the call
//! graph: while a guard's span is active, every call edge leaving it drags
//! the full reachable closure into the "held" context. On that context it
//! enforces:
//!
//! - **`lock-order`** (workspace-wide): every "acquire B while holding A"
//!   occurrence becomes an edge A → B in a global lock-acquisition order
//!   graph; an edge that lies on a cycle is a potential deadlock and is
//!   reported with the reconstructed acquisition path for its direction.
//!   This is the static twin of the parking_lot shim's debug-build ABBA
//!   detector — and like it, a `try_*` acquisition can *hold* a lock
//!   (edge source) but never *waits* (edge target), so try-edges cannot
//!   close a cycle.
//! - **`no-blocking-while-locked`** (request path): a blocking operation
//!   (second lock acquisition, channel recv, `join()`, file/socket I/O,
//!   `sleep`) reachable while a request-path guard is held serializes the
//!   request path on whatever that operation waits for.
//! - **`no-guard-across-fault-point`** (workspace-wide): a guard held
//!   across a `fault_point!` boundary means an injected delay parks every
//!   contender and an injected panic poisons the lock — the chaos
//!   invariants in docs/RELIABILITY.md assume fault points fire lock-free.
//!
//! Files under `shims/` contribute **no** lock or blocking facts: the
//! shims are the primitive layer (every workspace `Mutex::lock` bottoms
//! out in the parking_lot shim's one `inner` field, which would alias all
//! workspace locks into one), and they are audited separately by the
//! runtime ABBA detector and the loom model checker. Known unsoundness of
//! the span model itself is documented in `docs/ANALYSIS.md`.

use crate::callgraph::{FnId, Graph};
use crate::lexer::Lexed;
use crate::parser::LockSpan;
use crate::rules::{self, Finding, GUARD_FAULT, LOCK_ORDER, NO_BLOCKING};
use std::collections::{BTreeMap, VecDeque};

fn is_shim(rel: &str) -> bool {
    rel.starts_with("shims/")
}

/// Stable key and display name for a span's lock. Global identities
/// (`Cache.shard(…)`, `PLAN`) key as themselves; function-local ones
/// (`m` inside `fn a`) are keyed per (file, fn) so same-named variables in
/// different functions never unify.
fn lock_names(g: &Graph<'_>, id: FnId, span: &LockSpan) -> (String, String) {
    if span.local {
        let disp = format!("{}::{}", g.fn_item(id).name, span.lock);
        (format!("{}#{}::{}", g.files[id.0].rel, id.1, span.lock), disp)
    } else {
        (span.lock.clone(), span.lock.clone())
    }
}

/// Evidence for one lock-order edge: where the finding anchors and how the
/// second acquisition is reached from the holder.
struct Edge {
    /// File index / line of the second acquisition (the finding anchor).
    fi: usize,
    line: u32,
    /// Function acquisition path, e.g. `Cache::lookup → Pool::reserve`.
    path: String,
    /// `file:line` where the held lock was acquired.
    held_at: String,
}

/// Runs the three lock-discipline rules over the whole parsed set.
pub fn check(g: &Graph<'_>, lexed: &[Lexed], request_files: &[&str]) -> Vec<Finding> {
    let mut out = Vec::new();
    // Order graph: (holder key, acquired key) → first evidence seen.
    let mut order: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let mut disp: BTreeMap<String, String> = BTreeMap::new();

    for (fi, file) in g.files.iter().enumerate() {
        if is_shim(&file.rel) {
            continue;
        }
        let on_request_path = request_files.contains(&file.rel.as_str());
        for (ni, f) in file.fns.iter().enumerate() {
            if f.lock_spans.is_empty() {
                continue;
            }
            let id = (fi, ni);
            let facts = &g.facts[fi][ni];
            for s in &f.lock_spans {
                let (key, d) = lock_names(g, id, s);
                disp.insert(key.clone(), d.clone());
                let held_at = format!("{}:{}", file.rel, s.acquire_line);
                // The guard is held on lines (acquire, end]; the acquire
                // line itself is excluded because receiver/argument code on
                // it runs before the acquisition (and two temporaries on
                // one line carry no order information either way).
                let held = |line: u32| line > s.acquire_line && line <= s.end_line;

                // Direct second acquisitions inside the span.
                for s2 in f.lock_spans.iter().filter(|s2| held(s2.acquire_line)) {
                    let (key2, d2) = lock_names(g, id, s2);
                    disp.insert(key2.clone(), d2.clone());
                    if s2.blocking {
                        order.entry((key.clone(), key2.clone())).or_insert_with(|| Edge {
                            fi,
                            line: s2.acquire_line,
                            path: g.display(id),
                            held_at: held_at.clone(),
                        });
                    }
                    if on_request_path {
                        rules::push(
                            &mut out,
                            &lexed[fi],
                            NO_BLOCKING,
                            &file.rel,
                            s2.acquire_line,
                            format!(
                                "acquiring `{d2}` while the guard on `{d}` ({held_at}) is still \
                                 held blocks the request path; narrow the first guard's scope"
                            ),
                        );
                    }
                }
                // Direct blocking operations and fault points in the span.
                if on_request_path {
                    for b in facts.blocking.iter().filter(|b| held(b.line)) {
                        rules::push(
                            &mut out,
                            &lexed[fi],
                            NO_BLOCKING,
                            &file.rel,
                            b.line,
                            format!(
                                "blocking op {} runs while the guard on `{d}` ({held_at}) is held",
                                b.what
                            ),
                        );
                    }
                }
                for (point, pline) in f.fault_sites.iter().filter(|(_, l)| held(*l)) {
                    rules::push(
                        &mut out,
                        &lexed[fi],
                        GUARD_FAULT,
                        &file.rel,
                        *pline,
                        format!(
                            "guard on `{d}` ({held_at}) is held across fault_point!({point:?}); \
                             an injected delay stalls every contender and an injected panic \
                             poisons the lock"
                        ),
                    );
                }
                // Interprocedural: everything reachable from in-span calls
                // executes with the guard held.
                for (callee, _) in facts.edges.iter().filter(|(_, l)| held(*l)) {
                    let parent = g.reach(&[(*callee, None)]);
                    for &rid in parent.keys() {
                        let rrel = &g.files[rid.0].rel;
                        if is_shim(rrel) {
                            continue;
                        }
                        let rf = g.fn_item(rid);
                        let rfacts = &g.facts[rid.0][rid.1];
                        let via = format!("{} → {}", g.display(id), g.path_to(&parent, rid));
                        for s2 in rf.lock_spans.iter().filter(|s2| s2.blocking) {
                            let (key2, d2) = lock_names(g, rid, s2);
                            disp.insert(key2.clone(), d2.clone());
                            order.entry((key.clone(), key2.clone())).or_insert_with(|| Edge {
                                fi: rid.0,
                                line: s2.acquire_line,
                                path: via.clone(),
                                held_at: held_at.clone(),
                            });
                            if on_request_path {
                                rules::push(
                                    &mut out,
                                    &lexed[rid.0],
                                    NO_BLOCKING,
                                    rrel,
                                    s2.acquire_line,
                                    format!(
                                        "lock `{d2}` is acquired here while the request path \
                                         holds `{d}` ({held_at}) (reachable via {via})"
                                    ),
                                );
                            }
                        }
                        if on_request_path {
                            for b in &rfacts.blocking {
                                rules::push(
                                    &mut out,
                                    &lexed[rid.0],
                                    NO_BLOCKING,
                                    rrel,
                                    b.line,
                                    format!(
                                        "blocking op {} runs while the request path holds `{d}` \
                                         ({held_at}) (reachable via {via})",
                                        b.what
                                    ),
                                );
                            }
                        }
                        for (point, pline) in &rf.fault_sites {
                            rules::push(
                                &mut out,
                                &lexed[rid.0],
                                GUARD_FAULT,
                                rrel,
                                *pline,
                                format!(
                                    "fault_point!({point:?}) fires while the guard on `{d}` \
                                     ({held_at}) is held (reachable via {via}); an injected \
                                     delay stalls every contender and an injected panic poisons \
                                     the lock"
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    // Cycle detection: an edge (a, b) is on a cycle iff b reaches a. Each
    // such edge gets its own finding, so both directions of an ABBA pair
    // are reported at their own acquisition sites with their own paths.
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (a, b) in order.keys() {
        adj.entry(a).or_default().push(b);
    }
    for ((a, b), e) in &order {
        let Some(back) = path_between(&adj, b, a) else { continue };
        let mut cycle = vec![a.as_str()];
        cycle.extend(back.iter().map(|k| k.as_str()));
        let rendered = cycle
            .iter()
            .map(|k| disp.get(*k).map(String::as_str).unwrap_or(k))
            .collect::<Vec<_>>()
            .join(" → ");
        rules::push(
            &mut out,
            &lexed[e.fi],
            LOCK_ORDER,
            &g.files[e.fi].rel,
            e.line,
            format!(
                "lock-order cycle: `{}` is acquired while `{}` is held (held since {}; \
                 acquisition path {}) — cycle: {rendered}",
                disp[b], disp[a], e.held_at, e.path
            ),
        );
    }
    out
}

/// Shortest path `from → … → to` over `adj`, both ends inclusive.
/// `from == to` is the trivial one-node path (the self-loop case: a lock
/// re-acquired while already held).
fn path_between<'m>(
    adj: &BTreeMap<&'m String, Vec<&'m String>>,
    from: &'m String,
    to: &String,
) -> Option<Vec<&'m String>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut parent: BTreeMap<&String, &'m String> = BTreeMap::new();
    let mut q = VecDeque::from([from]);
    parent.insert(from, from);
    while let Some(n) = q.pop_front() {
        for &m in adj.get(n).into_iter().flatten() {
            if parent.contains_key(&m) {
                continue;
            }
            parent.insert(m, n);
            if m == to {
                let mut path = vec![m];
                let mut cur = m;
                while parent[&cur] != cur {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            q.push_back(m);
        }
    }
    None
}
