//! Abstract domains for the dataflow engine ([`crate::dataflow`]).
//!
//! Two production domains live here:
//!
//! * [`Interval`] — real-valued intervals `[lo, hi]` (with ±∞ bounds and
//!   an integer-valuedness flag) used by the `estimator-intervals`
//!   analysis to prove divisors nonzero, probabilities in `[0, 1]`, and
//!   counter arithmetic free of `u64` wrap.
//! * [`Taint`] — a two-point lattice (`Clean` ⊑ `Tainted`) with flow
//!   provenance, used by `wire-input-taint` to track NDJSON protocol
//!   values until a registered validator sanitizes them.
//!
//! Both implement [`Lattice`], whose laws (join commutativity and
//! monotonicity, widening termination on ascending chains) are property
//! tested in `tests/lattice_laws.rs`.
//!
//! ## Interval conventions
//!
//! Bounds are *inclusive*. Strict comparisons narrow conservatively:
//! `x > 0.0` narrows to `lo = f64::MIN_POSITIVE` (the smallest positive
//! value the domain distinguishes from zero) because "bounded away from
//! zero" is the property the divisor check needs; every other strict
//! bound is widened to its inclusive neighbour, which is sound. Products
//! and quotients of strictly positive intervals are kept strictly
//! positive even when the bound arithmetic underflows to `0.0` —
//! subnormal underflow at runtime is a documented unsoundness (see
//! `docs/ANALYSIS.md`, "Known unsoundness").

/// Operations a domain must provide for the fixpoint engine: a partial
/// order expressed through `join`, and a `widen` that reaches a fixed
/// point on any ascending chain.
pub trait Lattice: Clone + PartialEq {
    /// Least upper bound.
    fn join(&self, other: &Self) -> Self;
    /// Widening: an upper bound of `self` and `other` chosen from a
    /// finite set of shapes, so iterating `w = w.widen(&next)` stabilizes.
    fn widen(&self, other: &Self) -> Self;
}

/// Widening thresholds: bounds jump outward to the nearest of these
/// before giving up to ±∞. `0.0` keeps counters provably non-negative and
/// `1.0` keeps probabilities provably in `[0, 1]` across loop joins.
const THRESHOLDS: [f64; 2] = [0.0, 1.0];

/// A closed real interval `[lo, hi]`, possibly unbounded, with an
/// "integer-valued" flag (`u64`/`usize` counters narrow `x != 0` to
/// `x >= 1`). The empty interval (`lo > hi`) is the domain's bottom.
#[derive(Debug, Clone, Copy)]
pub struct Interval {
    /// Lower bound (inclusive; `-∞` allowed).
    pub lo: f64,
    /// Upper bound (inclusive; `+∞` allowed).
    pub hi: f64,
    /// True when every concrete value is an integer.
    pub int: bool,
}

impl PartialEq for Interval {
    fn eq(&self, other: &Interval) -> bool {
        // Every empty interval is the same bottom, whatever bounds encode
        // it — the fixpoint loop must see them as equal or it can spin on
        // representational churn.
        (self.is_bottom() && other.is_bottom())
            || (self.lo == other.lo && self.hi == other.hi && self.int == other.int)
    }
}

impl Interval {
    /// The full line: no information.
    pub const TOP: Interval = Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY, int: false };
    /// The empty interval: unreachable value.
    pub const BOTTOM: Interval = Interval { lo: f64::INFINITY, hi: f64::NEG_INFINITY, int: false };

    /// The singleton `[x, x]`.
    pub fn exact(x: f64, int: bool) -> Interval {
        Interval { lo: x, hi: x, int }
    }

    /// `[lo, hi]`, normalizing NaN bounds to ±∞.
    pub fn new(lo: f64, hi: f64, int: bool) -> Interval {
        let lo = if lo.is_nan() { f64::NEG_INFINITY } else { lo };
        let hi = if hi.is_nan() { f64::INFINITY } else { hi };
        Interval { lo, hi, int }
    }

    /// True when this is the empty interval.
    pub fn is_bottom(&self) -> bool {
        self.lo > self.hi
    }

    /// True when no bound is known (ignores `int`).
    pub fn is_top(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }

    /// True when `0` is a possible value.
    pub fn contains_zero(&self) -> bool {
        !self.is_bottom() && self.lo <= 0.0 && self.hi >= 0.0
    }

    /// True when every value is `> 0` (the divisor-safety predicate).
    pub fn strictly_positive(&self) -> bool {
        !self.is_bottom() && self.lo > 0.0
    }

    /// True when `self ⊆ [lo, hi]`.
    pub fn within(&self, lo: f64, hi: f64) -> bool {
        self.is_bottom() || (self.lo >= lo && self.hi <= hi)
    }

    /// Greatest lower bound (used when applying validator refinements).
    pub fn meet(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
            int: self.int || other.int,
        }
    }

    /// A product term for bound candidates: `0 · ±∞` is `0` here (the
    /// limit the interval product needs), never NaN.
    fn mul_bound(a: f64, b: f64) -> f64 {
        if a == 0.0 || b == 0.0 {
            0.0
        } else {
            a * b
        }
    }

    fn from_candidates(c: [f64; 4], int: bool) -> Interval {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for x in c {
            if x.is_nan() {
                return Interval { int, ..Interval::TOP };
            }
            lo = lo.min(x);
            hi = hi.max(x);
        }
        Interval { lo, hi, int }
    }

    /// `self + other`.
    pub fn add(&self, o: &Interval) -> Interval {
        if self.is_bottom() || o.is_bottom() {
            return Interval::BOTTOM;
        }
        // -∞ + ∞ in a bound computation means "unknown", not NaN.
        let lo = if self.lo == f64::NEG_INFINITY || o.lo == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            self.lo + o.lo
        };
        let hi = if self.hi == f64::INFINITY || o.hi == f64::INFINITY {
            f64::INFINITY
        } else {
            self.hi + o.hi
        };
        Interval::new(lo, hi, self.int && o.int)
    }

    /// `self - other`.
    pub fn sub(&self, o: &Interval) -> Interval {
        self.add(&o.neg())
    }

    /// `-self`.
    pub fn neg(&self) -> Interval {
        if self.is_bottom() {
            return Interval::BOTTOM;
        }
        Interval { lo: -self.hi, hi: -self.lo, int: self.int }
    }

    /// `self * other`, keeping strict positivity through underflow.
    pub fn mul(&self, o: &Interval) -> Interval {
        if self.is_bottom() || o.is_bottom() {
            return Interval::BOTTOM;
        }
        let mut r = Interval::from_candidates(
            [
                Self::mul_bound(self.lo, o.lo),
                Self::mul_bound(self.lo, o.hi),
                Self::mul_bound(self.hi, o.lo),
                Self::mul_bound(self.hi, o.hi),
            ],
            self.int && o.int,
        );
        if self.strictly_positive() && o.strictly_positive() && r.lo <= 0.0 {
            r.lo = f64::MIN_POSITIVE;
        }
        if self.hi < 0.0 && o.hi < 0.0 && r.lo <= 0.0 {
            r.lo = f64::MIN_POSITIVE;
        }
        r
    }

    /// `self / other`. When the divisor may be zero the quotient is
    /// unknown; the *caller* (the divisor check) reports that case.
    pub fn div(&self, o: &Interval) -> Interval {
        if self.is_bottom() || o.is_bottom() {
            return Interval::BOTTOM;
        }
        if o.contains_zero() {
            return Interval::TOP;
        }
        let mut r = Interval::from_candidates(
            [self.lo / o.lo, self.lo / o.hi, self.hi / o.lo, self.hi / o.hi],
            false,
        );
        if self.strictly_positive() && o.strictly_positive() && r.lo <= 0.0 {
            r.lo = f64::MIN_POSITIVE;
        }
        r
    }

    /// `self.max(o)` (the `f64::max` / `Ord::max` transfer).
    pub fn max_op(&self, o: &Interval) -> Interval {
        if self.is_bottom() || o.is_bottom() {
            return Interval::BOTTOM;
        }
        Interval { lo: self.lo.max(o.lo), hi: self.hi.max(o.hi), int: self.int && o.int }
    }

    /// `self.min(o)`.
    pub fn min_op(&self, o: &Interval) -> Interval {
        if self.is_bottom() || o.is_bottom() {
            return Interval::BOTTOM;
        }
        Interval { lo: self.lo.min(o.lo), hi: self.hi.min(o.hi), int: self.int && o.int }
    }

    /// `self.sqrt()`: defined on the non-negative part; a possibly
    /// negative argument yields an unknown (NaN-producing) result.
    pub fn sqrt(&self) -> Interval {
        if self.is_bottom() {
            return Interval::BOTTOM;
        }
        if self.lo < 0.0 {
            return Interval::TOP;
        }
        let mut r = Interval::new(self.lo.sqrt(), self.hi.sqrt(), false);
        if self.strictly_positive() && r.lo <= 0.0 {
            r.lo = f64::MIN_POSITIVE;
        }
        r
    }

    /// `self.ln()`: monotone on `(0, ∞)`; a possibly non-positive
    /// argument yields an unknown result.
    pub fn ln(&self) -> Interval {
        if self.is_bottom() {
            return Interval::BOTTOM;
        }
        if self.lo <= 0.0 {
            return Interval::TOP;
        }
        Interval::new(self.lo.ln(), self.hi.ln(), false)
    }

    /// `self.ceil()`.
    pub fn ceil(&self) -> Interval {
        if self.is_bottom() {
            return Interval::BOTTOM;
        }
        Interval { lo: self.lo.ceil(), hi: self.hi.ceil(), int: self.int }
    }

    /// `self.floor()`.
    pub fn floor(&self) -> Interval {
        if self.is_bottom() {
            return Interval::BOTTOM;
        }
        Interval { lo: self.lo.floor(), hi: self.hi.floor(), int: self.int }
    }

    /// `self.abs()`.
    pub fn abs(&self) -> Interval {
        if self.is_bottom() {
            return Interval::BOTTOM;
        }
        if self.lo >= 0.0 {
            *self
        } else if self.hi <= 0.0 {
            self.neg()
        } else {
            Interval { lo: 0.0, hi: self.hi.max(-self.lo), int: self.int }
        }
    }

    /// The `cqa_common::checked::f64_to_u64` transfer: NaN → `u64::MAX`,
    /// otherwise saturating truncation into `[0, u64::MAX]`.
    pub fn f64_to_u64(&self) -> Interval {
        if self.is_bottom() {
            return Interval::BOTTOM;
        }
        const U64_MAX: f64 = u64::MAX as f64;
        Interval {
            lo: self.lo.clamp(0.0, U64_MAX).floor(),
            hi: self.hi.clamp(0.0, U64_MAX).floor(),
            int: true,
        }
    }

    /// Saturating `u64` addition: clamped to `[0, u64::MAX]`, never wraps.
    pub fn saturating_add(&self, o: &Interval) -> Interval {
        self.add(o).clamp_u64()
    }

    /// Saturating `u64` subtraction.
    pub fn saturating_sub(&self, o: &Interval) -> Interval {
        self.sub(o).clamp_u64()
    }

    /// Clamp into the `u64` value range, marking integer-valued.
    pub fn clamp_u64(&self) -> Interval {
        if self.is_bottom() {
            return Interval::BOTTOM;
        }
        const U64_MAX: f64 = u64::MAX as f64;
        Interval { lo: self.lo.clamp(0.0, U64_MAX), hi: self.hi.clamp(0.0, U64_MAX), int: true }
    }

    /// Renders `[lo, hi]` compactly for findings: integers without
    /// decimals, infinities as `inf`.
    pub fn render(&self) -> String {
        fn bound(x: f64) -> String {
            if x == f64::INFINITY {
                "inf".to_owned()
            } else if x == f64::NEG_INFINITY {
                "-inf".to_owned()
            } else if x == x.trunc() && x.abs() < 1e15 {
                format!("{}", x as i64)
            } else {
                format!("{x:.3}")
            }
        }
        if self.is_bottom() {
            "unreachable".to_owned()
        } else {
            format!("[{}, {}]", bound(self.lo), bound(self.hi))
        }
    }
}

impl Lattice for Interval {
    fn join(&self, other: &Interval) -> Interval {
        if self.is_bottom() {
            return *other;
        }
        if other.is_bottom() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            int: self.int && other.int,
        }
    }

    fn widen(&self, other: &Interval) -> Interval {
        if self.is_bottom() {
            return *other;
        }
        if other.is_bottom() {
            return *self;
        }
        let lo = if other.lo < self.lo {
            THRESHOLDS.iter().rev().find(|&&t| t <= other.lo).copied().unwrap_or(f64::NEG_INFINITY)
        } else {
            self.lo
        };
        let hi = if other.hi > self.hi {
            THRESHOLDS.iter().find(|&&t| t >= other.hi).copied().unwrap_or(f64::INFINITY)
        } else {
            self.hi
        };
        Interval { lo, hi, int: self.int && other.int }
    }
}

/// How far a taint provenance path is allowed to grow; beyond this the
/// path is elided in the middle, never dropped.
const MAX_PATH: usize = 8;

/// Where a tainted value came from and the hops it took to get here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// The originating wire read, e.g. `as_f64("eps")`.
    pub source: String,
    /// Variable / function hops from source to the current use.
    pub path: Vec<String>,
}

impl Provenance {
    /// A fresh source with an empty path.
    pub fn new(source: impl Into<String>) -> Provenance {
        Provenance { source: source.into(), path: Vec::new() }
    }

    /// Appends one hop, deduplicating consecutive repeats and bounding
    /// the path length.
    pub fn hop(&self, step: &str) -> Provenance {
        let mut p = self.clone();
        if p.path.last().map(String::as_str) == Some(step) {
            return p;
        }
        if p.path.len() >= MAX_PATH {
            p.path.remove(MAX_PATH / 2);
        }
        p.path.push(step.to_owned());
        p
    }

    /// Renders `src → a → b` for findings.
    pub fn render(&self) -> String {
        let mut s = self.source.clone();
        for hop in &self.path {
            s.push_str(" → ");
            s.push_str(hop);
        }
        s
    }
}

/// The taint lattice: `Clean ⊑ Tainted`. The provenance is decoration —
/// ordering and equality for fixpoint purposes only distinguish the two
/// levels, so chains ascend at most once and widening is trivial.
#[derive(Debug, Clone)]
pub enum Taint {
    /// Not influenced by unvalidated wire input.
    Clean,
    /// Influenced by unvalidated wire input, with one witness flow.
    Tainted(Provenance),
}

impl Taint {
    /// True for [`Taint::Tainted`].
    pub fn is_tainted(&self) -> bool {
        matches!(self, Taint::Tainted(_))
    }

    /// The witness provenance, if tainted.
    pub fn provenance(&self) -> Option<&Provenance> {
        match self {
            Taint::Clean => None,
            Taint::Tainted(p) => Some(p),
        }
    }

    /// Appends a hop to the witness path, if tainted.
    pub fn hop(&self, step: &str) -> Taint {
        match self {
            Taint::Clean => Taint::Clean,
            Taint::Tainted(p) => Taint::Tainted(p.hop(step)),
        }
    }
}

impl PartialEq for Taint {
    fn eq(&self, other: &Taint) -> bool {
        // Provenance is a witness, not part of the abstract value: two
        // tainted values are equal for fixpoint purposes.
        self.is_tainted() == other.is_tainted()
    }
}

impl Lattice for Taint {
    fn join(&self, other: &Taint) -> Taint {
        match (self, other) {
            (Taint::Tainted(p), _) => Taint::Tainted(p.clone()),
            (_, Taint::Tainted(p)) => Taint::Tainted(p.clone()),
            _ => Taint::Clean,
        }
    }

    fn widen(&self, other: &Taint) -> Taint {
        self.join(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_hull() {
        let a = Interval::exact(1.0, true);
        let b = Interval::exact(4.0, true);
        assert_eq!(a.join(&b), Interval { lo: 1.0, hi: 4.0, int: true });
    }

    #[test]
    fn widen_hits_thresholds_then_infinity() {
        let a = Interval { lo: 0.2, hi: 0.4, int: false };
        let grown = Interval { lo: 0.1, hi: 0.9, int: false };
        let w = a.widen(&grown);
        assert_eq!((w.lo, w.hi), (0.0, 1.0), "thresholds catch the first growth");
        let grown2 = Interval { lo: -3.0, hi: 7.0, int: false };
        let w2 = w.widen(&grown2);
        assert!(w2.lo == f64::NEG_INFINITY && w2.hi == f64::INFINITY);
    }

    #[test]
    fn strict_positivity_survives_mul_div() {
        let tiny = Interval { lo: f64::MIN_POSITIVE, hi: 1.0, int: false };
        assert!(tiny.mul(&tiny).strictly_positive());
        let big = Interval { lo: 1.0, hi: f64::INFINITY, int: false };
        assert!(tiny.div(&big).strictly_positive());
    }

    #[test]
    fn division_by_maybe_zero_is_unknown() {
        let d = Interval { lo: 0.0, hi: 5.0, int: true };
        assert!(Interval::exact(1.0, false).div(&d).is_top());
    }

    #[test]
    fn f64_to_u64_matches_checked_semantics() {
        let neg = Interval { lo: -5.0, hi: -1.0, int: false };
        assert_eq!(neg.f64_to_u64(), Interval { lo: 0.0, hi: 0.0, int: true });
        let wide = Interval::TOP;
        let r = wide.f64_to_u64();
        assert_eq!(r.lo, 0.0);
        assert!(r.int);
    }

    #[test]
    fn taint_join_prefers_tainted_and_keeps_witness() {
        let t = Taint::Tainted(Provenance::new("as_f64(\"eps\")"));
        let j = Taint::Clean.join(&t);
        assert!(j.is_tainted());
        assert_eq!(j.provenance().unwrap().render(), "as_f64(\"eps\")");
    }

    #[test]
    fn provenance_paths_are_bounded() {
        let mut p = Provenance::new("src");
        for i in 0..50 {
            p = p.hop(&format!("v{i}"));
        }
        assert!(p.path.len() <= MAX_PATH);
        assert!(p.render().contains("v49"), "most recent hop survives");
    }
}
