//! cqa-lint: the workspace invariant checker.
//!
//! Rust's type system cannot express several invariants this workspace
//! relies on — "no panics reachable from the server's request path", "no
//! heap allocation reachable from the per-sample loops", "estimator math
//! never wraps or truncates", "all randomness flows from the seeded root
//! RNG", "every `unsafe` carries its proof", "observability, benchmark
//! series, and fault-point names come from their registries", "the wire
//! protocol and its document agree".
//! `cqa-lint` enforces them with a hand-rolled lexer ([`lexer`]), an item
//! parser ([`parser`]), and a conservative workspace call graph
//! ([`callgraph`]) that turns the panic/alloc/RNG rules into transitive
//! reachability queries; it has **zero** dependencies beyond std, so it
//! runs anywhere the workspace builds.
//!
//! Entry point: [`check_workspace`]. CLI: `cargo run -p cqa-lint -- check`.
//! Rules, rationale, and the suppression syntax are documented in
//! `docs/ANALYSIS.md`.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod dataflow;
pub mod domains;
pub mod lexer;
pub mod lockflow;
pub mod parser;
pub mod rules;
pub mod sarif;

use rules::{Finding, NameRegistry};
use std::fs;
use std::path::{Path, PathBuf};

/// Repo-relative path of the central observability name registry. This
/// file *defines* the allowed names, so the `obs-name-registry` rule does
/// not run on it.
pub const REGISTRY_FILE: &str = "crates/obs/src/names.rs";
/// Repo-relative path of the benchmark series name registry; exempt from
/// the `bench-name-registry` rule the same way.
pub const PERF_REGISTRY_FILE: &str = "crates/perf/src/names.rs";
/// Repo-relative path of the fault-point name registry, the source of
/// truth for the `fault-point-registry` rule.
pub const CHAOS_REGISTRY_FILE: &str = "crates/chaos/src/points.rs";
/// Repo-relative path of the wire-protocol implementation.
pub const PROTOCOL_FILE: &str = "crates/server/src/protocol.rs";
/// Repo-relative path of the wire-protocol document.
pub const PROTOCOL_DOC: &str = "docs/PROTOCOL.md";
/// Files on the server's request path, subject to `no-panic-in-request-path`.
pub const REQUEST_PATH_FILES: [&str; 3] =
    ["crates/server/src/server.rs", "crates/server/src/pool.rs", "crates/server/src/cache.rs"];
/// Directory globs (relative to the workspace root) whose `src` trees are
/// scanned. `tools/*/src` includes cqa-lint itself — the linter holds its
/// own invariants; its *fixtures* live outside `src` and are not scanned.
pub const SCAN_ROOTS: [&str; 3] = ["crates", "shims", "tools"];
/// Files holding the DKLR planners and Monte-Carlo estimator loops,
/// subject to `checked-estimator-math` and seeding `rng-flow`.
pub const ESTIMATOR_FILES: [&str; 3] =
    ["crates/core/src/coverage.rs", "crates/core/src/montecarlo.rs", "crates/core/src/optest.rs"];
/// Repo-relative path of the wire-input validator registry, the source of
/// truth for which functions sanitize taint under `wire-input-taint`.
pub const VALIDATOR_REGISTRY_FILE: &str = "crates/common/src/validate.rs";
/// Files the `estimator-intervals` interval analysis reports on (the
/// estimator files plus the convergence diagnostics).
pub const INTERVAL_FILES: [&str; 4] = [
    "crates/core/src/convergence.rs",
    "crates/core/src/coverage.rs",
    "crates/core/src/montecarlo.rs",
    "crates/core/src/optest.rs",
];
/// Repo-relative prefix under which NDJSON reads count as taint sources
/// for `wire-input-taint`.
pub const WIRE_SOURCE_PREFIX: &str = "crates/server/";

/// A fatal problem with the scan itself (unreadable file, missing
/// registry) — distinct from findings, which are problems with the code.
#[derive(Debug)]
pub struct CheckError(pub String);

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cqa-lint: {}", self.0)
    }
}

impl std::error::Error for CheckError {}

fn read(path: &Path) -> Result<String, CheckError> {
    fs::read_to_string(path).map_err(|e| CheckError(format!("cannot read {}: {e}", path.display())))
}

/// All `.rs` files under `<root>/<scan>/<member>/src`, sorted for
/// deterministic output, as (absolute, repo-relative) pairs.
fn source_files(root: &Path) -> Result<Vec<(PathBuf, String)>, CheckError> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue, // a scan root may legitimately not exist yet
        };
        for entry in entries {
            let entry = entry.map_err(|e| CheckError(format!("reading {}: {e}", dir.display())))?;
            let src = entry.path().join("src");
            if src.is_dir() {
                walk_rs(&src, &mut files)?;
            }
        }
    }
    let mut out = Vec::with_capacity(files.len());
    for f in files {
        let rel = f
            .strip_prefix(root)
            .map_err(|_| CheckError(format!("{} escapes the workspace root", f.display())))?
            .to_string_lossy()
            .replace('\\', "/");
        out.push((f.clone(), rel));
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), CheckError> {
    let entries =
        fs::read_dir(dir).map_err(|e| CheckError(format!("reading {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| CheckError(format!("reading {}: {e}", dir.display())))?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs every rule over a set of `(repo-relative path, source)` pairs:
/// the per-file rules, then the call-graph rules over the whole set. This
/// is the engine behind [`check_workspace`] and the fixture self-tests —
/// a transitive finding needs the *set*, not a single file, so fixtures
/// exercising cross-module reachability pass several files at once.
pub fn check_sources(sources: &[(String, String)], registry: &NameRegistry) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut lexed_v: Vec<lexer::Lexed> = Vec::with_capacity(sources.len());
    let mut stripped_v: Vec<Vec<lexer::Tok>> = Vec::with_capacity(sources.len());
    let mut parsed_v: Vec<parser::ParsedFile> = Vec::with_capacity(sources.len());

    for (rel, src) in sources {
        let lexed = lexer::lex(src);
        let stripped = lexer::strip_cfg_test(&lexed.toks);

        // safety-comment runs on the *full* stream: unsound tests count.
        findings.extend(rules::safety(&lexed, rel));
        findings.extend(rules::suppression_hygiene(&lexed, rel));
        if rel != REGISTRY_FILE {
            findings.extend(rules::obs_names(&lexed, &stripped, rel, registry));
        }
        if rel != PERF_REGISTRY_FILE {
            findings.extend(rules::bench_names(&lexed, &stripped, rel, registry));
        }
        findings.extend(rules::fault_points(&lexed, &stripped, rel, registry));
        parsed_v.push(parser::parse_file(rel, &stripped));
        lexed_v.push(lexed);
        stripped_v.push(stripped);
    }

    let graph = callgraph::Graph::build(&parsed_v);
    let flow = dataflow::analyze(
        &graph,
        &stripped_v,
        &registry.validators,
        &INTERVAL_FILES,
        WIRE_SOURCE_PREFIX,
    );
    findings.extend(rules::no_panic(&graph, &lexed_v, &REQUEST_PATH_FILES));
    findings.extend(rules::no_alloc(&graph, &lexed_v));
    findings.extend(rules::checked_math(&graph, &lexed_v, &ESTIMATOR_FILES, &flow));
    findings.extend(rules::dataflow_findings(&graph, &lexed_v, &flow));
    findings.extend(rules::rng_flow(&graph, &lexed_v, &stripped_v, &ESTIMATOR_FILES));
    findings.extend(lockflow::check(&graph, &lexed_v, &REQUEST_PATH_FILES));

    sort_dedup(&mut findings);
    findings
}

/// Sorts findings by file/line/rule and keeps one finding per
/// (file, line, rule): the same site can surface through several seeds
/// (e.g. an opaque call reached from both the request path and a hot
/// region) and one report with one path is enough to act on.
fn sort_dedup(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
}

/// Runs every rule over the workspace rooted at `root` and returns the
/// surviving findings, sorted by file/line/rule.
pub fn check_workspace(root: &Path) -> Result<Vec<Finding>, CheckError> {
    let registry_src = read(&root.join(REGISTRY_FILE))?;
    let mut registry = NameRegistry::parse(&registry_src);
    if registry.spans.is_empty() || registry.metrics.is_empty() || registry.fields.is_empty() {
        return Err(CheckError(format!(
            "{REGISTRY_FILE} yielded an empty SPANS, METRICS, or FIELDS registry — refusing to \
             lint against it"
        )));
    }
    let perf_registry = NameRegistry::parse(&read(&root.join(PERF_REGISTRY_FILE))?);
    if perf_registry.series.is_empty() {
        return Err(CheckError(format!(
            "{PERF_REGISTRY_FILE} yielded an empty SERIES registry — refusing to lint against it"
        )));
    }
    registry.merge(perf_registry);
    let chaos_registry = NameRegistry::parse(&read(&root.join(CHAOS_REGISTRY_FILE))?);
    if chaos_registry.points.is_empty() {
        return Err(CheckError(format!(
            "{CHAOS_REGISTRY_FILE} yielded an empty POINTS registry — refusing to lint against it"
        )));
    }
    registry.merge(chaos_registry);
    let validator_registry = NameRegistry::parse(&read(&root.join(VALIDATOR_REGISTRY_FILE))?);
    if validator_registry.validators.is_empty() {
        return Err(CheckError(format!(
            "{VALIDATOR_REGISTRY_FILE} yielded an empty VALIDATORS registry — refusing to lint \
             against it"
        )));
    }
    registry.merge(validator_registry);

    let mut sources = Vec::new();
    for (abs, rel) in source_files(root)? {
        sources.push((rel, read(&abs)?));
    }
    let mut findings = check_sources(&sources, &registry);

    // Reverse direction of fault-point-registry: every registered point
    // must be planted somewhere outside #[cfg(test)] code.
    let mut planted = std::collections::BTreeSet::new();
    for (_, src) in &sources {
        planted
            .extend(rules::fault_point_call_sites(&lexer::strip_cfg_test(&lexer::lex(src).toks)));
    }
    findings.extend(rules::fault_point_sync(&registry.points, &planted, CHAOS_REGISTRY_FILE));

    if let Some((_, proto_src)) = sources.iter().find(|(rel, _)| rel == PROTOCOL_FILE) {
        let stripped = lexer::strip_cfg_test(&lexer::lex(proto_src).toks);
        let doc = read(&root.join(PROTOCOL_DOC))?;
        let code_keys = rules::protocol_code_keys(&stripped);
        let doc_keys = rules::protocol_doc_keys(&doc);
        findings.extend(rules::protocol_sync(&code_keys, &doc_keys, PROTOCOL_FILE, PROTOCOL_DOC));
        findings.extend(rules::error_table_sync(
            &rules::protocol_error_kinds(&stripped),
            &rules::protocol_doc_error_kinds(&doc),
            PROTOCOL_FILE,
            PROTOCOL_DOC,
        ));
    }

    sort_dedup(&mut findings);
    Ok(findings)
}

/// Lints a single source string as if it were file `rel`, against the
/// given registry. Single-file view of [`check_sources`]; transitive rules
/// see only this file's functions.
pub fn check_source(rel: &str, src: &str, registry: &NameRegistry) -> Vec<Finding> {
    check_sources(&[(rel.to_owned(), src.to_owned())], registry)
}
