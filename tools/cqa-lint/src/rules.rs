//! The five invariant rules.
//!
//! Every rule works on the token view from [`crate::lexer`] and returns
//! [`Finding`]s. A finding on line `L` is dropped when line `L` or `L-1`
//! carries a `// cqa-lint: allow(<rule>)` comment; each suppression is a
//! reviewable artifact, which is the point of putting them in the source
//! instead of a config file. Rationale for each rule lives in
//! `docs/ANALYSIS.md`.

use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::BTreeSet;
use std::fmt;

/// Rule identifiers, as used in `allow(...)` suppressions and CLI output.
pub const NO_PANIC: &str = "no-panic-in-request-path";
pub const NO_ALLOC: &str = "no-alloc-in-hot-path";
pub const SAFETY: &str = "safety-comment";
pub const OBS_NAMES: &str = "obs-name-registry";
pub const PROTOCOL_SYNC: &str = "protocol-doc-sync";

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (one of the `pub const` rule names).
    pub rule: &'static str,
    /// Repo-relative file the finding is in.
    pub file: String,
    /// 1-based line (0 for whole-file findings like a missing doc entry).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// True when line `line` (or the line above it) carries
/// `cqa-lint: allow(<rule>)`.
fn suppressed(lexed: &Lexed, line: u32, rule: &str) -> bool {
    let marker = format!("cqa-lint: allow({rule})");
    [line, line.saturating_sub(1)]
        .iter()
        .any(|l| lexed.comment_on(*l).is_some_and(|c| c.contains(&marker)))
}

fn push(
    out: &mut Vec<Finding>,
    lexed: &Lexed,
    rule: &'static str,
    file: &str,
    line: u32,
    message: String,
) {
    if !suppressed(lexed, line, rule) {
        out.push(Finding { rule, file: file.to_owned(), line, message });
    }
}

// ---------------------------------------------------------------------------
// Rule 1: no-panic-in-request-path
// ---------------------------------------------------------------------------

/// Flags `.unwrap()`, `.expect(…)`, and `panic!`-family macros. Applied to
/// the request path of the server (`server.rs`, `pool.rs`, `cache.rs`):
/// a panic there unwinds a worker or connection thread and silently drops
/// the request, instead of producing the structured protocol error the
/// client can act on.
pub fn no_panic(lexed: &Lexed, toks: &[Tok], file: &str) -> Vec<Finding> {
    const MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if prev_dot && (t.text == "unwrap" || t.text == "expect") {
            push(
                &mut out,
                lexed,
                NO_PANIC,
                file,
                t.line,
                format!(
                    ".{}() can panic a request thread; return a structured protocol error instead",
                    t.text
                ),
            );
        } else if next_bang && MACROS.contains(&t.text.as_str()) {
            push(
                &mut out,
                lexed,
                NO_PANIC,
                file,
                t.line,
                format!(
                    "{}! can panic a request thread; return a structured protocol error instead",
                    t.text
                ),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 2: no-alloc-in-hot-path
// ---------------------------------------------------------------------------

/// Inclusive line ranges bracketed by `// cqa-lint: hot-path begin` /
/// `// cqa-lint: hot-path end` comments. An unclosed `begin` extends to
/// the end of the file (and is itself reported by the caller via
/// [`hot_path_regions`]' second return value).
pub fn hot_path_regions(lexed: &Lexed) -> (Vec<(u32, u32)>, Option<u32>) {
    let mut regions = Vec::new();
    let mut open: Option<u32> = None;
    for (line, text) in &lexed.comments {
        if text.contains("cqa-lint: hot-path begin") {
            open = Some(*line);
        } else if text.contains("cqa-lint: hot-path end") {
            if let Some(start) = open.take() {
                regions.push((start, *line));
            }
        }
    }
    (regions, open)
}

/// Flags heap allocation inside `hot-path` regions: the four scheme
/// sampling loops run per *sample* (millions of iterations per query), so
/// a stray `clone()` or `format!` is a silent orders-of-magnitude
/// regression that no unit test fails on.
pub fn no_alloc(lexed: &Lexed, toks: &[Tok], file: &str) -> Vec<Finding> {
    const METHODS: [&str; 5] = ["clone", "to_string", "to_owned", "to_vec", "collect"];
    const MACROS: [&str; 2] = ["format", "vec"];
    const TYPES: [&str; 3] = ["Vec", "Box", "String"];
    const CTORS: [&str; 3] = ["new", "from", "with_capacity"];

    let (regions, unclosed) = hot_path_regions(lexed);
    let mut out = Vec::new();
    if let Some(line) = unclosed {
        push(
            &mut out,
            lexed,
            NO_ALLOC,
            file,
            line,
            "hot-path region is never closed (missing `// cqa-lint: hot-path end`)".to_owned(),
        );
    }
    if regions.is_empty() {
        return out;
    }
    let in_region = |line: u32| regions.iter().any(|(a, b)| (*a..=*b).contains(&line));
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !in_region(t.line) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let path_ctor = TYPES.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|n| n.kind == TokKind::Ident && CTORS.contains(&n.text.as_str()));
        if prev_dot && METHODS.contains(&t.text.as_str()) {
            push(
                &mut out,
                lexed,
                NO_ALLOC,
                file,
                t.line,
                format!(".{}() allocates inside a hot-path region", t.text),
            );
        } else if next_bang && MACROS.contains(&t.text.as_str()) {
            push(
                &mut out,
                lexed,
                NO_ALLOC,
                file,
                t.line,
                format!("{}! allocates inside a hot-path region", t.text),
            );
        } else if path_ctor {
            push(
                &mut out,
                lexed,
                NO_ALLOC,
                file,
                t.line,
                format!("{}::{} allocates inside a hot-path region", t.text, toks[i + 3].text),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 3: safety-comment
// ---------------------------------------------------------------------------

/// Every `unsafe` keyword must sit directly under a comment block that
/// contains `SAFETY:` — the proof obligation travels with the code. Runs
/// on the full token stream (tests included): an unsound test is still
/// unsound.
pub fn safety(lexed: &Lexed, file: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in lexed.toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // `unsafe` inside an attribute (e.g. `#[allow(unsafe_code)]`)
        // never introduces an unsafe context; only the keyword position
        // matters, so skip idents directly between brackets of an attr.
        if i > 0 && lexed.toks[i - 1].is_punct('(') {
            continue;
        }
        if has_safety_comment_above(lexed, t.line) {
            continue;
        }
        push(
            &mut out,
            lexed,
            SAFETY,
            file,
            t.line,
            "`unsafe` without a `// SAFETY:` comment directly above".to_owned(),
        );
    }
    out
}

/// Walks upward from `line - 1` through the contiguous comment block (no
/// intervening code-token lines) looking for `SAFETY:`. Also accepts a
/// `SAFETY:` comment on the `unsafe` line itself (trailing comment).
fn has_safety_comment_above(lexed: &Lexed, line: u32) -> bool {
    if lexed.comment_on(line).is_some_and(|c| c.contains("SAFETY:")) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l > 0 {
        match lexed.comment_on(l) {
            Some(c) if c.contains("SAFETY:") => return true,
            Some(_) if !lexed.token_lines.contains(&l) => l -= 1,
            _ => return false, // code or blank line: the block ended
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 4: obs-name-registry
// ---------------------------------------------------------------------------

/// The central span/metric name registry, parsed from
/// `crates/obs/src/names.rs`.
#[derive(Debug, Clone, Default)]
pub struct NameRegistry {
    pub spans: BTreeSet<String>,
    pub metrics: BTreeSet<String>,
}

impl NameRegistry {
    /// Parses the registry source: the string literals of the `SPANS` and
    /// `METRICS` const arrays.
    pub fn parse(src: &str) -> NameRegistry {
        let lexed = crate::lexer::lex(src);
        NameRegistry {
            spans: const_array_strings(&lexed.toks, "SPANS"),
            metrics: const_array_strings(&lexed.toks, "METRICS"),
        }
    }
}

fn const_array_strings(toks: &[Tok], name: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident(name) {
            // Scan past the `=` (skipping the `&[&str]` type annotation's
            // brackets) to the array literal's opening `[`, then collect
            // literals to the matching `]`.
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct('=') && !toks[j].is_punct(';') {
                j += 1;
            }
            while j < toks.len() && !toks[j].is_punct('[') && !toks[j].is_punct(';') {
                j += 1;
            }
            let mut depth = 0usize;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Str => {
                        out.insert(toks[j].text.clone());
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Span-creating APIs whose first string-literal argument is a span name.
const SPAN_APIS: [&str; 4] = ["span", "span_args", "record_span", "instant_args"];
/// Metric-registering APIs (and the `counter!` declaration macro in
/// cqa-core's telemetry) whose first string-literal argument is a metric
/// name.
const METRIC_APIS: [&str; 3] = ["counter", "gauge", "histogram"];

/// Flags span/metric name literals not present in the registry. Dashboards,
/// trace post-processing, and the Prometheus exposition all key on these
/// strings; an unregistered (usually misspelled) name silently vanishes
/// from every chart instead of failing anywhere.
pub fn obs_names(lexed: &Lexed, toks: &[Tok], file: &str, reg: &NameRegistry) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_span_api = SPAN_APIS.contains(&t.text.as_str());
        let is_metric_api = METRIC_APIS.contains(&t.text.as_str());
        if !is_span_api && !is_metric_api {
            continue;
        }
        // Accept both `name(…)` and `name!(…)` shapes.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.is_punct('!')) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // A definition site (`fn counter(&self, name: &str, …)`) has no
        // literal; a call with a computed name has none either. Take the
        // first string literal before the matching close paren.
        let Some(name_tok) = first_literal_in_parens(toks, j) else { continue };
        let (set, kind) = if is_span_api { (&reg.spans, "span") } else { (&reg.metrics, "metric") };
        if !set.contains(&name_tok.text) {
            push(
                &mut out,
                lexed,
                OBS_NAMES,
                file,
                name_tok.line,
                format!(
                    "{kind} name {:?} is not in the registry (crates/obs/src/names.rs)",
                    name_tok.text
                ),
            );
        }
    }
    out
}

/// The first string literal strictly inside the paren group opening at
/// `open` (nested groups included), or `None`.
fn first_literal_in_parens(toks: &[Tok], open: usize) -> Option<&Tok> {
    let mut depth = 0usize;
    for t in &toks[open..] {
        match &t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            TokKind::Str => return Some(t),
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Rule 5: protocol-doc-sync
// ---------------------------------------------------------------------------

/// Wire keys nested payloads document but `protocol.rs` does not build:
/// the flat stats fields assembled in `metrics.rs`. Their shape is covered
/// by the server's metrics tests; listing them here keeps the reverse
/// check exact instead of fuzzy.
pub const DOC_ONLY_KEYS: [&str; 3] = ["cache_hits", "cache_misses", "cache_canonical_rekeys"];

fn is_wire_key(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().next().is_some_and(|b| b.is_ascii_lowercase() || b == b'_')
        && s.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// Extracts the wire field names `protocol.rs` reads or writes: literals
/// in `("key", value)` serialization pairs and literals passed to the
/// `get`/`req_*` accessors.
pub fn protocol_code_keys(toks: &[Tok]) -> BTreeSet<String> {
    const ACCESSORS: [&str; 5] = ["get", "req_str", "req_f64", "req_u64", "req_bool"];
    let mut keys = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Str || !is_wire_key(&t.text) {
            continue;
        }
        let prev_open = i > 0 && toks[i - 1].is_punct('(');
        if !prev_open {
            continue;
        }
        let pair_key = toks.get(i + 1).is_some_and(|n| n.is_punct(','));
        let accessor_arg = i >= 2
            && toks[i - 2].kind == TokKind::Ident
            && ACCESSORS.contains(&toks[i - 2].text.as_str());
        if pair_key || accessor_arg {
            keys.insert(t.text.clone());
        }
    }
    keys
}

/// Extracts the documented wire keys from `docs/PROTOCOL.md`: every
/// `"key":` occurrence (JSON examples and inline code alike).
pub fn protocol_doc_keys(doc: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let bytes = doc.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len()
                && (bytes[j].is_ascii_lowercase() || bytes[j].is_ascii_digit() || bytes[j] == b'_')
            {
                j += 1;
            }
            if j > start && bytes.get(j) == Some(&b'"') {
                let mut k = j + 1;
                while k < bytes.len() && (bytes[k] == b' ' || bytes[k] == b'\t') {
                    k += 1;
                }
                if bytes.get(k) == Some(&b':') {
                    keys.insert(doc[start..j].to_owned());
                }
            }
            i = j;
        }
        i += 1;
    }
    keys
}

/// Compares the code and doc key sets. `protocol.rs` and `PROTOCOL.md`
/// must agree exactly (modulo [`DOC_ONLY_KEYS`]): a field the doc misses
/// strands client authors; a field the code misses means the doc promises
/// something the server will never send.
pub fn protocol_sync(
    code_keys: &BTreeSet<String>,
    doc_keys: &BTreeSet<String>,
    code_file: &str,
    doc_file: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for key in code_keys {
        if !doc_keys.contains(key) {
            out.push(Finding {
                rule: PROTOCOL_SYNC,
                file: doc_file.to_owned(),
                line: 0,
                message: format!(
                    "wire field {key:?} is used in {code_file} but never documented (expected a {:?} occurrence)",
                    format!("\"{key}\":")
                ),
            });
        }
    }
    for key in doc_keys {
        if !code_keys.contains(key) && !DOC_ONLY_KEYS.contains(&key.as_str()) {
            out.push(Finding {
                rule: PROTOCOL_SYNC,
                file: code_file.to_owned(),
                line: 0,
                message: format!(
                    "documented wire field {key:?} does not appear in {code_file} (stale doc, or add it to DOC_ONLY_KEYS if it moved into a nested payload)"
                ),
            });
        }
    }
    out
}
