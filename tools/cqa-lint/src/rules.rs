//! The invariant rules.
//!
//! Every rule returns [`Finding`]s. The flagship rules
//! (`no-panic-in-request-path`, `no-alloc-in-hot-path`, `rng-flow`) are
//! *transitive*: they run as reachability queries over the conservative
//! workspace call graph in [`crate::callgraph`], seeded from the server's
//! request-path files and the marked hot-path sampling regions, so a
//! panicking or allocating helper two crates away is found at its
//! definition site with the call chain in the message. The remaining rules
//! work directly on the token view from [`crate::lexer`].
//!
//! A finding on line `L` is dropped when line `L` or `L-1` carries a
//! `// cqa-lint: allow(<rule>): <reason>` comment; the reason clause is
//! mandatory (`suppression-needs-reason` polices it) so each suppression
//! is a reviewable artifact. Rationale for each rule lives in
//! `docs/ANALYSIS.md`.

use crate::callgraph::{FnId, Graph, Seed};
use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Rule identifiers, as used in `allow(...)` suppressions and CLI output.
pub const NO_PANIC: &str = "no-panic-in-request-path";
pub const NO_ALLOC: &str = "no-alloc-in-hot-path";
pub const SAFETY: &str = "safety-comment";
pub const OBS_NAMES: &str = "obs-name-registry";
pub const BENCH_NAMES: &str = "bench-name-registry";
pub const PROTOCOL_SYNC: &str = "protocol-doc-sync";
pub const OPAQUE: &str = "opaque-call";
pub const CHECKED_MATH: &str = "checked-estimator-math";
pub const RNG_FLOW: &str = "rng-flow";
pub const SUPPRESSION: &str = "suppression-needs-reason";
pub const FAULT_POINTS: &str = "fault-point-registry";
pub const LOCK_ORDER: &str = "lock-order";
pub const NO_BLOCKING: &str = "no-blocking-while-locked";
pub const GUARD_FAULT: &str = "no-guard-across-fault-point";
pub const WIRE_TAINT: &str = "wire-input-taint";
pub const EST_INTERVALS: &str = "estimator-intervals";

/// Every rule name, for validating `allow(...)` suppressions.
pub const ALL_RULES: [&str; 16] = [
    NO_PANIC,
    NO_ALLOC,
    SAFETY,
    OBS_NAMES,
    BENCH_NAMES,
    PROTOCOL_SYNC,
    OPAQUE,
    CHECKED_MATH,
    RNG_FLOW,
    SUPPRESSION,
    FAULT_POINTS,
    LOCK_ORDER,
    NO_BLOCKING,
    GUARD_FAULT,
    WIRE_TAINT,
    EST_INTERVALS,
];

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (one of the `pub const` rule names).
    pub rule: &'static str,
    /// Repo-relative file the finding is in.
    pub file: String,
    /// 1-based line (0 for whole-file findings like a missing doc entry).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// True when line `line` (or the line above it) carries
/// `cqa-lint: allow(<rule>)`.
fn suppressed(lexed: &Lexed, line: u32, rule: &str) -> bool {
    let marker = format!("cqa-lint: allow({rule})");
    [line, line.saturating_sub(1)]
        .iter()
        .any(|l| lexed.comment_on(*l).is_some_and(|c| c.contains(&marker)))
}

pub(crate) fn push(
    out: &mut Vec<Finding>,
    lexed: &Lexed,
    rule: &'static str,
    file: &str,
    line: u32,
    message: String,
) {
    if !suppressed(lexed, line, rule) {
        out.push(Finding { rule, file: file.to_owned(), line, message });
    }
}

// ---------------------------------------------------------------------------
// Rule 1: no-panic-in-request-path (transitive)
// ---------------------------------------------------------------------------

/// Which effect a reachability pass is hunting.
#[derive(Clone, Copy, PartialEq)]
enum Effect {
    Panic,
    Alloc,
}

/// Runs a reachability query from `seeds` and reports every panic/alloc
/// effect site in the reached set, plus every opaque call the graph could
/// not see through. Seed functions may be restricted to line ranges (the
/// marked hot-path regions); transitively reached functions count in full.
fn emit_reach(
    g: &Graph<'_>,
    lexed: &[Lexed],
    seeds: &[Seed],
    effect: Effect,
    rule: &'static str,
    out: &mut Vec<Finding>,
) {
    let parent = g.reach(seeds);
    let seed_ranges: BTreeMap<FnId, &Option<Vec<(u32, u32)>>> =
        seeds.iter().map(|(id, r)| (*id, r)).collect();
    for &id in parent.keys() {
        let facts = &g.facts[id.0][id.1];
        let is_seed = seed_ranges.contains_key(&id);
        let in_scope = |line: u32| match seed_ranges.get(&id) {
            Some(Some(ranges)) => ranges.iter().any(|(a, b)| (*a..=*b).contains(&line)),
            _ => true,
        };
        let rel = &g.files[id.0].rel;
        let via = |line: u32| {
            if is_seed {
                String::new()
            } else {
                let _ = line;
                format!(" (reachable via {})", g.path_to(&parent, id))
            }
        };
        let sites = match effect {
            Effect::Panic => &facts.panics,
            Effect::Alloc => &facts.allocs,
        };
        for s in sites.iter().filter(|s| in_scope(s.line)) {
            let msg = match effect {
                Effect::Panic => format!(
                    "{} can panic a request thread; return a structured protocol error instead{}",
                    s.what,
                    via(s.line)
                ),
                Effect::Alloc => {
                    format!("{} allocates inside a hot-path region{}", s.what, via(s.line))
                }
            };
            push(out, &lexed[id.0], rule, rel, s.line, msg);
        }
        for s in facts.opaques.iter().filter(|s| in_scope(s.line)) {
            push(
                out,
                &lexed[id.0],
                OPAQUE,
                rel,
                s.line,
                format!(
                    "opaque call {} through a closure/fn pointer — the call graph cannot verify {rule} past it{}",
                    s.what,
                    via(s.line)
                ),
            );
        }
    }
}

/// Transitive panic freedom for the server's request path: every function
/// defined in the request-path files is a seed, and every panic site
/// (std `unwrap`/`expect`, `panic!`-family macros) *reachable* from a seed
/// is a finding — a panic anywhere in the closure unwinds a worker or
/// connection thread and silently drops the request instead of producing
/// the structured protocol error the client can act on. Slice/map indexing
/// is flagged in the seed files themselves (`v[i]` panics on a bad index;
/// use `.get()`).
pub fn no_panic(g: &Graph<'_>, lexed: &[Lexed], request_files: &[&str]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut seeds: Vec<Seed> = Vec::new();
    for (fi, file) in g.files.iter().enumerate() {
        if !request_files.contains(&file.rel.as_str()) {
            continue;
        }
        for (ni, f) in file.fns.iter().enumerate() {
            seeds.push(((fi, ni), None));
            for &line in &f.index_sites {
                push(
                    &mut out,
                    &lexed[fi],
                    NO_PANIC,
                    &file.rel,
                    line,
                    "indexing with [] can panic a request thread; use .get() and shed the error"
                        .to_owned(),
                );
            }
        }
    }
    emit_reach(g, lexed, &seeds, Effect::Panic, NO_PANIC, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Rule 2: no-alloc-in-hot-path (transitive)
// ---------------------------------------------------------------------------

/// Inclusive line ranges bracketed by `// cqa-lint: hot-path begin` /
/// `// cqa-lint: hot-path end` comments. An unclosed `begin` extends to
/// the end of the file (and is itself reported by the caller via
/// [`hot_path_regions`]' second return value).
pub fn hot_path_regions(lexed: &Lexed) -> (Vec<(u32, u32)>, Option<u32>) {
    let mut regions = Vec::new();
    let mut open: Option<u32> = None;
    for (line, text) in &lexed.comments {
        if text.contains("cqa-lint: hot-path begin") {
            open = Some(*line);
        } else if text.contains("cqa-lint: hot-path end") {
            if let Some(start) = open.take() {
                regions.push((start, *line));
            }
        }
    }
    (regions, open)
}

/// Transitive allocation freedom for the marked sampling regions: every
/// function overlapping a `hot-path` region is a seed (restricted to the
/// region's lines), and every allocation site reachable from one is a
/// finding. The four scheme sampling loops run per *sample* (millions of
/// iterations per query), so a stray `clone()` two modules away is a
/// silent orders-of-magnitude regression that no unit test fails on.
pub fn no_alloc(g: &Graph<'_>, lexed: &[Lexed]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut seeds: Vec<Seed> = Vec::new();
    for (fi, file) in g.files.iter().enumerate() {
        let (regions, unclosed) = hot_path_regions(&lexed[fi]);
        if let Some(line) = unclosed {
            push(
                &mut out,
                &lexed[fi],
                NO_ALLOC,
                &file.rel,
                line,
                "hot-path region is never closed (missing `// cqa-lint: hot-path end`)".to_owned(),
            );
        }
        if regions.is_empty() {
            continue;
        }
        for (ni, f) in file.fns.iter().enumerate() {
            let end = f.end_line.max(f.line);
            if regions.iter().any(|(a, b)| f.line <= *b && end >= *a) {
                seeds.push(((fi, ni), Some(regions.clone())));
            }
        }
    }
    emit_reach(g, lexed, &seeds, Effect::Alloc, NO_ALLOC, &mut out);
    out
}

/// Seeds shared by `rng-flow`: hot-path regions plus every estimator
/// function (the DKLR planners and Monte-Carlo loops in `crates/core`).
fn sampling_seeds(g: &Graph<'_>, lexed: &[Lexed], estimator_files: &[&str]) -> Vec<Seed> {
    let mut seeds: Vec<Seed> = Vec::new();
    for (fi, file) in g.files.iter().enumerate() {
        if estimator_files.contains(&file.rel.as_str()) {
            for ni in 0..file.fns.len() {
                seeds.push(((fi, ni), None));
            }
            continue;
        }
        let (regions, _) = hot_path_regions(&lexed[fi]);
        if regions.is_empty() {
            continue;
        }
        for (ni, f) in file.fns.iter().enumerate() {
            let end = f.end_line.max(f.line);
            if regions.iter().any(|(a, b)| f.line <= *b && end >= *a) {
                seeds.push(((fi, ni), Some(regions.clone())));
            }
        }
    }
    seeds
}

// ---------------------------------------------------------------------------
// Rule: checked-estimator-math
// ---------------------------------------------------------------------------

/// Flags unchecked arithmetic in the estimator files (the DKLR stopping
/// rule, iteration planners, and Monte-Carlo loops): a silently wrapping
/// `+`/`*` on an iteration count or a truncating `as` cast corrupts the
/// (ε, δ) guarantee without any test failing. Narrowing casts
/// (`as u32` and smaller) and float-result casts (`.ceil() as u64`) must
/// go through the checked conversions in `cqa_common::checked`.
///
/// The syntactic scan is refined by the interval analysis in
/// [`crate::dataflow`]: an arithmetic site whose operand ranges prove the
/// result fits in `u64` (recorded in `proven_arith`) is *semantically*
/// safe and demoted; a site the analysis saw but could not bound gets its
/// operand ranges appended so the report says *why* checked ops are needed.
pub fn checked_math(
    g: &Graph<'_>,
    lexed: &[Lexed],
    estimator_files: &[&str],
    flow: &crate::dataflow::DataflowReport,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, file) in g.files.iter().enumerate() {
        if !estimator_files.contains(&file.rel.as_str()) {
            continue;
        }
        for f in &file.fns {
            for c in &f.cast_sites {
                let msg = if c.float_source {
                    format!(
                        "float result cast `as {}` silently truncates/saturates in estimator math; use cqa_common::checked::f64_to_u64 (fn {})",
                        c.target, f.name
                    )
                } else {
                    format!(
                        "narrowing cast `as {}` can silently wrap an iteration count; use try_from or a checked helper (fn {})",
                        c.target, f.name
                    )
                };
                push(&mut out, &lexed[fi], CHECKED_MATH, &file.rel, c.line, msg);
            }
            for a in &f.arith_sites {
                if flow.proven_arith.contains(&(fi, a.line)) {
                    continue; // range-proven: the result cannot exceed u64
                }
                let why = flow
                    .arith_notes
                    .get(&(fi, a.line))
                    .map(|n| format!("; interval analysis could not bound it ({n})"))
                    .unwrap_or_default();
                push(
                    &mut out,
                    &lexed[fi],
                    CHECKED_MATH,
                    &file.rel,
                    a.line,
                    format!(
                        "unchecked `{}` on integer `{}` can overflow silently in estimator math; use checked_/saturating_ arithmetic (fn {}){why}",
                        a.op, a.operand, f.name
                    ),
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rules: wire-input-taint, estimator-intervals
// ---------------------------------------------------------------------------

/// Converts the raw dataflow findings (taint sinks reached by wire input,
/// interval violations in estimator math) into rule findings, applying the
/// standard reasoned-suppression mechanism.
pub fn dataflow_findings(
    g: &Graph<'_>,
    lexed: &[Lexed],
    flow: &crate::dataflow::DataflowReport,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for raw in &flow.raw {
        let rule = if raw.taint { WIRE_TAINT } else { EST_INTERVALS };
        push(
            &mut out,
            &lexed[raw.file],
            rule,
            &g.files[raw.file].rel,
            raw.line,
            raw.message.clone(),
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: rng-flow
// ---------------------------------------------------------------------------

/// Ambient entropy sources that would make runs irreproducible.
const AMBIENT_ENTROPY: [&str; 5] =
    ["thread_rng", "OsRng", "from_entropy", "getrandom", "SystemRandom"];

/// Every RNG reaching a sampling loop must flow from the seeded root
/// `Mt64` (constructed once per query from the request seed, `fork()`ed at
/// scheme boundaries). Two ways to break that, both flagged: an ambient
/// entropy source anywhere in production code, and a fresh
/// `Mt64::new`/`from_key` construction inside the sampling flow (reachable
/// from an estimator function or a hot-path region), which would decouple
/// the samples from the request seed and make reruns diverge.
pub fn rng_flow(
    g: &Graph<'_>,
    lexed: &[Lexed],
    stripped: &[Vec<Tok>],
    estimator_files: &[&str],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, toks) in stripped.iter().enumerate() {
        for t in toks {
            if t.kind == TokKind::Ident && AMBIENT_ENTROPY.contains(&t.text.as_str()) {
                push(
                    &mut out,
                    &lexed[fi],
                    RNG_FLOW,
                    &g.files[fi].rel,
                    t.line,
                    format!(
                        "ambient entropy source `{}` breaks run reproducibility; all randomness must flow from the seeded root Mt64",
                        t.text
                    ),
                );
            }
        }
    }
    let seeds = sampling_seeds(g, lexed, estimator_files);
    let parent = g.reach(&seeds);
    let seed_set: BTreeSet<FnId> = seeds.iter().map(|(id, _)| *id).collect();
    for &id in parent.keys() {
        let facts = &g.facts[id.0][id.1];
        for s in &facts.rng_ctors {
            let via = if seed_set.contains(&id) {
                String::new()
            } else {
                format!(" (reachable via {})", g.path_to(&parent, id))
            };
            push(
                &mut out,
                &lexed[id.0],
                RNG_FLOW,
                &g.files[id.0].rel,
                s.line,
                format!(
                    "{} constructs a fresh RNG inside the sampling flow{via}; thread the seeded root Mt64 (or fork() it at the scheme boundary) instead",
                    s.what
                ),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: suppression-needs-reason
// ---------------------------------------------------------------------------

const ALLOW_MARKER: &str = "cqa-lint: allow(";

/// Every `cqa-lint: allow(rule)` suppression must name a known rule and
/// carry a justification clause — `// cqa-lint: allow(rule): <reason>`.
/// A bare suppression is itself a finding (and this rule is not
/// suppressible: an `allow(suppression-needs-reason)` would defeat it).
pub fn suppression_hygiene(lexed: &Lexed, file: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for (line, text) in &lexed.comments {
        // Doc comments describe the syntax; they are never suppressions.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let mut rest = text.as_str();
        while let Some(pos) = rest.find(ALLOW_MARKER) {
            rest = &rest[pos + ALLOW_MARKER.len()..];
            let Some(close) = rest.find(')') else {
                out.push(Finding {
                    rule: SUPPRESSION,
                    file: file.to_owned(),
                    line: *line,
                    message: "malformed suppression: missing `)` after `allow(`".to_owned(),
                });
                break;
            };
            let rule_name = rest[..close].trim();
            rest = &rest[close + 1..];
            if !ALL_RULES.contains(&rule_name) {
                out.push(Finding {
                    rule: SUPPRESSION,
                    file: file.to_owned(),
                    line: *line,
                    message: format!("suppression names unknown rule {rule_name:?}"),
                });
                continue;
            }
            if rule_name == SUPPRESSION {
                out.push(Finding {
                    rule: SUPPRESSION,
                    file: file.to_owned(),
                    line: *line,
                    message: "suppression-needs-reason cannot be suppressed".to_owned(),
                });
                continue;
            }
            let after = rest.trim_start();
            let has_reason = after.starts_with(':')
                && !after[1..].trim_start_matches([':', ' ']).trim().is_empty();
            if !has_reason {
                out.push(Finding {
                    rule: SUPPRESSION,
                    file: file.to_owned(),
                    line: *line,
                    message: format!(
                        "suppression for `{rule_name}` lacks a justification; write `// cqa-lint: allow({rule_name}): <reason>`"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 3: safety-comment
// ---------------------------------------------------------------------------

/// Every `unsafe` keyword must sit directly under a comment block that
/// contains `SAFETY:` — the proof obligation travels with the code. Runs
/// on the full token stream (tests included): an unsound test is still
/// unsound.
pub fn safety(lexed: &Lexed, file: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in lexed.toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // `unsafe` inside an attribute (e.g. `#[allow(unsafe_code)]`)
        // never introduces an unsafe context; only the keyword position
        // matters, so skip idents directly between brackets of an attr.
        if i > 0 && lexed.toks[i - 1].is_punct('(') {
            continue;
        }
        if has_safety_comment_above(lexed, t.line) {
            continue;
        }
        push(
            &mut out,
            lexed,
            SAFETY,
            file,
            t.line,
            "`unsafe` without a `// SAFETY:` comment directly above".to_owned(),
        );
    }
    out
}

/// Walks upward from `line - 1` through the contiguous comment block (no
/// intervening code-token lines) looking for `SAFETY:`. Also accepts a
/// `SAFETY:` comment on the `unsafe` line itself (trailing comment).
fn has_safety_comment_above(lexed: &Lexed, line: u32) -> bool {
    if lexed.comment_on(line).is_some_and(|c| c.contains("SAFETY:")) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l > 0 {
        match lexed.comment_on(l) {
            Some(c) if c.contains("SAFETY:") => return true,
            Some(_) if !lexed.token_lines.contains(&l) => l -= 1,
            _ => return false, // code or blank line: the block ended
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 4: obs-name-registry
// ---------------------------------------------------------------------------

/// The central name registries: span/metric/flight-digest-field names
/// parsed from `crates/obs/src/names.rs`, benchmark series names from
/// `crates/perf/src/names.rs`, fault-point names from
/// `crates/chaos/src/points.rs`.
#[derive(Debug, Clone, Default)]
pub struct NameRegistry {
    pub spans: BTreeSet<String>,
    pub metrics: BTreeSet<String>,
    pub series: BTreeSet<String>,
    pub fields: BTreeSet<String>,
    pub points: BTreeSet<String>,
    /// Sanitizer function names from the validator registry: a value
    /// returned by one of these is no longer wire-tainted.
    pub validators: BTreeSet<String>,
}

impl NameRegistry {
    /// Parses a registry source: the string literals of the `SPANS`,
    /// `METRICS`, `SERIES`, `FIELDS`, and `POINTS` const arrays (a file
    /// defining only some of the five yields empty sets for the rest).
    pub fn parse(src: &str) -> NameRegistry {
        // Registries are defined in non-test code; stripping `#[cfg(test)]`
        // keeps a test module's stray literals (e.g. a negative-lookup
        // probe name) out of the allowed set.
        let toks = crate::lexer::strip_cfg_test(&crate::lexer::lex(src).toks);
        NameRegistry {
            spans: const_array_strings(&toks, "SPANS"),
            metrics: const_array_strings(&toks, "METRICS"),
            series: const_array_strings(&toks, "SERIES"),
            fields: const_array_strings(&toks, "FIELDS"),
            points: const_array_strings(&toks, "POINTS"),
            validators: const_array_strings(&toks, "VALIDATORS"),
        }
    }

    /// Merges another registry's names into this one (used to combine the
    /// obs, perf, and chaos registry files into one lookup).
    pub fn merge(&mut self, other: NameRegistry) {
        self.spans.extend(other.spans);
        self.metrics.extend(other.metrics);
        self.series.extend(other.series);
        self.fields.extend(other.fields);
        self.points.extend(other.points);
        self.validators.extend(other.validators);
    }
}

fn const_array_strings(toks: &[Tok], name: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident(name) {
            // Scan past the `=` (skipping the `&[&str]` type annotation's
            // brackets) to the array literal's opening `[`, then collect
            // literals to the matching `]`.
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct('=') && !toks[j].is_punct(';') {
                j += 1;
            }
            while j < toks.len() && !toks[j].is_punct('[') && !toks[j].is_punct(';') {
                j += 1;
            }
            // A non-definition mention (`POINTS.iter()`, `POINTS[i]`…) has
            // no `= … [` ahead of its statement's `;` — collect nothing.
            if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                let mut depth = 0usize;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokKind::Punct('[') => depth += 1,
                        TokKind::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokKind::Str => {
                            out.insert(toks[j].text.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Span-creating APIs whose first string-literal argument is a span name.
const SPAN_APIS: [&str; 4] = ["span", "span_args", "record_span", "instant_args"];
/// Metric-registering APIs (and the `counter!` declaration macro in
/// cqa-core's telemetry) whose first string-literal argument is a metric
/// name.
const METRIC_APIS: [&str; 3] = ["counter", "gauge", "histogram"];
/// Flight-recorder wire-rendering APIs whose first string-literal argument
/// is a digest/slowlog field name (`crates/obs/src/flight.rs`).
const FIELD_APIS: [&str; 1] = ["digest_field"];

/// Flags span/metric/digest-field name literals not present in the
/// registry. Dashboards, trace post-processing, the Prometheus exposition,
/// and `debug flight`/`debug slowlog` consumers all key on these strings;
/// an unregistered (usually misspelled) name silently vanishes from every
/// chart or digest instead of failing anywhere.
pub fn obs_names(lexed: &Lexed, toks: &[Tok], file: &str, reg: &NameRegistry) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_span_api = SPAN_APIS.contains(&t.text.as_str());
        let is_metric_api = METRIC_APIS.contains(&t.text.as_str());
        let is_field_api = FIELD_APIS.contains(&t.text.as_str());
        if !is_span_api && !is_metric_api && !is_field_api {
            continue;
        }
        // Accept both `name(…)` and `name!(…)` shapes.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.is_punct('!')) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // A definition site (`fn counter(&self, name: &str, …)`) has no
        // literal; a call with a computed name has none either. Take the
        // first string literal before the matching close paren.
        let Some(name_tok) = first_literal_in_parens(toks, j) else { continue };
        let (set, kind) = if is_span_api {
            (&reg.spans, "span")
        } else if is_metric_api {
            (&reg.metrics, "metric")
        } else {
            (&reg.fields, "digest field")
        };
        if !set.contains(&name_tok.text) {
            push(
                &mut out,
                lexed,
                OBS_NAMES,
                file,
                name_tok.line,
                format!(
                    "{kind} name {:?} is not in the registry (crates/obs/src/names.rs)",
                    name_tok.text
                ),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: bench-name-registry
// ---------------------------------------------------------------------------

/// APIs whose first string-literal argument is a benchmark series name.
const BENCH_APIS: [&str; 1] = ["bench_series"];

/// Flags benchmark series name literals not present in the registry
/// (`crates/perf/src/names.rs`). The regression gate in `cqa-perf diff`
/// matches baseline and candidate series *by name*: an unregistered
/// (usually misspelled) name silently falls out of the comparison instead
/// of failing anywhere — the same failure mode `obs-name-registry`
/// prevents for metric names. `cqa_perf::schema::bench_series` also
/// rejects unregistered names at runtime; this rule catches them before
/// anything runs, including names only exercised on the `full` profile.
pub fn bench_names(lexed: &Lexed, toks: &[Tok], file: &str, reg: &NameRegistry) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !BENCH_APIS.contains(&t.text.as_str()) {
            continue;
        }
        let j = i + 1;
        if !toks.get(j).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // Definition sites and computed names carry no literal → skip
        // (the runtime check in bench_series covers the computed case).
        let Some(name_tok) = first_literal_in_parens(toks, j) else { continue };
        if !reg.series.contains(&name_tok.text) {
            push(
                &mut out,
                lexed,
                BENCH_NAMES,
                file,
                name_tok.line,
                format!(
                    "bench series name {:?} is not in the registry (crates/perf/src/names.rs)",
                    name_tok.text
                ),
            );
        }
    }
    out
}

/// The first string literal strictly inside the paren group opening at
/// `open` (nested groups included), or `None`.
fn first_literal_in_parens(toks: &[Tok], open: usize) -> Option<&Tok> {
    let mut depth = 0usize;
    for t in &toks[open..] {
        match &t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            TokKind::Str => return Some(t),
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Rule: fault-point-registry
// ---------------------------------------------------------------------------

/// Flags `fault_point!` name literals not present in the registry
/// (`crates/chaos/src/points.rs`). An unregistered point is worse than a
/// typo'd metric: `cqa_chaos::trigger` cannot key a counter for it, no
/// preset plan ever exercises it, and the guarantee table in
/// `docs/RELIABILITY.md` never documents what clients observe when it
/// fires — the boundary silently falls out of the chaos suite.
pub fn fault_points(lexed: &Lexed, toks: &[Tok], file: &str, reg: &NameRegistry) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "fault_point" {
            continue;
        }
        // Accept `fault_point!(…)` and a bare `fault_point(…)`; the
        // `macro_rules! fault_point {` definition site is followed by `{`
        // and never matches.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.is_punct('!')) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let Some(name_tok) = first_literal_in_parens(toks, j) else { continue };
        if !reg.points.contains(&name_tok.text) {
            push(
                &mut out,
                lexed,
                FAULT_POINTS,
                file,
                name_tok.line,
                format!(
                    "fault point {:?} is not in the registry (crates/chaos/src/points.rs)",
                    name_tok.text
                ),
            );
        }
    }
    out
}

/// Collects every registered-or-not fault-point name literal passed to a
/// `fault_point!` call in the token stream — the reverse-direction input
/// for [`fault_point_sync`].
pub fn fault_point_call_sites(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "fault_point" {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.is_punct('!')) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if let Some(name_tok) = first_literal_in_parens(toks, j) {
            out.insert(name_tok.text.clone());
        }
    }
    out
}

/// The reverse direction of `fault-point-registry`: every name in the
/// `POINTS` registry must have at least one `fault_point!` call site
/// outside `#[cfg(test)]` code. A dead entry means a fault plan targeting
/// it injects nothing — the chaos suite reports a clean pass for a
/// boundary it never actually perturbed.
pub fn fault_point_sync(
    points: &BTreeSet<String>,
    call_sites: &BTreeSet<String>,
    registry_file: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for point in points {
        if !call_sites.contains(point) {
            out.push(Finding {
                rule: FAULT_POINTS,
                file: registry_file.to_owned(),
                line: 0,
                message: format!(
                    "registered fault point {point:?} has no fault_point! call site outside \
                     tests (dead registry entry, or the boundary lost its probe)"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 5: protocol-doc-sync
// ---------------------------------------------------------------------------

/// Wire keys nested payloads document but `protocol.rs` does not build:
/// the flat stats fields assembled in `metrics.rs`. Their shape is covered
/// by the server's metrics tests; listing them here keeps the reverse
/// check exact instead of fuzzy.
pub const DOC_ONLY_KEYS: [&str; 3] = ["cache_hits", "cache_misses", "cache_canonical_rekeys"];

fn is_wire_key(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().next().is_some_and(|b| b.is_ascii_lowercase() || b == b'_')
        && s.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// Extracts the wire field names `protocol.rs` reads or writes: literals
/// in `("key", value)` serialization pairs and literals passed to the
/// `get`/`req_*` accessors.
pub fn protocol_code_keys(toks: &[Tok]) -> BTreeSet<String> {
    const ACCESSORS: [&str; 5] = ["get", "req_str", "req_f64", "req_u64", "req_bool"];
    let mut keys = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Str || !is_wire_key(&t.text) {
            continue;
        }
        let prev_open = i > 0 && toks[i - 1].is_punct('(');
        if !prev_open {
            continue;
        }
        let pair_key = toks.get(i + 1).is_some_and(|n| n.is_punct(','));
        let accessor_arg = i >= 2
            && toks[i - 2].kind == TokKind::Ident
            && ACCESSORS.contains(&toks[i - 2].text.as_str());
        if pair_key || accessor_arg {
            keys.insert(t.text.clone());
        }
    }
    keys
}

/// Extracts the documented wire keys from `docs/PROTOCOL.md`: every
/// `"key":` occurrence (JSON examples and inline code alike).
pub fn protocol_doc_keys(doc: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let bytes = doc.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len()
                && (bytes[j].is_ascii_lowercase() || bytes[j].is_ascii_digit() || bytes[j] == b'_')
            {
                j += 1;
            }
            if j > start && bytes.get(j) == Some(&b'"') {
                let mut k = j + 1;
                while k < bytes.len() && (bytes[k] == b' ' || bytes[k] == b'\t') {
                    k += 1;
                }
                if bytes.get(k) == Some(&b':') {
                    keys.insert(doc[start..j].to_owned());
                }
            }
            i = j;
        }
        i += 1;
    }
    keys
}

/// Compares the code and doc key sets. `protocol.rs` and `PROTOCOL.md`
/// must agree exactly (modulo [`DOC_ONLY_KEYS`]): a field the doc misses
/// strands client authors; a field the code misses means the doc promises
/// something the server will never send.
pub fn protocol_sync(
    code_keys: &BTreeSet<String>,
    doc_keys: &BTreeSet<String>,
    code_file: &str,
    doc_file: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for key in code_keys {
        if !doc_keys.contains(key) {
            out.push(Finding {
                rule: PROTOCOL_SYNC,
                file: doc_file.to_owned(),
                line: 0,
                message: format!(
                    "wire field {key:?} is used in {code_file} but never documented (expected a {:?} occurrence)",
                    format!("\"{key}\":")
                ),
            });
        }
    }
    for key in doc_keys {
        if !code_keys.contains(key) && !DOC_ONLY_KEYS.contains(&key.as_str()) {
            out.push(Finding {
                rule: PROTOCOL_SYNC,
                file: code_file.to_owned(),
                line: 0,
                message: format!(
                    "documented wire field {key:?} does not appear in {code_file} (stale doc, or add it to DOC_ONLY_KEYS if it moved into a nested payload)"
                ),
            });
        }
    }
    out
}

/// Extracts the wire error-kind names from `protocol.rs`: the string
/// literals inside the body of `fn from_name`, which is the exhaustive
/// wire-name → [`ErrorKind`] parse table (the `name()` direction holds the
/// same literals, so either would do; `from_name` is the one a stale doc
/// row would silently disagree with).
pub fn protocol_error_kinds(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") || !toks.get(i + 1).is_some_and(|n| n.is_ident("from_name")) {
            continue;
        }
        // Skip to the body's opening brace, then collect string literals
        // to the matching close.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') {
            j += 1;
        }
        let mut depth = 0usize;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Str => {
                    out.insert(toks[j].text.clone());
                }
                _ => {}
            }
            j += 1;
        }
    }
    out
}

/// Extracts the documented error kinds from `docs/PROTOCOL.md`: the
/// backticked first-column names of every markdown table row under a
/// heading that mentions errors. Tables in other sections (the request
/// and stats field tables) are ignored.
pub fn protocol_doc_error_kinds(doc: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_error_section = false;
    for line in doc.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            in_error_section = trimmed.to_ascii_lowercase().contains("error");
            continue;
        }
        if !in_error_section || !trimmed.starts_with('|') {
            continue;
        }
        // First cell of the row; header and separator rows are not
        // backticked names and fall through.
        let Some(cell) = trimmed.trim_start_matches('|').split('|').next() else { continue };
        let cell = cell.trim();
        if let Some(name) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            if is_wire_key(name) {
                out.insert(name.to_owned());
            }
        }
    }
    out
}

/// Compares the error kinds `protocol.rs` parses against the error table
/// in `PROTOCOL.md`, both ways: a kind the doc misses leaves client
/// authors guessing whether to retry; a doc row the code cannot produce
/// promises an error the server will never send.
pub fn error_table_sync(
    code_kinds: &BTreeSet<String>,
    doc_kinds: &BTreeSet<String>,
    code_file: &str,
    doc_file: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for kind in code_kinds {
        if !doc_kinds.contains(kind) {
            out.push(Finding {
                rule: PROTOCOL_SYNC,
                file: doc_file.to_owned(),
                line: 0,
                message: format!(
                    "error kind {kind:?} is parsed by {code_file} but missing from the error \
                     table in {doc_file}"
                ),
            });
        }
    }
    for kind in doc_kinds {
        if !code_kinds.contains(kind) {
            out.push(Finding {
                rule: PROTOCOL_SYNC,
                file: code_file.to_owned(),
                line: 0,
                message: format!(
                    "documented error kind {kind:?} does not appear in ErrorKind::from_name in \
                     {code_file} (stale doc row)"
                ),
            });
        }
    }
    out
}
