//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p cqa-lint -- check [--root <path>] [--out <findings-file>]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 when any rule fires, 2 on usage
//! or I/O errors. With `--out`, findings are also written one per line to
//! the given file (CI uploads it as a build artifact on failure). See
//! `docs/ANALYSIS.md` for the rules.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cqa-lint check [--root <workspace-root>] [--out <findings-file>]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd != "check" {
        eprintln!("cqa-lint: unknown command {cmd:?}\n{USAGE}");
        return ExitCode::from(2);
    }
    // Default to the workspace root this binary was built from, so
    // `cargo run -p cqa-lint -- check` works from any directory.
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut out_file: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("cqa-lint: --root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out_file = Some(PathBuf::from(p)),
                None => {
                    eprintln!("cqa-lint: --out needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("cqa-lint: unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    match cqa_lint::check_workspace(&root) {
        Ok(findings) => {
            if let Some(path) = &out_file {
                let mut body =
                    findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n");
                if !body.is_empty() {
                    body.push('\n');
                }
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("cqa-lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            if findings.is_empty() {
                println!("cqa-lint: workspace clean");
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("cqa-lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
