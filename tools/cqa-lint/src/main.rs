//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p cqa-lint -- check [--root <path>]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 when any rule fires, 2 on usage
//! or I/O errors. See `docs/ANALYSIS.md` for the rules.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cqa-lint check [--root <workspace-root>]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd != "check" {
        eprintln!("cqa-lint: unknown command {cmd:?}\n{USAGE}");
        return ExitCode::from(2);
    }
    // Default to the workspace root this binary was built from, so
    // `cargo run -p cqa-lint -- check` works from any directory.
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("cqa-lint: --root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("cqa-lint: unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    match cqa_lint::check_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("cqa-lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("cqa-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
