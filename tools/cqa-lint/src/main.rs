//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p cqa-lint -- check [--root <path>] [--out <findings-file>] [--format text|sarif]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 when any rule fires, 2 on usage
//! or I/O errors. With `--out`, findings are also written to the given
//! file (CI uploads it as a build artifact) — one per line in the default
//! text format, or as a SARIF 2.1.0 document with `--format sarif` so
//! findings render as inline annotations. The exit-code contract is the
//! same in both formats. See `docs/ANALYSIS.md` for the rules.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: cqa-lint check [--root <workspace-root>] [--out <findings-file>] [--format text|sarif]";

#[derive(PartialEq)]
enum Format {
    Text,
    Sarif,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd != "check" {
        eprintln!("cqa-lint: unknown command {cmd:?}\n{USAGE}");
        return ExitCode::from(2);
    }
    // Default to the workspace root this binary was built from, so
    // `cargo run -p cqa-lint -- check` works from any directory.
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut out_file: Option<PathBuf> = None;
    let mut format = Format::Text;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    eprintln!(
                        "cqa-lint: unknown format {other:?} (expected text or sarif)\n{USAGE}"
                    );
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("cqa-lint: --format needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("cqa-lint: --root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out_file = Some(PathBuf::from(p)),
                None => {
                    eprintln!("cqa-lint: --out needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("cqa-lint: unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    match cqa_lint::check_workspace(&root) {
        Ok(findings) => {
            if let Some(path) = &out_file {
                let body = match format {
                    Format::Sarif => cqa_lint::sarif::to_sarif(&findings),
                    Format::Text => {
                        let mut body =
                            findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n");
                        if !body.is_empty() {
                            body.push('\n');
                        }
                        body
                    }
                };
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("cqa-lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            if findings.is_empty() {
                if format == Format::Sarif && out_file.is_none() {
                    print!("{}", cqa_lint::sarif::to_sarif(&findings));
                } else {
                    println!("cqa-lint: workspace clean");
                }
                ExitCode::SUCCESS
            } else {
                match format {
                    // SARIF to stdout only without --out (stdout stays the
                    // machine-readable stream); the human tally goes to
                    // stderr so the document stays well-formed.
                    Format::Sarif if out_file.is_none() => {
                        print!("{}", cqa_lint::sarif::to_sarif(&findings));
                        eprintln!("cqa-lint: {} finding(s)", findings.len());
                    }
                    _ => {
                        for f in &findings {
                            println!("{f}");
                        }
                        println!("cqa-lint: {} finding(s)", findings.len());
                    }
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
