//! A hand-rolled item parser over the [`crate::lexer`] token stream.
//!
//! The call-graph rules need more structure than raw tokens: which function
//! a token belongs to, what an `impl` block's self type is, what a call
//! site's receiver is, and what types the receiver chain walks through.
//! This module recovers exactly that much structure — fn items (including
//! trait methods and functions nested in bodies), impl blocks with
//! self-type and trait tracking, struct field types, parameter and `let`
//! types, call sites (method / path / free / macro), slice-indexing sites,
//! `as`-cast sites, and integer arithmetic sites — while deliberately *not*
//! building a full AST. Anything it cannot classify it records
//! conservatively (an unknown receiver, an opaque callee) rather than
//! guessing; `rustc` has already accepted the code, so unparseable input is
//! tolerated, never fatal.

use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Integer type names, for cast / arithmetic classification.
pub const INT_TYPES: [&str; 12] =
    ["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// Integer types narrower than the 64-bit counters estimator math runs on.
pub const NARROW_INT_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Methods that produce floats: a cast of their result to an integer is a
/// silent truncation/saturation.
const FLOAT_METHODS: [&str; 11] =
    ["ceil", "floor", "round", "trunc", "sqrt", "ln", "log2", "log10", "exp", "powf", "powi"];

/// Guard-producing lock-acquisition methods (the parking_lot shim and the
/// std locks share these names). All of them take no arguments, which is
/// how `rwlock.read()` is told apart from `io::Read::read(&mut buf)`.
const LOCK_METHODS: [&str; 6] = ["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// The non-`try_` acquisition methods: the ones that can block (and so
/// participate in deadlock cycles; a `try_*` acquisition cannot wait).
const LOCK_METHODS_BLOCKING: [&str; 3] = ["lock", "read", "write"];

/// Result adapters that pass the guard through as the expression value:
/// `let g = m.lock().unwrap_or_else(PoisonError::into_inner);` still binds
/// the guard.
const GUARD_ADAPTERS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

/// Method calls that block the calling thread regardless of arguments:
/// channel receives and line/buffer I/O.
const BLOCKING_METHODS_ANY_ARGS: [&str; 6] =
    ["recv", "recv_timeout", "read_line", "write_all", "read_exact", "connect"];

/// Method calls that block only in their no-argument form
/// (`JoinHandle::join()`, `Write::flush()`, `TcpListener::accept()` —
/// `Vec::join(sep)` takes an argument and merely allocates).
const BLOCKING_METHODS_NO_ARGS: [&str; 3] = ["join", "flush", "accept"];

/// Keywords that can directly precede `(` or `[` without being a call or
/// an indexing expression.
const KEYWORDS: [&str; 28] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "fn", "impl", "struct", "enum", "trait", "mod", "use", "pub", "where", "move", "ref",
    "mut", "unsafe", "dyn", "static", "const",
];

/// How a method call's receiver was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `self.f.g.m(…)` — the field chain after `self` (empty for `self.m()`).
    SelfChain(Vec<String>),
    /// `x.f.m(…)` — a variable, then a (possibly empty) field chain.
    Var(String, Vec<String>),
    /// Anything else (a chained call result, a literal, a parenthesized
    /// expression): the receiver's type is not recoverable from tokens.
    Unknown,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    /// `recv.name(…)`.
    Method { name: String, recv: Receiver, line: u32 },
    /// `Qualifier::name(…)` — `qualifier` is the last path segment before
    /// the function name (a type, module, or `Self`).
    Path { qualifier: String, name: String, line: u32 },
    /// `name(…)` with no qualifier or receiver.
    Free { name: String, line: u32 },
    /// `name!(…)` / `name![…]` / `name!{…}`.
    Macro { name: String, line: u32 },
}

impl Call {
    /// The source line of the call.
    pub fn line(&self) -> u32 {
        match self {
            Call::Method { line, .. }
            | Call::Path { line, .. }
            | Call::Free { line, .. }
            | Call::Macro { line, .. } => *line,
        }
    }
}

/// An `expr as <int>` cast site.
#[derive(Debug, Clone)]
pub struct CastSite {
    pub line: u32,
    /// The target type name (always one of [`INT_TYPES`]).
    pub target: String,
    /// Target is one of [`NARROW_INT_TYPES`].
    pub narrowing: bool,
    /// The cast source is a call/paren result that looks float-valued
    /// (`.ceil() as u64`, `.max(1.0) as u64`): a silent float→int
    /// truncation.
    pub float_source: bool,
}

/// An unchecked `+` / `*` (or `+=` / `*=`) on a known-integer operand.
#[derive(Debug, Clone)]
pub struct ArithSite {
    pub line: u32,
    pub op: char,
    /// The integer-typed operand that triggered the classification.
    pub operand: String,
}

/// One lock-guard acquisition and the line range its guard is modeled live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSpan {
    /// Normalized lock identity (see `lock_identity`): the receiver chain
    /// with `self` replaced by the impl type and argument groups collapsed —
    /// `SynopsisCache.shard(…)`, `PLAN`, `slowlog(…)`.
    pub lock: String,
    /// The identity roots in a lowercase local variable: it must not unify
    /// with same-named receivers in other functions.
    pub local: bool,
    /// Line of the acquisition call.
    pub acquire_line: u32,
    /// Last line the guard is modeled held (`acquire_line` for statement
    /// temporaries).
    pub end_line: u32,
    /// `lock`/`read`/`write` can wait for the lock; `try_*` cannot, so a
    /// `try_*` acquisition can hold a guard but never *be* the blocked side
    /// of a deadlock (mirrors the runtime detector, which only instruments
    /// blocking acquires).
    pub blocking: bool,
}

/// One parsed function (free fn, inherent/trait method, or fn nested in a
/// body).
#[derive(Debug, Clone, Default)]
pub struct FnItem {
    /// The function's own name.
    pub name: String,
    /// Self type when defined inside `impl T` / `impl Tr for T` / `trait T`.
    pub self_ty: Option<String>,
    /// Trait name when defined inside `impl Tr for T` or `trait Tr`.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Line of the body's closing brace (0 for bodyless declarations).
    pub end_line: u32,
    /// Parameter name → terminal type ident (see [`terminal_type`]).
    pub params: BTreeMap<String, String>,
    /// Generic parameter → first trait bound ident (`S: Sampler` → `Sampler`).
    pub generics: BTreeMap<String, String>,
    /// `let` locals with a directly annotated or ctor-inferred type.
    pub locals: BTreeMap<String, String>,
    /// `let x = self.f.g;` — locals bound to a field chain, resolved
    /// against the struct table at graph-build time.
    pub local_chains: BTreeMap<String, Vec<String>>,
    /// Identifiers known to hold integers (typed params/locals, integer
    /// literals).
    pub int_idents: BTreeSet<String>,
    /// Every binding name in scope (params, `let`s, `for` patterns) —
    /// a free "call" on one of these is a closure/fn-pointer invocation,
    /// not a named function.
    pub bindings: BTreeSet<String>,
    /// Every call site in the body, in source order.
    pub calls: Vec<Call>,
    /// Lock-guard acquisitions with their modeled live ranges.
    pub lock_spans: Vec<LockSpan>,
    /// Locals bound to a closure literal (`let f = |x| …`): a free "call"
    /// on one of these runs code already attributed to this fn body, so it
    /// is resolved, not opaque.
    pub closure_bindings: BTreeSet<String>,
    /// Lines with a postfix `?` operator — each is an implicit
    /// `From::from` call on the error path.
    pub question_lines: Vec<u32>,
    /// `fault_point!("name")` sites: (point name, line).
    pub fault_sites: Vec<(String, u32)>,
    /// Call sites shaped like thread-blocking operations (channel recv,
    /// `join()`, file/socket I/O, `sleep`), pre-filtered by argument shape;
    /// the call graph decides which ones actually leave the workspace.
    pub blocking_sites: Vec<Call>,
    /// Lines with a `[`-indexing expression.
    pub index_sites: Vec<u32>,
    /// Integer-target `as` casts.
    pub cast_sites: Vec<CastSite>,
    /// Unchecked integer `+`/`*` sites.
    pub arith_sites: Vec<ArithSite>,
    /// Token range of the body between (exclusive of) the braces, as
    /// indices into the stripped per-file token stream handed to
    /// [`parse_file`]. `(0, 0)` for bodyless declarations. The dataflow
    /// engine re-walks this range; nested `fn` items inside it appear as
    /// their own [`FnItem`]s and must be skipped, exactly as
    /// `scan_body` does.
    pub body: (usize, usize),
    /// Parameter names in declaration order (`params` is sorted by name;
    /// interprocedural summaries need positions).
    pub param_order: Vec<String>,
}

/// A parsed source file: functions plus the struct field-type table.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Repo-relative path.
    pub rel: String,
    pub fns: Vec<FnItem>,
    /// struct name → field name → terminal type ident.
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
}

/// Parses one (already `cfg(test)`-stripped) token stream.
pub fn parse_file(rel: &str, toks: &[Tok]) -> ParsedFile {
    let mut out = ParsedFile { rel: rel.to_owned(), ..ParsedFile::default() };
    walk_items(toks, 0, toks.len(), None, None, &mut out);
    out
}

fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

/// Index just past the group opened by the bracket at `open` (`(`/`[`/`{`),
/// treating the three bracket kinds as one nesting family. Never panics:
/// an unbalanced stream returns `end`.
fn skip_group(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        match toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end
}

/// Index just past a generic parameter list opening with `<` at `open`.
/// Understands that `->` is an arrow (its `>` does not close angles) and
/// that `>>` is two closers.
fn skip_angles(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < end {
        match toks[i].kind {
            TokKind::Punct('<') => depth += 1,
            // `->`: the `-` precedes the `>`; not an angle closer.
            TokKind::Punct('>') if !(i > 0 && toks[i - 1].is_punct('-')) => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                i = skip_group(toks, i, end);
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    end
}

/// The "terminal type" of a type token sequence: the most informative
/// single ident the rules can key resolution on. `&'a AdmissiblePair` →
/// `AdmissiblePair`; `Vec<u32>` → `Vec`; `&mut Mt64` → `Mt64`;
/// `impl FnOnce() + Send` → `FnOnce`; `Box<dyn Fn()>` → `Box`.
pub fn terminal_type(toks: &[Tok]) -> Option<String> {
    let mut i = 0;
    let mut last_top: Option<&str> = None;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Ident => {
                let t = toks[i].text.as_str();
                if t == "impl" || t == "dyn" {
                    // The first bound names the capability; later `+ Send`
                    // bounds are auxiliary.
                    for t2 in &toks[i + 1..] {
                        if t2.kind == TokKind::Ident && !matches!(t2.text.as_str(), "mut" | "ref") {
                            return Some(t2.text.clone());
                        }
                    }
                    return None;
                }
                if !matches!(t, "mut" | "ref" | "const") {
                    last_top = Some(t);
                }
            }
            TokKind::Punct('<') => {
                i = skip_angles(toks, i, toks.len());
                continue;
            }
            TokKind::Punct('(') | TokKind::Punct('[') => {
                i = skip_group(toks, i, toks.len());
                continue;
            }
            TokKind::Punct('+') => break, // `A + Send`: keep the first bound
            _ => {}
        }
        i += 1;
    }
    last_top.map(str::to_owned)
}

/// Walks a token range for item declarations, collecting fns and structs.
/// `self_ty`/`trait_name` carry the enclosing impl/trait context.
fn walk_items(
    toks: &[Tok],
    start: usize,
    end: usize,
    self_ty: Option<&str>,
    trait_name: Option<&str>,
    out: &mut ParsedFile,
) {
    let mut i = start;
    while i < end {
        match &toks[i].kind {
            // Skip attributes wholesale: their contents are not code.
            TokKind::Punct('#') if toks.get(i + 1).is_some_and(|t| t.is_punct('[')) => {
                i = skip_group(toks, i + 1, end);
            }
            TokKind::Ident if toks[i].text == "fn" => {
                i = parse_fn(toks, i, end, self_ty, trait_name, out);
            }
            TokKind::Ident if toks[i].text == "impl" => {
                i = parse_impl(toks, i, end, out);
            }
            TokKind::Ident if toks[i].text == "trait" => {
                // Treat `trait X { … }` like `impl X`: default method bodies
                // are real code, and `X` doubles as trait and self type.
                let name = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident).map(|t| &t.text);
                let Some(name) = name.cloned() else {
                    i += 1;
                    continue;
                };
                let mut j = i + 2;
                while j < end && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    if toks[j].is_punct('<') {
                        j = skip_angles(toks, j, end);
                    } else {
                        j += 1;
                    }
                }
                if j < end && toks[j].is_punct('{') {
                    let body_end = skip_group(toks, j, end);
                    walk_items(toks, j + 1, body_end - 1, Some(&name), Some(&name), out);
                    i = body_end;
                } else {
                    i = j + 1;
                }
            }
            TokKind::Ident if toks[i].text == "struct" => {
                i = parse_struct(toks, i, end, out);
            }
            // Enum/union payloads look like fields but are not; skip the
            // whole item body.
            TokKind::Ident if toks[i].text == "enum" || toks[i].text == "union" => {
                let mut j = i + 1;
                while j < end && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                i = if j < end && toks[j].is_punct('{') { skip_group(toks, j, end) } else { j + 1 };
            }
            TokKind::Punct('{') => {
                // A plain block (e.g. a `mod m { … }` body reaches here via
                // its brace): recurse with the same context.
                let body_end = skip_group(toks, i, end);
                walk_items(toks, i + 1, body_end - 1, self_ty, trait_name, out);
                i = body_end;
            }
            _ => i += 1,
        }
    }
}

/// Parses an `impl` block header and recurses into its body.
fn parse_impl(toks: &[Tok], at: usize, end: usize, out: &mut ParsedFile) -> usize {
    let mut i = at + 1;
    if i < end && toks[i].is_punct('<') {
        i = skip_angles(toks, i, end);
    }
    // First path: the trait when `for` follows, else the self type.
    let mut first: Vec<Tok> = Vec::new();
    let mut second: Vec<Tok> = Vec::new();
    let mut saw_for = false;
    while i < end && !toks[i].is_punct('{') && !toks[i].is_punct(';') {
        if toks[i].is_ident("where") {
            // The where clause adds nothing to name resolution.
            while i < end && !toks[i].is_punct('{') && !toks[i].is_punct(';') {
                i += 1;
            }
            break;
        }
        if toks[i].is_ident("for") {
            saw_for = true;
            i += 1;
            continue;
        }
        if toks[i].is_punct('<') {
            i = skip_angles(toks, i, end);
            continue;
        }
        if saw_for { &mut second } else { &mut first }.push(toks[i].clone());
        i += 1;
    }
    let (trait_toks, ty_toks) = if saw_for { (Some(&first), &second) } else { (None, &first) };
    let self_ty = terminal_type(ty_toks);
    let trait_name = trait_toks.and_then(|t| terminal_type(t));
    if i < end && toks[i].is_punct('{') {
        let body_end = skip_group(toks, i, end);
        walk_items(toks, i + 1, body_end - 1, self_ty.as_deref(), trait_name.as_deref(), out);
        body_end
    } else {
        i + 1
    }
}

/// Parses `struct Name { field: Type, … }` into the field-type table.
fn parse_struct(toks: &[Tok], at: usize, end: usize, out: &mut ParsedFile) -> usize {
    let Some(name) = toks.get(at + 1).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone())
    else {
        return at + 1;
    };
    let mut i = at + 2;
    if i < end && toks[i].is_punct('<') {
        i = skip_angles(toks, i, end);
    }
    while i < end && toks[i].is_ident("where") {
        while i < end && !toks[i].is_punct('{') && !toks[i].is_punct(';') {
            i += 1;
        }
    }
    // Tuple struct `struct X(…);` or unit struct `struct X;`: no named
    // fields to record.
    if i >= end || !toks[i].is_punct('{') {
        return if i < end && toks[i].is_punct('(') { skip_group(toks, i, end) } else { i + 1 };
    }
    let body_end = skip_group(toks, i, end);
    let mut fields = BTreeMap::new();
    let mut j = i + 1;
    while j < body_end - 1 {
        // Field shape: [attrs] [pub[(…)]] name : Type ,|}
        if toks[j].is_punct('#') && toks.get(j + 1).is_some_and(|t| t.is_punct('[')) {
            j = skip_group(toks, j + 1, body_end);
            continue;
        }
        if toks[j].is_ident("pub") {
            j += 1;
            if j < body_end && toks[j].is_punct('(') {
                j = skip_group(toks, j, body_end);
            }
            continue;
        }
        if toks[j].kind == TokKind::Ident && toks.get(j + 1).is_some_and(|t| t.is_punct(':')) {
            let fname = toks[j].text.clone();
            let ty_start = j + 2;
            let mut k = ty_start;
            while k < body_end - 1 {
                match toks[k].kind {
                    TokKind::Punct(',') => break,
                    TokKind::Punct('<') => k = skip_angles(toks, k, body_end),
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                        k = skip_group(toks, k, body_end)
                    }
                    _ => k += 1,
                }
            }
            if let Some(ty) = terminal_type(&toks[ty_start..k]) {
                fields.insert(fname, ty);
            }
            j = k + 1;
            continue;
        }
        j += 1;
    }
    out.structs.entry(name).or_default().extend(fields);
    body_end
}

/// Parses one `fn` item starting at the `fn` keyword; returns the index
/// just past it. Nested fns are parsed recursively as their own items and
/// excluded from the outer body scan.
fn parse_fn(
    toks: &[Tok],
    at: usize,
    end: usize,
    self_ty: Option<&str>,
    trait_name: Option<&str>,
    out: &mut ParsedFile,
) -> usize {
    let Some(name_tok) = toks.get(at + 1).filter(|t| t.kind == TokKind::Ident) else {
        return at + 1;
    };
    let mut f = FnItem {
        name: name_tok.text.clone(),
        self_ty: self_ty.map(str::to_owned),
        trait_name: trait_name.map(str::to_owned),
        line: toks[at].line,
        ..FnItem::default()
    };
    let mut i = at + 2;
    if i < end && toks[i].is_punct('<') {
        let close = skip_angles(toks, i, end);
        parse_generics(&toks[i + 1..close.saturating_sub(1).max(i + 1)], &mut f);
        i = close;
    }
    if i >= end || !toks[i].is_punct('(') {
        out.fns.push(f);
        return i;
    }
    let params_end = skip_group(toks, i, end);
    parse_params(&toks[i + 1..params_end.saturating_sub(1).max(i + 1)], self_ty, &mut f);
    i = params_end;
    // Return type / where clause: skip to the body or a bodyless `;`.
    while i < end && !toks[i].is_punct('{') && !toks[i].is_punct(';') {
        match toks[i].kind {
            TokKind::Punct('<') => i = skip_angles(toks, i, end),
            TokKind::Punct('(') | TokKind::Punct('[') => i = skip_group(toks, i, end),
            _ => i += 1,
        }
    }
    if i >= end || toks[i].is_punct(';') {
        out.fns.push(f);
        return i + 1;
    }
    let body_end = skip_group(toks, i, end);
    f.end_line = toks[body_end.saturating_sub(1).min(toks.len() - 1)].line;
    f.body = (i + 1, body_end - 1);
    scan_body(toks, i + 1, body_end - 1, end, &mut f, out);
    out.fns.push(f);
    body_end
}

/// Records `T: Bound` pairs from a generic parameter list (angle brackets
/// already stripped).
fn parse_generics(toks: &[Tok], f: &mut FnItem) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !is_keyword(&toks[i].text)
        {
            // First non-lifetime bound ident.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct(',') {
                if toks[j].kind == TokKind::Ident {
                    f.generics.insert(toks[i].text.clone(), toks[j].text.clone());
                    break;
                }
                j += 1;
            }
        }
        match toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                i = skip_group(toks, i, toks.len())
            }
            _ => i += 1,
        }
    }
}

/// Splits a parameter list at top-level commas and records `name → type`.
fn parse_params(toks: &[Tok], self_ty: Option<&str>, f: &mut FnItem) {
    let mut seg_start = 0;
    let mut i = 0;
    let mut segments: Vec<(usize, usize)> = Vec::new();
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct(',') => {
                segments.push((seg_start, i));
                seg_start = i + 1;
                i += 1;
            }
            TokKind::Punct('<') => i = skip_angles(toks, i, toks.len()),
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                i = skip_group(toks, i, toks.len())
            }
            _ => i += 1,
        }
    }
    segments.push((seg_start, toks.len()));
    for (s, e) in segments {
        let seg = &toks[s..e];
        if seg.iter().any(|t| t.is_ident("self")) && !seg.iter().any(|t| t.is_punct(':')) {
            // `self` / `&self` / `&mut self`: typed as the impl target.
            if let Some(ty) = self_ty {
                f.params.insert("self".to_owned(), ty.to_owned());
                f.param_order.push("self".to_owned());
            }
            continue;
        }
        let Some(colon) = seg.iter().position(|t| t.is_punct(':')) else { continue };
        // Binding name: the last ident before the colon (skips `mut`).
        let name = seg[..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut")
            .map(|t| t.text.clone());
        let (Some(name), Some(ty)) = (name, terminal_type(&seg[colon + 1..])) else { continue };
        if INT_TYPES.contains(&ty.as_str()) {
            f.int_idents.insert(name.clone());
        }
        f.bindings.insert(name.clone());
        f.param_order.push(name.clone());
        f.params.insert(name, ty);
    }
}

/// True when the token is an integer literal (no `.` and no float suffix).
fn is_int_literal(t: &Tok) -> bool {
    t.kind == TokKind::Num
        && !t.text.contains('.')
        && !t.text.contains("f3")
        && !t.text.contains("f6")
}

/// Scans a fn body for lets, calls, indexing, casts, and integer
/// arithmetic. `outer_end` bounds nested-item recursion.
fn scan_body(
    toks: &[Tok],
    start: usize,
    end: usize,
    outer_end: usize,
    f: &mut FnItem,
    out: &mut ParsedFile,
) {
    let mut i = start;
    while i < end {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct('#') if toks.get(i + 1).is_some_and(|t2| t2.is_punct('[')) => {
                i = skip_group(toks, i + 1, end);
                continue;
            }
            // A nested fn item: parse separately, exclude from this body.
            TokKind::Ident if t.text == "fn" => {
                i = parse_fn(toks, i, outer_end.min(end), None, None, out);
                continue;
            }
            TokKind::Ident if t.text == "let" => {
                scan_let(toks, i, end, f);
            }
            // `for x in …` binds `x`; a later `x()` is a closure call.
            TokKind::Ident if t.text == "for" => {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t2| t2.is_ident("mut")) {
                    j += 1;
                }
                if let (Some(name), Some(kw)) = (toks.get(j), toks.get(j + 1)) {
                    if name.kind == TokKind::Ident && !is_keyword(&name.text) && kw.is_ident("in") {
                        f.bindings.insert(name.text.clone());
                    }
                }
            }
            TokKind::Ident if t.text == "as" => {
                scan_cast(toks, i, f);
            }
            TokKind::Ident if !is_keyword(&t.text) => {
                let next = toks.get(i + 1);
                if next.is_some_and(|n| n.is_punct('!')) {
                    let after = toks.get(i + 2);
                    if after.is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
                    {
                        f.calls.push(Call::Macro { name: t.text.clone(), line: t.line });
                        if t.text == "fault_point" {
                            let close = skip_group(toks, i + 2, end);
                            if let Some(s) = toks[i + 3..close.max(i + 3)]
                                .iter()
                                .find(|a| a.kind == TokKind::Str)
                            {
                                f.fault_sites.push((s.text.clone(), t.line));
                            }
                        }
                    }
                } else if next.is_some_and(|n| n.is_punct('(')) {
                    scan_call(toks, i, f);
                    // A no-argument acquisition method on a receiver chain
                    // is a lock acquisition (`io::Read::read` takes a
                    // buffer, so the empty-paren shape disambiguates).
                    if LOCK_METHODS.contains(&t.text.as_str())
                        && i > 0
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
                    {
                        scan_lock(toks, i, end, f);
                    }
                } else if next.is_some_and(|n| n.is_punct('[')) {
                    f.index_sites.push(t.line);
                }
            }
            // Postfix `?`: an implicit `From::from` on the error path. The
            // preceding token distinguishes it from a `?Sized` bound.
            TokKind::Punct('?')
                if i > start
                    && (matches!(toks[i - 1].kind, TokKind::Punct(')') | TokKind::Punct(']'))
                        || (toks[i - 1].kind == TokKind::Ident
                            && !is_keyword(&toks[i - 1].text))) =>
            {
                f.question_lines.push(t.line);
            }
            // Indexing a call/index result: `f()[i]`, `m[k][j]`.
            TokKind::Punct(')') | TokKind::Punct(']')
                if toks.get(i + 1).is_some_and(|n| n.is_punct('[')) =>
            {
                f.index_sites.push(toks[i + 1].line);
            }
            TokKind::Punct('+') | TokKind::Punct('*') => {
                scan_arith(toks, i, f);
            }
            _ => {}
        }
        i += 1;
    }
}

/// Handles one `let` statement starting at the `let` keyword: records the
/// binding's type (annotated, ctor-inferred, chain, or int literal).
fn scan_let(toks: &[Tok], at: usize, end: usize, f: &mut FnItem) {
    let mut i = at + 1;
    if i < end && toks[i].is_ident("mut") {
        i += 1;
    }
    let Some(name_tok) = toks.get(i).filter(|t| t.kind == TokKind::Ident) else { return };
    if is_keyword(&name_tok.text) {
        return; // `let (a, b) = …` destructuring is not tracked
    }
    let name = name_tok.text.clone();
    i += 1;
    // Only a direct `name :` or `name =` is a plain binding; anything else
    // (`let Some(x) = …`, `let S { a } = …`) is a pattern we don't track.
    if !(i < end && (toks[i].is_punct(':') || toks[i].is_punct('='))) {
        return;
    }
    f.bindings.insert(name.clone());
    if toks[i].is_punct(':') {
        // Annotated: read the type up to `=` or `;`.
        let ty_start = i + 1;
        let mut k = ty_start;
        while k < end && !toks[k].is_punct('=') && !toks[k].is_punct(';') {
            match toks[k].kind {
                TokKind::Punct('<') => k = skip_angles(toks, k, end),
                TokKind::Punct('(') | TokKind::Punct('[') => k = skip_group(toks, k, end),
                _ => k += 1,
            }
        }
        if let Some(ty) = terminal_type(&toks[ty_start..k]) {
            if INT_TYPES.contains(&ty.as_str()) {
                f.int_idents.insert(name.clone());
            }
            f.locals.insert(name, ty);
        }
        return;
    }
    if i >= end || !toks[i].is_punct('=') {
        return;
    }
    let rhs = i + 1;
    // `let f = |x| …;` / `let f = move || …;` — a closure literal bound to
    // a local: calls through it stay inside this body.
    {
        let mut c = rhs;
        if toks.get(c).is_some_and(|t| t.is_ident("move")) {
            c += 1;
        }
        if toks.get(c).is_some_and(|t| t.is_punct('|')) {
            f.closure_bindings.insert(name.clone());
        }
    }
    // `let x = self.f.g;` (optionally `&`-prefixed): a field chain.
    let mut j = rhs;
    while j < end && toks[j].is_punct('&') {
        j += 1;
    }
    if toks.get(j).is_some_and(|t| t.is_ident("self")) {
        let mut chain = vec!["self".to_owned()];
        let mut k = j + 1;
        while k + 1 < end
            && toks[k].is_punct('.')
            && toks[k + 1].kind == TokKind::Ident
            && !toks.get(k + 2).is_some_and(|t| t.is_punct('('))
        {
            chain.push(toks[k + 1].text.clone());
            k += 2;
        }
        if chain.len() > 1 && toks.get(k).is_some_and(|t| t.is_punct(';')) {
            f.local_chains.insert(name, chain);
            return;
        }
    }
    // `let x = Type::ctor(…);` — take the last capitalized path segment.
    let mut k = rhs;
    let mut last_type: Option<String> = None;
    while k + 2 < end
        && toks[k].kind == TokKind::Ident
        && toks[k + 1].is_punct(':')
        && toks[k + 2].is_punct(':')
    {
        if toks[k].text.chars().next().is_some_and(char::is_uppercase) {
            last_type = Some(toks[k].text.clone());
        }
        k += 3;
    }
    if let Some(ty) = last_type {
        if toks.get(k).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
        {
            f.locals.insert(name, ty);
            return;
        }
    }
    // `let mut n = 0;` — an integer literal.
    if toks.get(rhs).is_some_and(is_int_literal)
        && toks.get(rhs + 1).is_some_and(|t| t.is_punct(';'))
    {
        f.int_idents.insert(name);
    }
}

/// Classifies the call whose name ident sits at `at` (followed by `(`).
fn scan_call(toks: &[Tok], at: usize, f: &mut FnItem) {
    let t = &toks[at];
    let prev = at.checked_sub(1).map(|p| &toks[p]);
    // Path call `Qualifier::name(`.
    if at >= 3 && toks[at - 1].is_punct(':') && toks[at - 2].is_punct(':') {
        if toks[at - 3].kind == TokKind::Ident {
            let call = Call::Path {
                qualifier: toks[at - 3].text.clone(),
                name: t.text.clone(),
                line: t.line,
            };
            if t.text == "sleep" {
                f.blocking_sites.push(call.clone());
            }
            f.calls.push(call);
        }
        // `<T as Tr>::name(` and similar: qualifier unrecoverable; treat
        // as a free call so name-level resolution still applies.
        else {
            f.calls.push(Call::Free { name: t.text.clone(), line: t.line });
        }
        return;
    }
    // Method call `recv.name(`.
    if prev.is_some_and(|p| p.is_punct('.')) {
        let recv = receiver_chain(toks, at - 1);
        let call = Call::Method { name: t.text.clone(), recv, line: t.line };
        if BLOCKING_METHODS_ANY_ARGS.contains(&t.text.as_str())
            || (BLOCKING_METHODS_NO_ARGS.contains(&t.text.as_str())
                && toks.get(at + 2).is_some_and(|n| n.is_punct(')')))
        {
            f.blocking_sites.push(call.clone());
        }
        f.calls.push(call);
        return;
    }
    // Declaration heads (`fn name(`) were consumed by the item parser;
    // anything else ident-then-paren is a free call or a tuple-struct
    // literal — the resolver distinguishes by name.
    if prev.is_none_or(|p| {
        !(p.kind == TokKind::Ident && matches!(p.text.as_str(), "fn" | "struct" | "enum" | "union"))
    }) {
        let call = Call::Free { name: t.text.clone(), line: t.line };
        if t.text == "sleep" {
            f.blocking_sites.push(call.clone());
        }
        f.calls.push(call);
    }
}

/// Walks a receiver chain backwards from the `.` before a method name.
fn receiver_chain(toks: &[Tok], dot: usize) -> Receiver {
    // Collect `ident (. ident)*` going left; anything else ends the chain.
    let mut names: Vec<String> = Vec::new();
    let mut i = dot;
    loop {
        if i == 0 || !toks[i].is_punct('.') {
            break;
        }
        let Some(pt) = i.checked_sub(1).map(|p| &toks[p]) else { break };
        if pt.kind != TokKind::Ident || is_keyword(&pt.text) {
            // `foo().bar(` / `x?.bar(` / `(e).bar(` / `[a][0].bar(`:
            // receiver type not recoverable.
            return Receiver::Unknown;
        }
        names.push(pt.text.clone());
        // Is there another `.` to the left of this ident?
        match i.checked_sub(2).map(|p| &toks[p]) {
            Some(p2) if p2.is_punct('.') => i -= 2,
            // A further path/call shape to the left (`a().b.c(`): unknown.
            Some(p2) if p2.is_punct(')') || p2.is_punct(']') || p2.is_punct('?') => {
                return Receiver::Unknown;
            }
            _ => {
                names.reverse();
                let first = names.remove(0);
                return if first == "self" {
                    Receiver::SelfChain(names)
                } else {
                    Receiver::Var(first, names)
                };
            }
        }
    }
    Receiver::Unknown
}

/// Records a lock acquisition (`recv.lock()` et al., name ident at `at`)
/// as a [`LockSpan`], modeling how long the guard stays alive.
fn scan_lock(toks: &[Tok], at: usize, end: usize, f: &mut FnItem) {
    let Some((chain, chain_start)) = receiver_text(toks, at - 1) else { return };
    // `stdout().lock()` & co are backed by std's ReentrantMutex: they can
    // neither self-deadlock nor be poisoned, so they are not part of the
    // lock discipline (and would otherwise hold for a CLI's whole `main`).
    if ["stdout(…)", "stderr(…)", "stdin(…)"].iter().any(|s| chain.ends_with(s)) {
        return;
    }
    let (lock, local) = lock_identity(&chain, f.self_ty.as_deref());
    let acquire_line = toks[at].line;
    let blocking = LOCK_METHODS_BLOCKING.contains(&toks[at].text.as_str());
    // Step past `()` and any guard-preserving poison adapters
    // (`.unwrap_or_else(PoisonError::into_inner)` still yields the guard).
    let mut j = skip_group(toks, at + 1, end);
    while toks.get(j).is_some_and(|t| t.is_punct('.'))
        && toks
            .get(j + 1)
            .is_some_and(|t| t.kind == TokKind::Ident && GUARD_ADAPTERS.contains(&t.text.as_str()))
        && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
    {
        j = skip_group(toks, j + 2, end);
    }
    // A guard is long-lived only when the whole expression is let-bound:
    // `let [mut] g = RECV.lock()[.adapter(…)];`. Anything else — a
    // statement temporary, a deref-assign, a further `.method()` on the
    // guard — dies with its statement and is modeled as one line.
    let end_line = match let_binding_before(toks, chain_start) {
        Some(name) if toks.get(j).is_some_and(|t| t.is_punct(';')) => {
            guard_extent(toks, j, end, &name, f.end_line.max(acquire_line))
        }
        _ => acquire_line,
    };
    f.lock_spans.push(LockSpan { lock, local, acquire_line, end_line, blocking });
}

/// Renders the receiver chain left of the `.` at `dot` as text, collapsing
/// argument/index groups: `self.shard(key).lock()` → `self.shard(…)`.
/// Returns the chain and the token index where it starts.
fn receiver_text(toks: &[Tok], dot: usize) -> Option<(String, usize)> {
    if !toks.get(dot)?.is_punct('.') {
        return None;
    }
    let mut parts: Vec<String> = Vec::new(); // collected right-to-left
    let mut pos = dot; // the element to classify ends at pos - 1
    loop {
        let last = pos.checked_sub(1)?;
        match &toks[last].kind {
            TokKind::Punct(c @ (')' | ']')) => {
                let open = matching_open(toks, last)?;
                parts.push(if *c == ')' { "(…)".to_owned() } else { "[…]".to_owned() });
                pos = open;
                // The group must be a call/index suffix of the element to
                // its left; a bare parenthesized expression roots the chain.
                let glued = pos.checked_sub(1).map(|p| &toks[p]).is_some_and(|p| {
                    (p.kind == TokKind::Ident && !is_keyword(&p.text))
                        || p.is_punct(')')
                        || p.is_punct(']')
                });
                if !glued {
                    break;
                }
            }
            TokKind::Ident if !is_keyword(&toks[last].text) => {
                parts.push(toks[last].text.clone());
                pos = last;
                if pos >= 1 && toks[pos - 1].is_punct('.') {
                    parts.push(".".to_owned());
                    pos -= 1;
                    continue;
                }
                if pos >= 2 && toks[pos - 1].is_punct(':') && toks[pos - 2].is_punct(':') {
                    parts.push("::".to_owned());
                    pos -= 2;
                    continue;
                }
                break;
            }
            _ => return None,
        }
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some((parts.concat(), pos))
}

/// Token index of the opener matching the closer at `close`, treating the
/// three bracket kinds as one nesting family (like [`skip_group`]).
fn matching_open(toks: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = close;
    loop {
        match toks[i].kind {
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth += 1,
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i = i.checked_sub(1)?;
    }
}

/// Normalizes a receiver chain into a lock identity. `self` roots resolve
/// through the impl type (`self.shard(…)` inside `impl SynopsisCache` →
/// `SynopsisCache.shard(…)`); ALL_CAPS statics, `::`-qualified paths, and
/// accessor calls (`slowlog(…)`) are global identities. A lowercase
/// variable root stays function-local (`local = true`): the same variable
/// name in two functions need not be the same lock.
fn lock_identity(chain: &str, self_ty: Option<&str>) -> (String, bool) {
    if chain == "self" || chain.starts_with("self.") {
        let ty = self_ty.unwrap_or("self");
        return (format!("{ty}{}", &chain[4..]), false);
    }
    let root_end = chain.find(['.', '(', '[']).unwrap_or(chain.len());
    let root = &chain[..root_end];
    let global = chain.contains("::")
        || chain[root_end..].starts_with('(')
        || (root.chars().any(|c| c.is_ascii_uppercase())
            && root.chars().all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit()));
    (chain.to_owned(), !global)
}

/// When the tokens immediately before `start` are `let [mut] <name> =`,
/// returns the binding name. (An annotated `let g: Guard<'_> = …` is not
/// recognized and degrades to a temporary — documented unsoundness.)
fn let_binding_before(toks: &[Tok], start: usize) -> Option<String> {
    let eq = start.checked_sub(1)?;
    if !toks[eq].is_punct('=') {
        return None;
    }
    let name_i = eq.checked_sub(1)?;
    let name = &toks[name_i];
    if name.kind != TokKind::Ident || is_keyword(&name.text) {
        return None;
    }
    let mut k = name_i.checked_sub(1)?;
    if toks[k].is_ident("mut") {
        k = k.checked_sub(1)?;
    }
    toks[k].is_ident("let").then(|| name.text.clone())
}

/// Scans forward from the `;` ending a `let <name> = …lock…;` statement to
/// the point where the guard dies: an explicit `drop(<name>)`, the closer
/// of the enclosing block, or the end of the function body.
fn guard_extent(toks: &[Tok], from: usize, end: usize, name: &str, body_end_line: u32) -> u32 {
    let mut depth = 0isize;
    let mut k = from;
    while k < end {
        match toks[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return toks[k].line;
                }
            }
            TokKind::Ident
                if toks[k].text == "drop"
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(k + 2).is_some_and(|t| t.is_ident(name))
                    && toks.get(k + 3).is_some_and(|t| t.is_punct(')')) =>
            {
                return toks[k].line;
            }
            _ => {}
        }
        k += 1;
    }
    body_end_line
}

/// Classifies an `as` cast at token index `at`.
fn scan_cast(toks: &[Tok], at: usize, f: &mut FnItem) {
    let Some(target) = toks.get(at + 1).filter(|t| t.kind == TokKind::Ident) else { return };
    if !INT_TYPES.contains(&target.text.as_str()) {
        return;
    }
    let narrowing = NARROW_INT_TYPES.contains(&target.text.as_str());
    let mut float_source = false;
    if at > 0 && toks[at - 1].is_punct(')') {
        // Walk back to the matching `(`; a float-producing callee or a
        // float literal argument marks the source as float-valued.
        let mut depth = 0isize;
        let mut j = at - 1;
        loop {
            match toks[j].kind {
                TokKind::Punct(')') => depth += 1,
                TokKind::Punct('(') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Num if toks[j].text.contains('.') => float_source = true,
                _ => {}
            }
            if j == 0 {
                break;
            }
            j -= 1;
        }
        if j > 0
            && toks[j - 1].kind == TokKind::Ident
            && FLOAT_METHODS.contains(&toks[j - 1].text.as_str())
        {
            float_source = true;
        }
    }
    if narrowing || float_source {
        f.cast_sites.push(CastSite {
            line: toks[at].line,
            target: target.text.clone(),
            narrowing,
            float_source,
        });
    }
}

/// Classifies a `+` / `*` punct at `at` as unchecked integer arithmetic
/// when it is a binary operator (or compound assignment) over a
/// known-integer operand.
fn scan_arith(toks: &[Tok], at: usize, f: &mut FnItem) {
    let op = match toks[at].kind {
        TokKind::Punct(c) => c,
        _ => return,
    };
    let prev = match at.checked_sub(1).map(|p| &toks[p]) {
        Some(p) => p,
        None => return,
    };
    // Binary position: an operand must precede (else `*x` is a deref and
    // `+` cannot occur). Also excludes `&*`, `= *p`, generics `<*`.
    let prev_is_operand = matches!(prev.kind, TokKind::Ident | TokKind::Num)
        || prev.is_punct(')')
        || prev.is_punct(']');
    if !prev_is_operand || (prev.kind == TokKind::Ident && is_keyword(&prev.text)) {
        return;
    }
    let compound = toks.get(at + 1).is_some_and(|t| t.is_punct('='));
    let lhs_int = prev.kind == TokKind::Ident && f.int_idents.contains(&prev.text);
    // For `x += …` the next token is `=`; for binary look one past.
    let rhs_idx = if compound { at + 2 } else { at + 1 };
    let rhs_int = toks
        .get(rhs_idx)
        .is_some_and(|t| t.kind == TokKind::Ident && f.int_idents.contains(&t.text));
    if lhs_int || rhs_int {
        let operand = if lhs_int { prev.text.clone() } else { toks[rhs_idx].text.clone() };
        f.arith_sites.push(ArithSite { line: toks[at].line, op, operand });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse(src: &str) -> ParsedFile {
        let lexed = lexer::lex(src);
        let stripped = lexer::strip_cfg_test(&lexed.toks);
        parse_file("test.rs", &stripped)
    }

    fn fn_named<'a>(p: &'a ParsedFile, name: &str) -> &'a FnItem {
        p.fns.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("no fn {name}: {p:#?}"))
    }

    #[test]
    fn free_fn_and_method_with_self_type() {
        let p = parse(
            "fn free(a: u32) {} \
             struct S { pair: Pair } \
             impl S { fn m(&self, rng: &mut Mt64) { self.pair.go(rng); helper(); } }",
        );
        assert_eq!(fn_named(&p, "free").self_ty, None);
        let m = fn_named(&p, "m");
        assert_eq!(m.self_ty.as_deref(), Some("S"));
        assert_eq!(m.params.get("rng").map(String::as_str), Some("Mt64"));
        assert_eq!(p.structs["S"]["pair"], "Pair");
        assert!(m.calls.iter().any(|c| matches!(
            c,
            Call::Method { name, recv: Receiver::SelfChain(chain), .. }
                if name == "go" && chain == &["pair".to_owned()]
        )));
        assert!(m.calls.iter().any(|c| matches!(c, Call::Free { name, .. } if name == "helper")));
    }

    #[test]
    fn trait_impl_records_trait_name() {
        let p = parse("impl Sampler for Nat<'_> { fn sample(&mut self) -> f64 { 0.0 } }");
        let s = fn_named(&p, "sample");
        assert_eq!(s.trait_name.as_deref(), Some("Sampler"));
        assert_eq!(s.self_ty.as_deref(), Some("Nat"));
    }

    #[test]
    fn generic_bounds_are_recorded() {
        let p = parse("fn run<S: Sampler, T>(s: &mut S) { s.sample(); }");
        let f = fn_named(&p, "run");
        assert_eq!(f.generics.get("S").map(String::as_str), Some("Sampler"));
        assert_eq!(f.params.get("s").map(String::as_str), Some("S"));
    }

    #[test]
    fn nested_generics_do_not_break_item_boundaries() {
        // `>>` closing two levels, and a fn following it.
        let p = parse("fn a(x: Vec<Box<u8>>) -> Option<Vec<u8>> { x.len() } fn b() {}");
        assert_eq!(fn_named(&p, "a").params.get("x").map(String::as_str), Some("Vec"));
        assert!(p.fns.iter().any(|f| f.name == "b"));
    }

    #[test]
    fn path_calls_and_macros() {
        let p = parse("fn f() { Vec::with_capacity(4); format!(\"x\"); g::h::go(1); }");
        let f = fn_named(&p, "f");
        assert!(f.calls.iter().any(|c| matches!(
            c,
            Call::Path { qualifier, name, .. } if qualifier == "Vec" && name == "with_capacity"
        )));
        assert!(f.calls.iter().any(|c| matches!(c, Call::Macro { name, .. } if name == "format")));
        assert!(f.calls.iter().any(|c| matches!(
            c,
            Call::Path { qualifier, name, .. } if qualifier == "h" && name == "go"
        )));
    }

    #[test]
    fn closures_attribute_calls_to_the_enclosing_fn() {
        let p = parse("fn f(v: &[u32]) { v.iter().map(|x| helper(*x)).count(); }");
        let f = fn_named(&p, "f");
        assert!(f.calls.iter().any(|c| matches!(c, Call::Free { name, .. } if name == "helper")));
    }

    #[test]
    fn nested_fns_are_separate_items() {
        let p = parse("fn outer() { fn inner() { alloc(); } inner(); }");
        assert!(fn_named(&p, "inner")
            .calls
            .iter()
            .any(|c| matches!(c, Call::Free { name, .. } if name == "alloc")));
        let outer = fn_named(&p, "outer");
        assert!(!outer
            .calls
            .iter()
            .any(|c| matches!(c, Call::Free { name, .. } if name == "alloc")));
        assert!(outer
            .calls
            .iter()
            .any(|c| matches!(c, Call::Free { name, .. } if name == "inner")));
    }

    #[test]
    fn let_type_inference() {
        let p = parse(
            "struct D { pair: Pair } \
             impl D { fn f(&self) { \
               let a: Vec<u32> = make(); \
               let d = SymbolicDraw::new(1); \
               let pair = self.pair; \
               let mut n = 0; \
               d.go(); pair.check(); } }",
        );
        let f = fn_named(&p, "f");
        assert_eq!(f.locals.get("a").map(String::as_str), Some("Vec"));
        assert_eq!(f.locals.get("d").map(String::as_str), Some("SymbolicDraw"));
        assert_eq!(f.local_chains.get("pair"), Some(&vec!["self".to_owned(), "pair".to_owned()]));
        assert!(f.int_idents.contains("n"));
        assert!(f.calls.iter().any(|c| matches!(
            c,
            Call::Method { name, recv: Receiver::Var(v, _), .. } if name == "go" && v == "d"
        )));
    }

    #[test]
    fn indexing_sites_are_found_and_array_types_are_not() {
        let p = parse("fn f(v: &[u32], i: usize) -> u32 { let _a: [u8; 2] = [0, 1]; v[i] }");
        let f = fn_named(&p, "f");
        assert_eq!(f.index_sites.len(), 1);
    }

    #[test]
    fn cast_classification() {
        let p = parse(
            "fn f(n: f64, b: usize) { \
               let _x = n.ceil() as u64; \
               let _y = b as u32; \
               let _z = b as u64; \
               let _w = n as f64; }",
        );
        let f = fn_named(&p, "f");
        assert_eq!(f.cast_sites.len(), 2, "{:?}", f.cast_sites);
        assert!(f.cast_sites.iter().any(|c| c.float_source && c.target == "u64"));
        assert!(f.cast_sites.iter().any(|c| c.narrowing && c.target == "u32"));
    }

    #[test]
    fn arith_on_known_ints_only() {
        let p = parse(
            "fn f(n: u64, x: f64) { \
               let mut s = 0.0; s += x; \
               let mut c: u64 = 0; c += 1; \
               let _p = n * 3; \
               let _q = x * x; }",
        );
        let f = fn_named(&p, "f");
        let ops: Vec<char> = f.arith_sites.iter().map(|a| a.op).collect();
        assert_eq!(ops, vec!['+', '*'], "{:?}", f.arith_sites);
    }

    #[test]
    fn deref_and_bounds_are_not_arithmetic() {
        let p = parse("fn f<T: Send + Sync>(count: &mut u64) { *count += 1; }");
        let f = fn_named(&p, "f");
        // `*count` is a deref; the `+=` on it IS arithmetic on `count`.
        assert_eq!(f.arith_sites.len(), 1);
        assert_eq!(f.arith_sites[0].op, '+');
    }

    #[test]
    fn bindings_cover_params_lets_and_for_patterns() {
        let p = parse("fn f(cb: impl Fn()) { let g = make(); for job in jobs() { job(); cb(); } }");
        let f = fn_named(&p, "f");
        for b in ["cb", "g", "job"] {
            assert!(f.bindings.contains(b), "missing binding {b}: {:?}", f.bindings);
        }
        // `let Some(x) = …` is a pattern, not a binding named `Some`.
        let p = parse("fn g(o: Option<u32>) { if let Some(x) = o { use_it(x); } }");
        assert!(!fn_named(&p, "g").bindings.contains("Some"));
    }

    #[test]
    fn raw_identifiers_parse_as_fns() {
        let p = parse("fn r#match() { r#fn(); }");
        // The lexer strips the r# fence, so the names are the bare idents.
        assert!(p.fns.iter().any(|f| f.name == "match"));
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        for src in ["fn f(", "impl X { fn g(", "struct S { a: ", "fn f() { a.b(", "fn f<T"] {
            let _ = parse(src);
        }
    }

    fn span<'a>(p: &'a ParsedFile, fn_name: &str, lock: &str) -> &'a LockSpan {
        fn_named(p, fn_name)
            .lock_spans
            .iter()
            .find(|s| s.lock == lock)
            .unwrap_or_else(|| panic!("no span {lock}: {:#?}", fn_named(p, fn_name).lock_spans))
    }

    #[test]
    fn let_bound_guard_lives_to_fn_end() {
        let p = parse(
            "impl Cache { fn get(&self) {\n\
               let mut shard = self.shard(key).lock();\n\
               shard.touch();\n\
             } }",
        );
        let s = span(&p, "get", "Cache.shard(…)");
        assert!((!s.local && s.blocking), "{s:?}");
        assert_eq!((s.acquire_line, s.end_line), (2, 4));
    }

    #[test]
    fn adapter_chain_and_static_identity() {
        let p = parse(
            "fn arm() {\n\
               let guard = PLAN.lock().unwrap_or_else(PoisonError::into_inner);\n\
               guard.touch();\n\
               drop(guard);\n\
               after();\n\
             }",
        );
        let s = span(&p, "arm", "PLAN");
        assert!(!s.local);
        assert_eq!((s.acquire_line, s.end_line), (2, 4), "ends at drop(guard)");
    }

    #[test]
    fn block_scoped_guard_ends_at_block_close() {
        // Mirrors crates/chaos `trigger()`: the guard lives inside a block
        // expression; the sleep after the block runs lock-free.
        let p = parse(
            "fn trigger() {\n\
               let fired = {\n\
                 let guard = PLAN.lock();\n\
                 guard.check()\n\
               };\n\
               sleep_ms(fired);\n\
             }",
        );
        let s = span(&p, "trigger", "PLAN");
        assert_eq!((s.acquire_line, s.end_line), (3, 5));
    }

    #[test]
    fn temporaries_and_try_acquisitions() {
        let p = parse(
            "impl M { fn stats(&self) -> usize {\n\
               self.entries.lock().len()\n\
             }\n\
             fn probe(&self) {\n\
               let g = self.entries.try_lock();\n\
               g.use_it();\n\
             } }",
        );
        let s = span(&p, "stats", "M.entries");
        assert_eq!((s.acquire_line, s.end_line), (2, 2), "temporary is one line");
        let t = span(&p, "probe", "M.entries");
        assert!(!t.blocking, "try_lock cannot block");
        assert_eq!(t.end_line, 7);
    }

    #[test]
    fn local_variable_locks_do_not_unify_and_io_read_is_not_a_lock() {
        let p = parse(
            "fn a(m: &Mutex) { let g = m.lock(); g.touch(); }\n\
             fn b(r: &mut File) { r.read(&mut buf).ok(); }",
        );
        let s = span(&p, "a", "m");
        assert!(s.local);
        assert!(fn_named(&p, "b").lock_spans.is_empty(), "read(&mut buf) takes an argument");
    }

    #[test]
    fn closure_bindings_are_recorded() {
        let p = parse("fn f() { let enc = |x: u32| go(x); let h = move || enc(1); h(); }");
        let f = fn_named(&p, "f");
        assert!(f.closure_bindings.contains("enc") && f.closure_bindings.contains("h"));
        assert!(!f.closure_bindings.contains("x"));
    }

    #[test]
    fn question_sites_but_not_sized_bounds() {
        let p = parse(
            "fn f(s: &str) -> Result<u32, E> { let v = s.parse()?; Ok(v) }\n\
             fn g<T: ?Sized>(t: &T) {}",
        );
        assert_eq!(fn_named(&p, "f").question_lines, vec![1]);
        assert!(fn_named(&p, "g").question_lines.is_empty());
    }

    #[test]
    fn fault_and_blocking_sites() {
        let p = parse(
            "fn f(rx: &Receiver, v: &[String]) {\n\
               fault_point!(\"demo/parse\");\n\
               let _ = rx.recv();\n\
               thread::sleep(ms());\n\
               let _j = v.join(\",\");\n\
               h.join();\n\
             }",
        );
        let f = fn_named(&p, "f");
        assert_eq!(f.fault_sites, vec![("demo/parse".to_owned(), 2)]);
        let lines: Vec<u32> = f.blocking_sites.iter().map(Call::line).collect();
        assert_eq!(lines, vec![3, 4, 6], "Vec::join(sep) is not blocking: {:?}", f.blocking_sites);
    }
}
