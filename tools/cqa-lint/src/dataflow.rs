//! A forward dataflow / abstract-interpretation engine over the token
//! bodies that [`crate::parser`] extracts, with interprocedural function
//! summaries propagated over [`crate::callgraph`].
//!
//! The engine re-walks each function's body token range (recorded by the
//! parser as [`crate::parser::FnItem::body`]) into a small statement /
//! expression tree — not a full Rust AST, just the fragment the abstract
//! domains can interpret: literals, variables, field projections, unary
//! and binary arithmetic, comparisons, calls, struct literals, `if` /
//! `match` / `loop` / `while` / `for` control flow, `let` bindings,
//! assignments, `return` / `break` / `continue`, and the `?` operator.
//! Everything else becomes an explicit [`Expr::Opaque`] that evaluates to
//! the domain's top — unknown syntax degrades precision, never soundness
//! of the *reported* facts (see "Known unsoundness" in `docs/ANALYSIS.md`
//! for the places where the model itself is optimistic).
//!
//! Two production analyses run on one product domain ([`Abs`]):
//!
//! * **`wire-input-taint`** — values read from the NDJSON wire in
//!   `crates/server` are tainted until they pass a validator registered
//!   in `crates/common/src/validate.rs`; taint reaching an allocation
//!   size, a loop bound, or a capacity is a finding with the
//!   reconstructed flow path.
//! * **`estimator-intervals`** — an interval domain over the estimator
//!   math in `crates/core` proving divisors are bounded away from zero
//!   and probabilities stay in `[0, 1]`, and discharging
//!   `checked-estimator-math` sites whose ranges provably fit in `u64`.
//!
//! ## Interprocedural structure
//!
//! 1. **Summaries, bottom-up.** Functions are processed in Tarjan-SCC
//!    condensation order, callees first. Each function is interpreted
//!    with symbolic parameters (taint tracks *which parameter* flows to
//!    the result via a bitmask; intervals start from the declared type's
//!    value range) and yields a [`Summary`]: the joined `Ok`-exit return
//!    value plus per-parameter interval refinements that hold whenever
//!    the function returns `Ok` (so `check_params(eps, delta)?` teaches
//!    the caller `eps > 0`). Recursive cycles iterate to a widened
//!    fixpoint.
//! 2. **Contexts + reporting, top-down.** Functions are then re-walked
//!    callers-first; every call site joins its (abstract) arguments into
//!    the callee's context, so by the time a function is visited its
//!    parameter environment reflects every observed caller and findings
//!    can be reported with whole-program precision. Functions with no
//!    observed callers keep type-based top parameters — and, crucially,
//!    *clean* taint: taint only enters at wire reads.
//!
//! Loops run to a bounded fixpoint ([`FIXPOINT_ITERS`] rounds, widening
//! from the second), `while` loops that provably execute at least once
//! exclude the zero-iteration path from their exit environment, and
//! `break`-edge environments keep the narrowing of the conditions
//! guarding the `break` — which is how `trials >= 1` survives to the
//! post-loop divisions in `coverage.rs`.

use crate::callgraph::{FnId, Graph};
use crate::domains::{Interval, Lattice, Provenance};
use crate::lexer::{Tok, TokKind};
use crate::parser::{FnItem, INT_TYPES};
use std::collections::{BTreeMap, BTreeSet};

/// Maximum loop-body fixpoint rounds before trusting the widened state.
const FIXPOINT_ITERS: usize = 4;
/// Maximum rounds around a recursive SCC before widening its summaries.
const SCC_ITERS: usize = 3;
/// Maximum expression nesting the extractor follows before bailing to
/// [`Expr::Opaque`]; guards against pathological token soup.
const MAX_DEPTH: usize = 40;
/// Struct values deeper than this collapse to their scalar approximation.
const MAX_VAL_DEPTH: usize = 3;

// ---------------------------------------------------------------------------
// Mini-AST
// ---------------------------------------------------------------------------

/// Comparison operators the interval domain can narrow on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// The mirrored operator for swapped operands (`a < b` ⇔ `b > a`).
    fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            op => op,
        }
    }
}

/// The expression fragment the domains interpret.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Numeric literal (value pre-parsed; suffix stripped).
    Num(f64, bool),
    /// A string/char literal — abstractly an untainted scalar; the text
    /// labels taint sources (`as_f64("eps")`).
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// A variable read.
    Var(String),
    /// `base.field` (tuple fields included: `pair.0`).
    Field(Box<Expr>, String),
    /// `!e` or `-e`.
    Unary(char, Box<Expr>),
    /// `a + b`, `a - b`, `a * b`, `a / b`, `a % b`; carries the line.
    Bin(char, Box<Expr>, Box<Expr>, u32),
    /// `a < b` and friends.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// `a && b`.
    And(Box<Expr>, Box<Expr>),
    /// `a || b`.
    Or(Box<Expr>, Box<Expr>),
    /// `recv.name(args)`.
    MethodCall(Box<Expr>, String, Vec<Expr>, u32),
    /// `Qual::name(args)` — `qual` is the last path segment before the
    /// name (`Vec` in `std::vec::Vec::with_capacity`).
    PathCall(String, String, Vec<Expr>, u32),
    /// `name(args)`.
    FreeCall(String, Vec<Expr>, u32),
    /// `Qual::NAME` — a path constant such as `u64::MAX`.
    PathConst(String, String),
    /// `Name { field: e, .. }`.
    StructLit(String, Vec<(String, Expr)>),
    /// `(a, b, …)`.
    Tuple(Vec<Expr>),
    /// `a..b` / `a..=b` (either side optional).
    Range(Option<Box<Expr>>, Option<Box<Expr>>),
    /// `e as ty`.
    Cast(Box<Expr>, String),
    /// `e?` — applies the callee's `Ok`-refinements on success.
    Try(Box<Expr>),
    /// `if c { a } else { b }` in expression position.
    IfExpr(Box<Expr>, Vec<Stmt>, Vec<Stmt>),
    /// `match scrutinee { pat => body, … }` in expression position.
    MatchExpr(Box<Expr>, Vec<(Pat, Vec<Stmt>)>),
    /// `|…| body` — evaluated for effects, value opaque.
    Closure(Vec<Stmt>),
    /// `&e` / `&mut e`; the bool is `mut`.
    Ref(Box<Expr>, bool),
    /// Anything the extractor does not model.
    Opaque,
}

/// Patterns, as far as binding structure matters.
#[derive(Debug, Clone)]
pub enum Pat {
    /// `_`, literals, rest patterns — binds nothing.
    Wild,
    /// A bare identifier binding the whole matched value.
    Bind(String),
    /// `Variant(p1, …)` / `Variant { .. }`; one sub-binding sees the
    /// scrutinee's payload (constructor-transparent, matching how
    /// [`Val`] flows through `Ok(_)`/`Some(_)` wrappers).
    Variant(String, Vec<Pat>),
    /// `(p1, p2, …)`.
    Tuple(Vec<Pat>),
}

impl Pat {
    /// Every name this pattern binds.
    fn binds(&self, out: &mut Vec<String>) {
        match self {
            Pat::Wild => {}
            Pat::Bind(n) => out.push(n.clone()),
            Pat::Variant(_, ps) | Pat::Tuple(ps) => {
                for p in ps {
                    p.binds(out);
                }
            }
        }
    }
}

/// Statements.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let pat = e;` (initializer optional; `let … else` treated as an
    /// always-succeeding bind, since the else-block diverges).
    Let(Pat, Option<Expr>, u32),
    /// `x = e;`, `x.f = e;`, `x += e;`. The `Option<char>` is the
    /// compound operator, the path the field chain under `x`.
    Assign(String, Vec<String>, Option<char>, Expr, u32),
    /// An expression evaluated for effect.
    Expr(Expr),
    /// The trailing expression of a block (no `;`) — a value exit.
    Tail(Expr),
    /// `if c { .. } else { .. }` (else-if chains nest in the else).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `if let pat = e { .. } else { .. }`.
    IfLet(Pat, Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while c { .. }`, with an optional label; the line is the loop
    /// head's (the taint-sink site for an attacker-controlled bound).
    While(Option<String>, Expr, Vec<Stmt>, u32),
    /// `loop { .. }`, with an optional label.
    Loop(Option<String>, Vec<Stmt>),
    /// `for pat in e { .. }`; the line is the loop head's (the
    /// taint-sink site for an attacker-controlled bound).
    For(Pat, Expr, Vec<Stmt>, u32),
    /// `match e { .. }` in statement position.
    Match(Expr, Vec<(Pat, Vec<Stmt>)>),
    /// `return e;`.
    Return(Option<Expr>),
    /// `break 'label e;`.
    Break(Option<String>, Option<Expr>),
    /// `continue 'label;`.
    Continue(Option<String>),
    /// A nested `{ .. }` block.
    Block(Vec<Stmt>),
    /// Something the extractor skipped.
    Opaque,
}

// ---------------------------------------------------------------------------
// Token → mini-AST extraction
// ---------------------------------------------------------------------------

/// A cursor over one function body's token slice.
struct Cur<'a> {
    toks: &'a [Tok],
    i: usize,
    end: usize,
}

impl<'a> Cur<'a> {
    fn new(toks: &'a [Tok], start: usize, end: usize) -> Cur<'a> {
        Cur { toks, i: start, end: end.min(toks.len()) }
    }

    fn peek(&self) -> Option<&'a Tok> {
        if self.i < self.end {
            Some(&self.toks[self.i])
        } else {
            None
        }
    }

    fn peek_at(&self, off: usize) -> Option<&'a Tok> {
        let j = self.i + off;
        if j < self.end {
            Some(&self.toks[j])
        } else {
            None
        }
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek().is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, name: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(name))
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.peek();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn line(&self) -> u32 {
        self.peek().map_or(0, |t| t.line)
    }

    /// Skips a balanced group starting at the current opening delimiter.
    fn skip_group(&mut self) {
        let (open, close) = match self.peek().map(|t| &t.kind) {
            Some(TokKind::Punct('(')) => ('(', ')'),
            Some(TokKind::Punct('[')) => ('[', ']'),
            Some(TokKind::Punct('{')) => ('{', '}'),
            _ => {
                self.i += 1;
                return;
            }
        };
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Index of the matching `}` for a `{` at the current position.
    fn brace_end(&self) -> usize {
        let mut depth = 0usize;
        let mut j = self.i;
        while j < self.end {
            match self.toks[j].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.end
    }
}

/// Parses a numeric literal's value; `1_000`, suffixes, hex.
fn num_value(text: &str) -> Option<(f64, bool)> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let is_float = clean.contains('.')
        || ((clean.contains('e') || clean.contains('E')) && !clean.starts_with("0x"));
    let trimmed =
        clean.trim_end_matches(|c: char| c.is_ascii_alphabetic() || c.is_ascii_digit()).len();
    // Strip a type suffix (`u64`, `f32`, `usize`) if present: find the
    // longest numeric prefix.
    let _ = trimmed;
    let mut end = clean.len();
    for suf in [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        "f64", "f32",
    ] {
        if clean.ends_with(suf) && clean.len() > suf.len() {
            end = clean.len() - suf.len();
            break;
        }
    }
    let core = &clean[..end];
    if let Some(hex) = core.strip_prefix("0x") {
        return u64::from_str_radix(hex, 16).ok().map(|v| (v as f64, true));
    }
    if let Some(bin) = core.strip_prefix("0b") {
        return u64::from_str_radix(bin, 2).ok().map(|v| (v as f64, true));
    }
    core.parse::<f64>().ok().map(|v| {
        let int = !is_float && !clean.ends_with("f64") && !clean.ends_with("f32");
        (v, int)
    })
}

/// Extracts the statement list of one function body from the stripped
/// token stream. `(start, end)` is the exclusive-of-braces range recorded
/// in [`FnItem::body`].
pub fn extract_body(toks: &[Tok], start: usize, end: usize) -> Vec<Stmt> {
    let mut cur = Cur::new(toks, start, end);
    parse_stmts(&mut cur, 0)
}

fn parse_stmts(cur: &mut Cur<'_>, depth: usize) -> Vec<Stmt> {
    let mut out = Vec::new();
    if depth > MAX_DEPTH {
        cur.i = cur.end;
        return out;
    }
    while cur.i < cur.end {
        if cur.at_punct('}') {
            // Stray close (we are called with exact ranges, but stay safe).
            cur.i += 1;
            continue;
        }
        if cur.eat_punct(';') {
            continue;
        }
        if let Some(stmt) = parse_stmt(cur, depth) {
            out.push(stmt);
        }
    }
    out
}

/// Parses one statement; returns `None` for constructs handled inline.
fn parse_stmt(cur: &mut Cur<'_>, depth: usize) -> Option<Stmt> {
    let t = cur.peek()?;
    let line = t.line;

    // Nested items: skip `fn`/`struct`/`impl`/`use`/`const`/`static`
    // bodies wholesale — nested fns are parsed as their own FnItems.
    if t.kind == TokKind::Ident {
        match t.text.as_str() {
            "fn" | "struct" | "enum" | "impl" | "trait" | "mod" | "use" | "type" => {
                skip_item(cur);
                return Some(Stmt::Opaque);
            }
            "const" | "static" => {
                // `const X: T = e;` inside a body — treat as a let.
                cur.bump();
                let name = cur.peek().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone());
                if let Some(name) = name {
                    cur.bump();
                    // Skip `: Type`
                    if cur.eat_punct(':') {
                        skip_type(cur);
                    }
                    if cur.eat_punct('=') {
                        let e = parse_expr(cur, depth + 1, true);
                        cur.eat_punct(';');
                        return Some(Stmt::Let(Pat::Bind(name), Some(e), line));
                    }
                }
                skip_to_semi(cur);
                return Some(Stmt::Opaque);
            }
            "let" => return Some(parse_let(cur, depth, line)),
            "if" => {
                let (s, _) = parse_if(cur, depth);
                return Some(s);
            }
            "while" => return Some(parse_while(cur, depth, None)),
            "loop" => return Some(parse_loop(cur, depth, None)),
            "for" => return Some(parse_for(cur, depth, None)),
            "match" => {
                cur.bump();
                let scrut = parse_expr_no_struct(cur, depth + 1);
                let arms = parse_match_arms(cur, depth);
                return Some(Stmt::Match(scrut, arms));
            }
            "return" => {
                cur.bump();
                if cur.at_punct(';') || cur.at_punct('}') || cur.i >= cur.end {
                    cur.eat_punct(';');
                    return Some(Stmt::Return(None));
                }
                let e = parse_expr(cur, depth + 1, true);
                cur.eat_punct(';');
                return Some(Stmt::Return(Some(e)));
            }
            "break" => {
                cur.bump();
                let label = eat_label(cur);
                if cur.at_punct(';') || cur.at_punct('}') || cur.i >= cur.end {
                    cur.eat_punct(';');
                    return Some(Stmt::Break(label, None));
                }
                let e = parse_expr(cur, depth + 1, true);
                cur.eat_punct(';');
                return Some(Stmt::Break(label, Some(e)));
            }
            "continue" => {
                cur.bump();
                let label = eat_label(cur);
                cur.eat_punct(';');
                return Some(Stmt::Continue(label));
            }
            "unsafe" => {
                cur.bump();
                return parse_stmt(cur, depth);
            }
            _ => {}
        }
    }

    // Labeled loop: `'outer: loop { … }`.
    if t.kind == TokKind::Lifetime {
        let label = t.text.clone();
        if cur.peek_at(1).is_some_and(|t| t.is_punct(':')) {
            cur.bump();
            cur.bump();
            if cur.at_ident("loop") {
                return Some(parse_loop(cur, depth, Some(label)));
            }
            if cur.at_ident("while") {
                return Some(parse_while(cur, depth, Some(label)));
            }
            if cur.at_ident("for") {
                return Some(parse_for(cur, depth, Some(label)));
            }
            return Some(Stmt::Opaque);
        }
    }

    // `#[attr]` on a statement.
    if t.is_punct('#') {
        cur.bump();
        if cur.at_punct('[') {
            cur.skip_group();
        }
        return parse_stmt(cur, depth);
    }

    // Bare block.
    if t.is_punct('{') {
        let body = parse_block(cur, depth);
        return Some(Stmt::Block(body));
    }

    // Assignment: `ident (.field)* (op)?= expr ;` — look ahead.
    if t.kind == TokKind::Ident {
        if let Some(stmt) = try_parse_assign(cur, depth) {
            return Some(stmt);
        }
    }
    if t.is_punct('*') {
        // Deref assignment `*x = e;` — havoc the variable.
        if let Some(n) = cur.peek_at(1) {
            if n.kind == TokKind::Ident
                && cur.peek_at(2).is_some_and(|t| t.is_punct('='))
                && !cur.peek_at(3).is_some_and(|t| t.is_punct('='))
            {
                cur.bump();
                let name = cur.bump().map(|t| t.text.clone()).unwrap_or_default();
                cur.bump();
                let e = parse_expr(cur, depth + 1, true);
                cur.eat_punct(';');
                return Some(Stmt::Assign(name, Vec::new(), None, e, line));
            }
        }
    }

    // Expression statement (maybe a tail expression).
    let e = parse_expr(cur, depth + 1, true);
    if cur.eat_punct(';') {
        Some(Stmt::Expr(e))
    } else if cur.i >= cur.end {
        Some(Stmt::Tail(e))
    } else {
        // Block-ending expressions (`if`/`match` in stmt position) need
        // no `;`; anything else unparsed — keep as effect-only.
        Some(Stmt::Expr(e))
    }
}

fn eat_label(cur: &mut Cur<'_>) -> Option<String> {
    if cur.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
        cur.bump().map(|t| t.text.clone())
    } else {
        None
    }
}

fn skip_item(cur: &mut Cur<'_>) {
    // Skip tokens to the item's body braces (or a terminating `;`), then
    // skip the braced group.
    while let Some(t) = cur.peek() {
        if t.is_punct('{') {
            cur.skip_group();
            return;
        }
        if t.is_punct(';') {
            cur.bump();
            return;
        }
        cur.bump();
    }
}

fn skip_to_semi(cur: &mut Cur<'_>) {
    while let Some(t) = cur.peek() {
        if t.is_punct(';') {
            cur.bump();
            return;
        }
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            cur.skip_group();
            continue;
        }
        cur.bump();
    }
}

/// Skips a type annotation conservatively (to `=`, `;`, `,`, `)`, or `{`
/// at depth 0).
fn skip_type(cur: &mut Cur<'_>) {
    let mut angle = 0i32;
    while let Some(t) = cur.peek() {
        match &t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Punct('(') | TokKind::Punct('[') => {
                cur.skip_group();
                continue;
            }
            TokKind::Punct('=') | TokKind::Punct(';') | TokKind::Punct('{') if angle <= 0 => return,
            TokKind::Punct(',') | TokKind::Punct(')') if angle <= 0 => return,
            _ => {}
        }
        cur.bump();
    }
}

fn parse_let(cur: &mut Cur<'_>, depth: usize, line: u32) -> Stmt {
    cur.bump(); // let
    let _ = cur.at_ident("mut") && cur.bump().is_some();
    let pat = parse_pat(cur, 0);
    if cur.eat_punct(':') {
        skip_type(cur);
    }
    if !cur.eat_punct('=') {
        cur.eat_punct(';');
        return Stmt::Let(pat, None, line);
    }
    let e = parse_expr(cur, depth + 1, true);
    // `let … else { … }`: the else-block diverges; bind optimistically.
    if cur.at_ident("else") {
        cur.bump();
        if cur.at_punct('{') {
            cur.skip_group();
        }
    }
    cur.eat_punct(';');
    Stmt::Let(pat, Some(e), line)
}

fn try_parse_assign(cur: &mut Cur<'_>, depth: usize) -> Option<Stmt> {
    let start = cur.i;
    let line = cur.line();
    let name = cur.peek()?.text.clone();
    if cur.peek()?.kind != TokKind::Ident {
        return None;
    }
    let mut j = cur.i + 1;
    let mut path = Vec::new();
    // ident (.field)*  — fields must be plain idents or tuple indices.
    while j + 1 < cur.end
        && cur.toks[j].is_punct('.')
        && matches!(cur.toks[j + 1].kind, TokKind::Ident | TokKind::Num)
    {
        path.push(cur.toks[j + 1].text.clone());
        j += 2;
    }
    if j >= cur.end {
        return None;
    }
    let (op, eq_at) = match cur.toks[j].kind {
        TokKind::Punct('=') if !cur.toks.get(j + 1).is_some_and(|t| t.is_punct('=')) => (None, j),
        TokKind::Punct(c @ ('+' | '-' | '*' | '/' | '%'))
            if cur.toks.get(j + 1).is_some_and(|t| t.is_punct('=')) =>
        {
            (Some(c), j + 1)
        }
        _ => {
            cur.i = start;
            return None;
        }
    };
    // Reject `==` disguised (handled above) and `=>`.
    if cur.toks.get(eq_at + 1).is_some_and(|t| t.is_punct('>')) {
        cur.i = start;
        return None;
    }
    cur.i = eq_at + 1;
    let e = parse_expr(cur, depth + 1, true);
    cur.eat_punct(';');
    Some(Stmt::Assign(name, path, op, e, line))
}

fn parse_block(cur: &mut Cur<'_>, depth: usize) -> Vec<Stmt> {
    if !cur.at_punct('{') {
        return Vec::new();
    }
    let end = cur.brace_end();
    let mut inner = Cur::new(cur.toks, cur.i + 1, end);
    let stmts = parse_stmts(&mut inner, depth + 1);
    cur.i = (end + 1).min(cur.end);
    stmts
}

fn parse_if(cur: &mut Cur<'_>, depth: usize) -> (Stmt, bool) {
    cur.bump(); // if
    if cur.at_ident("let") {
        cur.bump();
        let pat = parse_pat(cur, 0);
        cur.eat_punct('=');
        let scrut = parse_expr_no_struct(cur, depth + 1);
        let then = parse_block(cur, depth);
        let els = parse_else(cur, depth);
        return (Stmt::IfLet(pat, scrut, then, els), true);
    }
    let cond = parse_expr_no_struct(cur, depth + 1);
    let then = parse_block(cur, depth);
    let els = parse_else(cur, depth);
    (Stmt::If(cond, then, els), true)
}

fn parse_else(cur: &mut Cur<'_>, depth: usize) -> Vec<Stmt> {
    if !cur.at_ident("else") {
        return Vec::new();
    }
    cur.bump();
    if cur.at_ident("if") {
        let (s, _) = parse_if(cur, depth);
        return vec![s];
    }
    parse_block(cur, depth)
}

fn parse_while(cur: &mut Cur<'_>, depth: usize, label: Option<String>) -> Stmt {
    let line = cur.line();
    cur.bump(); // while
    if cur.at_ident("let") {
        // `while let` — model as a loop whose body may not run.
        cur.bump();
        let _pat = parse_pat(cur, 0);
        cur.eat_punct('=');
        let scrut = parse_expr_no_struct(cur, depth + 1);
        let mut body = parse_block(cur, depth);
        body.insert(0, Stmt::Expr(scrut));
        return Stmt::While(label, Expr::Opaque, body, line);
    }
    let cond = parse_expr_no_struct(cur, depth + 1);
    let body = parse_block(cur, depth);
    Stmt::While(label, cond, body, line)
}

fn parse_loop(cur: &mut Cur<'_>, depth: usize, label: Option<String>) -> Stmt {
    cur.bump(); // loop
    let body = parse_block(cur, depth);
    Stmt::Loop(label, body)
}

fn parse_for(cur: &mut Cur<'_>, depth: usize, label: Option<String>) -> Stmt {
    let line = cur.line();
    cur.bump(); // for
    let pat = parse_pat(cur, 0);
    if cur.at_ident("in") {
        cur.bump();
    }
    let iter = parse_expr_no_struct(cur, depth + 1);
    let body = parse_block(cur, depth);
    let _ = label;
    Stmt::For(pat, iter, body, line)
}

fn parse_match_arms(cur: &mut Cur<'_>, depth: usize) -> Vec<(Pat, Vec<Stmt>)> {
    let mut arms = Vec::new();
    if !cur.at_punct('{') {
        return arms;
    }
    let end = cur.brace_end();
    let mut inner = Cur::new(cur.toks, cur.i + 1, end);
    while inner.i < inner.end {
        if inner.eat_punct(',') {
            continue;
        }
        let pat = parse_pat(&mut inner, 0);
        // Or-patterns / guards: skip to `=>`.
        while inner.i < inner.end
            && !(inner.at_punct('=') && inner.peek_at(1).is_some_and(|t| t.is_punct('>')))
        {
            if inner.at_punct('{') || inner.at_punct('(') || inner.at_punct('[') {
                inner.skip_group();
            } else {
                inner.bump();
            }
        }
        if inner.i >= inner.end {
            break;
        }
        inner.i += 2; // =>
        let body = if inner.at_punct('{') {
            parse_block(&mut inner, depth)
        } else {
            let e = parse_expr(&mut inner, depth + 1, true);
            vec![Stmt::Tail(e)]
        };
        arms.push((pat, body));
    }
    cur.i = (end + 1).min(cur.end);
    arms
}

fn parse_pat(cur: &mut Cur<'_>, depth: usize) -> Pat {
    if depth > 8 {
        return Pat::Wild;
    }
    // `&pat`, `ref`/`mut` prefixes.
    while cur.at_punct('&') || cur.at_ident("ref") || cur.at_ident("mut") {
        cur.bump();
    }
    let Some(t) = cur.peek() else { return Pat::Wild };
    match &t.kind {
        TokKind::Ident if t.text == "_" => {
            cur.bump();
            Pat::Wild
        }
        TokKind::Ident => {
            let mut name = t.text.clone();
            cur.bump();
            // Path segments: `Request::Query` — keep the last.
            while cur.at_punct(':')
                && cur.peek_at(1).is_some_and(|t| t.is_punct(':'))
                && cur.peek_at(2).is_some_and(|t| t.kind == TokKind::Ident)
            {
                cur.i += 2;
                name = cur.bump().map(|t| t.text.clone()).unwrap_or(name);
            }
            if cur.at_punct('(') {
                // Tuple-variant pattern.
                let close = group_close(cur);
                let mut inner = Cur::new(cur.toks, cur.i + 1, close);
                let mut subs = Vec::new();
                while inner.i < inner.end {
                    if inner.eat_punct(',') {
                        continue;
                    }
                    subs.push(parse_pat(&mut inner, depth + 1));
                    // Skip anything the sub-pattern didn't consume up to `,`.
                    while inner.i < inner.end && !inner.at_punct(',') {
                        if inner.at_punct('(') || inner.at_punct('{') || inner.at_punct('[') {
                            inner.skip_group();
                        } else {
                            inner.bump();
                        }
                    }
                }
                cur.i = (close + 1).min(cur.end);
                Pat::Variant(name, subs)
            } else if cur.at_punct('{') {
                // Struct pattern: bind `field` / `field: pat` names.
                let end = cur.brace_end();
                let mut inner = Cur::new(cur.toks, cur.i + 1, end);
                let mut subs = Vec::new();
                while inner.i < inner.end {
                    if inner.eat_punct(',') || inner.eat_punct('.') {
                        continue;
                    }
                    let Some(ft) = inner.peek() else { break };
                    if ft.kind == TokKind::Ident {
                        let fname = ft.text.clone();
                        inner.bump();
                        if inner.eat_punct(':') {
                            let sub = parse_pat(&mut inner, depth + 1);
                            subs.push(sub);
                        } else {
                            subs.push(Pat::Bind(fname));
                        }
                    } else {
                        inner.bump();
                    }
                }
                cur.i = (end + 1).min(cur.end);
                Pat::Variant(name, subs)
            } else if name.chars().next().is_some_and(char::is_uppercase) {
                // Unit variant (`None`) — binds nothing.
                Pat::Variant(name, Vec::new())
            } else {
                Pat::Bind(name)
            }
        }
        TokKind::Punct('(') => {
            let close = group_close(cur);
            let mut inner = Cur::new(cur.toks, cur.i + 1, close);
            let mut subs = Vec::new();
            while inner.i < inner.end {
                if inner.eat_punct(',') {
                    continue;
                }
                subs.push(parse_pat(&mut inner, depth + 1));
                while inner.i < inner.end && !inner.at_punct(',') {
                    if inner.at_punct('(') || inner.at_punct('{') || inner.at_punct('[') {
                        inner.skip_group();
                    } else {
                        inner.bump();
                    }
                }
            }
            cur.i = (close + 1).min(cur.end);
            Pat::Tuple(subs)
        }
        _ => {
            cur.bump();
            Pat::Wild
        }
    }
}

/// Index of the `)` matching a `(` at the cursor.
fn group_close(cur: &Cur<'_>) -> usize {
    let mut depth = 0usize;
    let mut j = cur.i;
    while j < cur.end {
        match cur.toks[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    cur.end
}

// ---------------------------------------------------------------------------
// Expression parsing (precedence climbing)
// ---------------------------------------------------------------------------

/// Parses an expression; `structs` allows struct-literal syntax (`false`
/// in `if`/`while`/`for`/`match` heads, matching Rust's restriction).
fn parse_expr(cur: &mut Cur<'_>, depth: usize, structs: bool) -> Expr {
    if depth > MAX_DEPTH {
        cur.bump();
        return Expr::Opaque;
    }
    parse_or(cur, depth, structs)
}

fn parse_expr_no_struct(cur: &mut Cur<'_>, depth: usize) -> Expr {
    parse_expr(cur, depth, false)
}

fn parse_or(cur: &mut Cur<'_>, depth: usize, structs: bool) -> Expr {
    let mut lhs = parse_and(cur, depth, structs);
    while cur.at_punct('|') && cur.peek_at(1).is_some_and(|t| t.is_punct('|')) {
        cur.i += 2;
        let rhs = parse_and(cur, depth + 1, structs);
        lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
    }
    lhs
}

fn parse_and(cur: &mut Cur<'_>, depth: usize, structs: bool) -> Expr {
    let mut lhs = parse_cmp(cur, depth, structs);
    while cur.at_punct('&') && cur.peek_at(1).is_some_and(|t| t.is_punct('&')) {
        cur.i += 2;
        let rhs = parse_cmp(cur, depth + 1, structs);
        lhs = Expr::And(Box::new(lhs), Box::new(rhs));
    }
    lhs
}

fn parse_cmp(cur: &mut Cur<'_>, depth: usize, structs: bool) -> Expr {
    let lhs = parse_range(cur, depth, structs);
    let op = match cur.peek().map(|t| &t.kind) {
        Some(TokKind::Punct('<')) => {
            if cur.peek_at(1).is_some_and(|t| t.is_punct('=')) {
                cur.i += 2;
                CmpOp::Le
            } else {
                cur.i += 1;
                CmpOp::Lt
            }
        }
        Some(TokKind::Punct('>')) => {
            if cur.peek_at(1).is_some_and(|t| t.is_punct('=')) {
                cur.i += 2;
                CmpOp::Ge
            } else {
                cur.i += 1;
                CmpOp::Gt
            }
        }
        Some(TokKind::Punct('=')) if cur.peek_at(1).is_some_and(|t| t.is_punct('=')) => {
            cur.i += 2;
            CmpOp::Eq
        }
        Some(TokKind::Punct('!')) if cur.peek_at(1).is_some_and(|t| t.is_punct('=')) => {
            cur.i += 2;
            CmpOp::Ne
        }
        _ => return lhs,
    };
    let rhs = parse_range(cur, depth + 1, structs);
    Expr::Cmp(Box::new(lhs), op, Box::new(rhs))
}

fn parse_range(cur: &mut Cur<'_>, depth: usize, structs: bool) -> Expr {
    // Leading `..e` / `..=e`.
    if cur.at_punct('.') && cur.peek_at(1).is_some_and(|t| t.is_punct('.')) {
        cur.i += 2;
        cur.eat_punct('=');
        if range_end_follows(cur) {
            return Expr::Range(None, None);
        }
        let hi = parse_add(cur, depth + 1, structs);
        return Expr::Range(None, Some(Box::new(hi)));
    }
    let lhs = parse_add(cur, depth, structs);
    if cur.at_punct('.') && cur.peek_at(1).is_some_and(|t| t.is_punct('.')) {
        cur.i += 2;
        cur.eat_punct('=');
        if range_end_follows(cur) {
            return Expr::Range(Some(Box::new(lhs)), None);
        }
        let hi = parse_add(cur, depth + 1, structs);
        return Expr::Range(Some(Box::new(lhs)), Some(Box::new(hi)));
    }
    lhs
}

fn range_end_follows(cur: &Cur<'_>) -> bool {
    match cur.peek().map(|t| &t.kind) {
        None => true,
        Some(TokKind::Punct(c)) => matches!(c, ')' | ']' | '}' | ',' | ';' | '{'),
        _ => false,
    }
}

fn parse_add(cur: &mut Cur<'_>, depth: usize, structs: bool) -> Expr {
    let mut lhs = parse_mul(cur, depth, structs);
    loop {
        let line = cur.line();
        let op = match cur.peek().map(|t| &t.kind) {
            Some(TokKind::Punct(c @ ('+' | '-')))
                if !cur.peek_at(1).is_some_and(|t| t.is_punct('=')) =>
            {
                *c
            }
            _ => break,
        };
        // `->` return-type arrow never appears in expr position; `-` as
        // part of `..` handled above.
        if op == '-' && cur.peek_at(1).is_some_and(|t| t.is_punct('>')) {
            break;
        }
        cur.i += 1;
        let rhs = parse_mul(cur, depth + 1, structs);
        lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), line);
    }
    lhs
}

fn parse_mul(cur: &mut Cur<'_>, depth: usize, structs: bool) -> Expr {
    let mut lhs = parse_cast(cur, depth, structs);
    loop {
        let line = cur.line();
        let op = match cur.peek().map(|t| &t.kind) {
            Some(TokKind::Punct(c @ ('*' | '/' | '%')))
                if !cur.peek_at(1).is_some_and(|t| t.is_punct('=')) =>
            {
                *c
            }
            _ => break,
        };
        cur.i += 1;
        let rhs = parse_cast(cur, depth + 1, structs);
        lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), line);
    }
    lhs
}

fn parse_cast(cur: &mut Cur<'_>, depth: usize, structs: bool) -> Expr {
    let mut e = parse_unary(cur, depth, structs);
    while cur.at_ident("as") {
        cur.bump();
        let mut ty = String::new();
        while let Some(t) = cur.peek() {
            if t.kind == TokKind::Ident {
                ty = t.text.clone();
                cur.bump();
                if cur.at_punct(':') && cur.peek_at(1).is_some_and(|t| t.is_punct(':')) {
                    cur.i += 2;
                    continue;
                }
            }
            break;
        }
        e = Expr::Cast(Box::new(e), ty);
    }
    e
}

fn parse_unary(cur: &mut Cur<'_>, depth: usize, structs: bool) -> Expr {
    if depth > MAX_DEPTH {
        cur.bump();
        return Expr::Opaque;
    }
    let Some(t) = cur.peek() else { return Expr::Opaque };
    match &t.kind {
        TokKind::Punct('!') => {
            cur.bump();
            Expr::Unary('!', Box::new(parse_unary(cur, depth + 1, structs)))
        }
        TokKind::Punct('-') => {
            cur.bump();
            Expr::Unary('-', Box::new(parse_unary(cur, depth + 1, structs)))
        }
        TokKind::Punct('*') => {
            cur.bump();
            // Deref is transparent to the domains.
            parse_unary(cur, depth + 1, structs)
        }
        TokKind::Punct('&') => {
            cur.bump();
            cur.eat_punct('&'); // `&&e` double-ref
            let is_mut = cur.at_ident("mut") && cur.bump().is_some();
            Expr::Ref(Box::new(parse_unary(cur, depth + 1, structs)), is_mut)
        }
        _ => parse_postfix(cur, depth, structs),
    }
}

fn parse_postfix(cur: &mut Cur<'_>, depth: usize, structs: bool) -> Expr {
    let mut e = parse_primary(cur, depth, structs);
    loop {
        if cur.at_punct('?') {
            cur.bump();
            e = Expr::Try(Box::new(e));
            continue;
        }
        if cur.at_punct('.') {
            // `..` is a range, not a projection.
            if cur.peek_at(1).is_some_and(|t| t.is_punct('.')) {
                break;
            }
            let Some(nt) = cur.peek_at(1) else { break };
            match &nt.kind {
                TokKind::Ident => {
                    let name = nt.text.clone();
                    if name == "await" {
                        cur.i += 2;
                        continue;
                    }
                    // Turbofish: `.collect::<Vec<_>>()`.
                    let mut j = cur.i + 2;
                    if cur.toks.get(j).is_some_and(|t| t.is_punct(':'))
                        && cur.toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    {
                        j += 2;
                        if cur.toks.get(j).is_some_and(|t| t.is_punct('<')) {
                            let mut angle = 0i32;
                            while j < cur.end {
                                match cur.toks[j].kind {
                                    TokKind::Punct('<') => angle += 1,
                                    TokKind::Punct('>') => {
                                        angle -= 1;
                                        if angle == 0 {
                                            j += 1;
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                j += 1;
                            }
                        }
                    }
                    if cur.toks.get(j).is_some_and(|t| t.is_punct('(')) {
                        let line = nt.line;
                        cur.i = j;
                        let args = parse_args(cur, depth);
                        e = Expr::MethodCall(Box::new(e), name, args, line);
                    } else {
                        cur.i += 2;
                        e = Expr::Field(Box::new(e), name);
                    }
                    continue;
                }
                TokKind::Num => {
                    // Tuple projection `pair.0`; the lexer may glue
                    // `0.0` into one Num for `x.0.0` — take first digit.
                    let idx = nt.text.split('.').next().unwrap_or("0").to_owned();
                    cur.i += 2;
                    e = Expr::Field(Box::new(e), idx);
                    continue;
                }
                _ => break,
            }
        }
        if cur.at_punct('[') {
            // Indexing: value unknown, but evaluate the index for effect.
            cur.skip_group();
            e = Expr::MethodCall(Box::new(e), "__index".into(), Vec::new(), 0);
            continue;
        }
        break;
    }
    e
}

/// Parses a parenthesized argument list (cursor on `(`).
fn parse_args(cur: &mut Cur<'_>, depth: usize) -> Vec<Expr> {
    let close = group_close(cur);
    let mut inner = Cur::new(cur.toks, cur.i + 1, close);
    let mut args = Vec::new();
    while inner.i < inner.end {
        if inner.eat_punct(',') {
            continue;
        }
        let before = inner.i;
        args.push(parse_expr(&mut inner, depth + 1, true));
        // Ensure progress to the next `,` even if the expr parser stalled.
        while inner.i < inner.end && !inner.at_punct(',') {
            if inner.i == before {
                inner.bump();
                break;
            }
            if inner.at_punct('(') || inner.at_punct('{') || inner.at_punct('[') {
                inner.skip_group();
            } else {
                inner.bump();
            }
        }
    }
    cur.i = (close + 1).min(cur.end);
    args
}

fn parse_primary(cur: &mut Cur<'_>, depth: usize, structs: bool) -> Expr {
    let Some(t) = cur.peek() else { return Expr::Opaque };
    match &t.kind {
        TokKind::Num => {
            let v = num_value(&t.text);
            cur.bump();
            match v {
                Some((x, int)) => Expr::Num(x, int),
                None => Expr::Opaque,
            }
        }
        TokKind::Str | TokKind::Char => {
            let text = t.text.clone();
            cur.bump();
            Expr::Str(text)
        }
        TokKind::Lifetime => {
            cur.bump();
            Expr::Opaque
        }
        TokKind::Punct('(') => {
            let close = group_close(cur);
            let mut inner = Cur::new(cur.toks, cur.i + 1, close);
            let mut parts = Vec::new();
            while inner.i < inner.end {
                if inner.eat_punct(',') {
                    continue;
                }
                let before = inner.i;
                parts.push(parse_expr(&mut inner, depth + 1, true));
                while inner.i < inner.end && !inner.at_punct(',') {
                    if inner.i == before {
                        inner.bump();
                        break;
                    }
                    if inner.at_punct('(') || inner.at_punct('{') || inner.at_punct('[') {
                        inner.skip_group();
                    } else {
                        inner.bump();
                    }
                }
            }
            cur.i = (close + 1).min(cur.end);
            match parts.len() {
                0 => Expr::Tuple(Vec::new()),
                1 => parts.pop().unwrap_or(Expr::Opaque),
                _ => Expr::Tuple(parts),
            }
        }
        TokKind::Punct('[') => {
            cur.skip_group();
            Expr::Opaque
        }
        TokKind::Punct('{') => {
            let body = parse_block(cur, depth);
            Expr::IfExpr(Box::new(Expr::Bool(true)), body, Vec::new())
        }
        TokKind::Punct('|') => {
            // Closure `|a, b| body`.
            cur.bump();
            while let Some(t) = cur.peek() {
                if t.is_punct('|') {
                    cur.bump();
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') {
                    cur.skip_group();
                    continue;
                }
                cur.bump();
            }
            if cur.at_punct('-') && cur.peek_at(1).is_some_and(|t| t.is_punct('>')) {
                cur.i += 2;
                skip_type(cur);
            }
            let body = if cur.at_punct('{') {
                parse_block(cur, depth)
            } else {
                vec![Stmt::Tail(parse_expr(cur, depth + 1, structs))]
            };
            Expr::Closure(body)
        }
        TokKind::Ident => parse_ident_primary(cur, depth, structs),
        _ => {
            cur.bump();
            Expr::Opaque
        }
    }
}

fn parse_ident_primary(cur: &mut Cur<'_>, depth: usize, structs: bool) -> Expr {
    let t = cur.peek().expect("checked by caller");
    match t.text.as_str() {
        "true" => {
            cur.bump();
            return Expr::Bool(true);
        }
        "false" => {
            cur.bump();
            return Expr::Bool(false);
        }
        "if" => {
            let (s, _) = parse_if(cur, depth);
            return match s {
                Stmt::If(c, a, b) => Expr::IfExpr(Box::new(c), a, b),
                Stmt::IfLet(_, scrut, a, b) => {
                    let mut then = vec![Stmt::Expr(scrut)];
                    then.extend(a);
                    Expr::IfExpr(Box::new(Expr::Opaque), then, b)
                }
                _ => Expr::Opaque,
            };
        }
        "match" => {
            cur.bump();
            let scrut = parse_expr_no_struct(cur, depth + 1);
            let arms = parse_match_arms(cur, depth);
            return Expr::MatchExpr(Box::new(scrut), arms);
        }
        "loop" | "while" | "for" | "unsafe" | "move" => {
            if t.text == "move" {
                cur.bump();
                return parse_primary(cur, depth, structs);
            }
            if t.text == "unsafe" {
                cur.bump();
                return parse_primary(cur, depth, structs);
            }
            // Loops in expression position: run the statement parser.
            let s = parse_stmt(cur, depth).unwrap_or(Stmt::Opaque);
            return Expr::IfExpr(Box::new(Expr::Bool(true)), vec![s], Vec::new());
        }
        "return" | "break" | "continue" => {
            let s = parse_stmt(cur, depth).unwrap_or(Stmt::Opaque);
            return Expr::IfExpr(Box::new(Expr::Bool(true)), vec![s], Vec::new());
        }
        _ => {}
    }

    // Path: `seg (:: seg)*`, possibly ending in a call, a macro, a
    // struct literal, or a path constant.
    let mut segs = vec![t.text.clone()];
    let line = t.line;
    cur.bump();
    loop {
        if cur.at_punct(':') && cur.peek_at(1).is_some_and(|t| t.is_punct(':')) {
            // Turbofish `::<…>`.
            if cur.peek_at(2).is_some_and(|t| t.is_punct('<')) {
                cur.i += 2;
                let mut angle = 0i32;
                while let Some(t) = cur.peek() {
                    match t.kind {
                        TokKind::Punct('<') => angle += 1,
                        TokKind::Punct('>') => {
                            angle -= 1;
                            if angle == 0 {
                                cur.bump();
                                break;
                            }
                        }
                        _ => {}
                    }
                    cur.bump();
                }
                continue;
            }
            if cur.peek_at(2).is_some_and(|t| t.kind == TokKind::Ident) {
                cur.i += 2;
                segs.push(cur.bump().map(|t| t.text.clone()).unwrap_or_default());
                continue;
            }
        }
        break;
    }
    // Macro call: `name!(…)` / `name![…]` / `name!{…}` — opaque.
    if cur.at_punct('!') {
        cur.bump();
        if cur.at_punct('(') || cur.at_punct('[') || cur.at_punct('{') {
            cur.skip_group();
        }
        return Expr::Opaque;
    }
    let name = segs.last().cloned().unwrap_or_default();
    let qual = if segs.len() >= 2 { segs[segs.len() - 2].clone() } else { String::new() };

    if cur.at_punct('(') {
        let args = parse_args(cur, depth);
        return if segs.len() == 1 {
            Expr::FreeCall(name, args, line)
        } else {
            Expr::PathCall(qual, name, args, line)
        };
    }
    if structs && cur.at_punct('{') && name.chars().next().is_some_and(char::is_uppercase) {
        // Struct literal.
        let end = cur.brace_end();
        let mut inner = Cur::new(cur.toks, cur.i + 1, end);
        let mut fields = Vec::new();
        while inner.i < inner.end {
            if inner.eat_punct(',') {
                continue;
            }
            // `..base` functional update: evaluate base, stop.
            if inner.at_punct('.') && inner.peek_at(1).is_some_and(|t| t.is_punct('.')) {
                inner.i += 2;
                let base = parse_expr(&mut inner, depth + 1, true);
                fields.push(("..".to_owned(), base));
                break;
            }
            let Some(ft) = inner.peek() else { break };
            if ft.kind != TokKind::Ident {
                inner.bump();
                continue;
            }
            let fname = ft.text.clone();
            inner.bump();
            if inner.eat_punct(':') {
                let before = inner.i;
                let v = parse_expr(&mut inner, depth + 1, true);
                fields.push((fname, v));
                while inner.i < inner.end && !inner.at_punct(',') {
                    if inner.i == before {
                        inner.bump();
                        break;
                    }
                    if inner.at_punct('(') || inner.at_punct('{') || inner.at_punct('[') {
                        inner.skip_group();
                    } else {
                        inner.bump();
                    }
                }
            } else {
                // Shorthand `Name { field, … }`.
                let v = Expr::Var(fname.clone());
                fields.push((fname, v));
            }
        }
        cur.i = (end + 1).min(cur.end);
        return Expr::StructLit(name, fields);
    }
    if segs.len() >= 2 {
        // `u64::MAX`, `f64::INFINITY`, `consts::E`, unit variants.
        return Expr::PathConst(qual, name);
    }
    Expr::Var(name)
}

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

/// Taint during summary computation: a bitmask of parameter indices whose
/// taint would flow here, plus (optionally) a concrete witness source
/// introduced inside the function itself.
#[derive(Debug, Clone, Default)]
pub struct TaintAbs {
    /// Bit `i` set ⇒ if the caller's argument `i` is tainted, so is this.
    pub mask: u64,
    /// A taint source reached unconditionally (a wire read in this body,
    /// or a tainted argument substituted at a call site).
    pub src: Option<Provenance>,
}

impl TaintAbs {
    const CLEAN: TaintAbs = TaintAbs { mask: 0, src: None };

    fn param(i: usize) -> TaintAbs {
        TaintAbs { mask: 1u64 << i.min(63), src: None }
    }

    fn source(p: Provenance) -> TaintAbs {
        TaintAbs { mask: 0, src: Some(p) }
    }

    fn is_clean(&self) -> bool {
        self.mask == 0 && self.src.is_none()
    }

    /// Appends a hop to the witness path, if any.
    fn hop(&self, step: &str) -> TaintAbs {
        TaintAbs { mask: self.mask, src: self.src.as_ref().map(|p| p.hop(step)) }
    }
}

impl PartialEq for TaintAbs {
    fn eq(&self, other: &TaintAbs) -> bool {
        // `src` is a witness: compare presence, not the path.
        self.mask == other.mask && self.src.is_some() == other.src.is_some()
    }
}

impl Lattice for TaintAbs {
    fn join(&self, other: &TaintAbs) -> TaintAbs {
        TaintAbs {
            mask: self.mask | other.mask,
            src: self.src.clone().or_else(|| other.src.clone()),
        }
    }

    fn widen(&self, other: &TaintAbs) -> TaintAbs {
        self.join(other)
    }
}

/// The product abstraction both analyses share: an interval with a
/// provenance trail, and a taint level.
#[derive(Debug, Clone, PartialEq)]
pub struct Abs {
    /// Numeric range.
    pub iv: Interval,
    /// Last few definition sites that produced this range (for the
    /// `(range [lo, hi] via …)` rendering).
    pub via: Vec<String>,
    /// Wire taint.
    pub taint: TaintAbs,
}

impl Abs {
    fn top() -> Abs {
        Abs { iv: Interval::TOP, via: Vec::new(), taint: TaintAbs::CLEAN }
    }

    fn num(x: f64, int: bool) -> Abs {
        Abs { iv: Interval::exact(x, int), via: Vec::new(), taint: TaintAbs::CLEAN }
    }

    fn with_iv(iv: Interval) -> Abs {
        Abs { iv, via: Vec::new(), taint: TaintAbs::CLEAN }
    }

    /// Remembers `step` as the most recent definition hop.
    fn via_hop(mut self, step: &str) -> Abs {
        if self.via.last().map(String::as_str) != Some(step) {
            if self.via.len() >= 4 {
                self.via.remove(0);
            }
            self.via.push(step.to_owned());
        }
        self
    }

    fn render_via(&self) -> String {
        if self.via.is_empty() {
            String::new()
        } else {
            format!(" via {}", self.via.join(" → "))
        }
    }
}

impl Lattice for Abs {
    fn join(&self, other: &Abs) -> Abs {
        Abs {
            iv: self.iv.join(&other.iv),
            via: if self.via.is_empty() { other.via.clone() } else { self.via.clone() },
            taint: self.taint.join(&other.taint),
        }
    }

    fn widen(&self, other: &Abs) -> Abs {
        Abs {
            iv: self.iv.widen(&other.iv),
            via: if self.via.is_empty() { other.via.clone() } else { self.via.clone() },
            taint: self.taint.widen(&other.taint),
        }
    }
}

/// An abstract value: a scalar approximation plus (for structs/tuples)
/// per-field refinements. Fields beyond [`MAX_VAL_DEPTH`] collapse.
#[derive(Debug, Clone, PartialEq)]
pub struct Val {
    /// Scalar approximation of the whole value.
    pub abs: Abs,
    /// Known fields (struct field names and tuple indices).
    pub fields: BTreeMap<String, Val>,
}

impl Val {
    fn top() -> Val {
        Val { abs: Abs::top(), fields: BTreeMap::new() }
    }

    fn scalar(abs: Abs) -> Val {
        Val { abs, fields: BTreeMap::new() }
    }

    /// Reads a field: a tracked refinement if present, else a scalar
    /// carrying the parent's taint (fields of a tainted unknown are
    /// tainted; fields of a clean unknown are clean).
    fn field(&self, name: &str) -> Val {
        match self.fields.get(name) {
            Some(v) => v.clone(),
            None => Val::scalar(Abs {
                iv: Interval::TOP,
                via: Vec::new(),
                taint: self.abs.taint.hop(&format!(".{name}")),
            }),
        }
    }

    fn depth(&self) -> usize {
        1 + self.fields.values().map(Val::depth).max().unwrap_or(0)
    }

    fn prune(mut self) -> Val {
        if self.depth() > MAX_VAL_DEPTH {
            self.fields.clear();
        }
        self
    }

    fn merge(&self, other: &Val, widen: bool) -> Val {
        let abs = if widen { self.abs.widen(&other.abs) } else { self.abs.join(&other.abs) };
        // Union of fields: a key present on only one side (e.g. joining two
        // enum arms carrying different payloads) merges against what
        // `field()` would synthesize for the side that lacks it — a top
        // scalar carrying that side's own taint — rather than being dropped
        // and later re-synthesized from the *joined* (coarser) taint.
        let mut fields = BTreeMap::new();
        for (k, a) in &self.fields {
            let b = other.fields.get(k).cloned().unwrap_or_else(|| other.field(k));
            fields.insert(k.clone(), a.merge(&b, widen));
        }
        for (k, b) in &other.fields {
            if !self.fields.contains_key(k) {
                fields.insert(k.clone(), self.field(k).merge(b, widen));
            }
        }
        Val { abs, fields }
    }
}

impl Lattice for Val {
    fn join(&self, other: &Val) -> Val {
        self.merge(other, false)
    }

    fn widen(&self, other: &Val) -> Val {
        self.merge(other, true)
    }
}

/// A variable environment. `None` means "this program point is
/// unreachable" (after `return`/`break`/`continue`).
type Env = Option<BTreeMap<String, Val>>;

fn join_env(a: Env, b: Env, widen: bool) -> Env {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(ea), Some(eb)) => {
            let mut out = BTreeMap::new();
            for (k, va) in &ea {
                if let Some(vb) = eb.get(k) {
                    out.insert(k.clone(), va.merge(vb, widen));
                }
            }
            Some(out)
        }
    }
}

fn env_eq(a: &Env, b: &Env) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(ea), Some(eb)) => ea == eb,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Function summaries
// ---------------------------------------------------------------------------

/// What one function guarantees to its callers.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// The joined value of all `Ok`-classified exits (callers see through
    /// `?`; for non-`Result` functions this is every value exit).
    pub ret: Option<Val>,
    /// Interval facts about parameters that hold whenever the function
    /// returns `Ok` — the contract `check_params(eps, delta)?` exports.
    pub ok_refines: BTreeMap<usize, Interval>,
}

/// Per-function caller context: the join of abstract arguments seen at
/// every observed call site.
#[derive(Debug, Clone, Default)]
struct Ctx {
    args: Vec<Val>,
    /// True once at least one call site contributed.
    observed: bool,
}

// ---------------------------------------------------------------------------
// Findings interface
// ---------------------------------------------------------------------------

/// One raw dataflow finding, keyed by file index (the caller maps it back
/// to a file path and applies suppressions).
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// `"wire-input-taint"` or `"estimator-intervals"`.
    pub taint: bool,
    /// File index into the parsed-file slice.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// Finished message including the reconstructed path.
    pub message: String,
}

/// The dataflow pass's whole-workspace result.
#[derive(Debug, Default)]
pub struct DataflowReport {
    /// Findings for the two new rules.
    pub raw: Vec<RawFinding>,
    /// `(file index, line)` of integer `+`/`*` sites whose result range
    /// provably fits in `u64` — `checked-estimator-math` demotes these.
    pub proven_arith: BTreeSet<(usize, u32)>,
    /// Range annotations for unproven arithmetic sites.
    pub arith_notes: BTreeMap<(usize, u32), String>,
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// JSON accessor methods that read wire values off a `Json` receiver.
const JSON_READS: [&str; 11] = [
    "as_arr", "as_bool", "as_f64", "as_str", "as_u64", "get", "obj", "req_f64", "req_str",
    "req_u64", "req_arr",
];

/// Method/associated-fn names whose first argument sizes an allocation,
/// capacity, or buffer — taint sinks.
const ALLOC_SINKS: [&str; 5] = ["repeat", "reserve", "reserve_exact", "resize", "with_capacity"];

/// std method names [`Walker::builtin_call`] models with a transfer
/// function. When the receiver's type is unknown these take priority over
/// the unique-workspace-method fallback: `eps.min(0.5)` is `f64::min`,
/// not some workspace type's `min`.
const BUILTIN_METHODS: [&str; 30] = [
    "abs",
    "capacity",
    "ceil",
    "clamp",
    "clone",
    "contains",
    "exp",
    "f64_to_u64",
    "floor",
    "is_empty",
    "is_err",
    "is_finite",
    "is_nan",
    "is_none",
    "is_ok",
    "is_some",
    "len",
    "ln",
    "max",
    "min",
    "powf",
    "powi",
    "round",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "sqrt",
    "to_owned",
    "trunc",
    "unwrap_or",
];

/// Probability-valued variable names the range check watches.
fn is_prob_name(name: &str) -> bool {
    name == "p"
        || name == "prob"
        || name == "probability"
        || name.ends_with("_prob")
        || name.ends_with("_probability")
}

/// The value range a declared parameter type admits.
fn type_interval(ty: &str) -> Interval {
    if ty == "f64" || ty == "f32" {
        Interval::TOP
    } else if ty == "u8" {
        Interval { lo: 0.0, hi: u8::MAX as f64, int: true }
    } else if ty == "u16" {
        Interval { lo: 0.0, hi: u16::MAX as f64, int: true }
    } else if ty == "u32" {
        Interval { lo: 0.0, hi: u32::MAX as f64, int: true }
    } else if matches!(ty, "u64" | "u128" | "usize") {
        Interval { lo: 0.0, hi: u64::MAX as f64, int: true }
    } else if INT_TYPES.contains(&ty) {
        Interval { int: true, ..Interval::TOP }
    } else if ty == "bool" {
        Interval { lo: 0.0, hi: 1.0, int: true }
    } else {
        Interval::TOP
    }
}

/// Whole-workspace analysis state shared by every function walk.
pub struct Engine<'a> {
    graph: &'a Graph<'a>,
    toks: &'a [Vec<Tok>],
    /// Registered validator names (`crates/common/src/validate.rs`).
    validators: &'a BTreeSet<String>,
    /// File indices subject to `estimator-intervals` reporting.
    interval_files: BTreeSet<usize>,
    /// File indices where wire reads originate taint (`crates/server`).
    source_files: BTreeSet<usize>,
    /// Extracted bodies, indexed `[file][fn]`.
    bodies: Vec<Vec<Vec<Stmt>>>,
    /// Module/associated consts per file, plus a global fallback map.
    consts: Vec<BTreeMap<String, Val>>,
    global_consts: BTreeMap<String, Val>,
    summaries: BTreeMap<FnId, Summary>,
    ctx: BTreeMap<FnId, Ctx>,
    report: DataflowReport,
    /// `(file, line)` of integer arith sites that could NOT be proven.
    unproven_arith: BTreeSet<(usize, u32)>,
}

/// Runs the dataflow pass over a built call graph. `server_prefix`
/// scopes taint sources, `interval_files` scopes interval reporting.
pub fn analyze(
    graph: &Graph<'_>,
    toks: &[Vec<Tok>],
    validators: &BTreeSet<String>,
    interval_files: &[&str],
    server_prefix: &str,
) -> DataflowReport {
    let mut eng = Engine {
        graph,
        toks,
        validators,
        interval_files: graph
            .files
            .iter()
            .enumerate()
            .filter(|(_, f)| interval_files.contains(&f.rel.as_str()))
            .map(|(i, _)| i)
            .collect(),
        source_files: graph
            .files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.rel.starts_with(server_prefix))
            .map(|(i, _)| i)
            .collect(),
        bodies: Vec::new(),
        consts: Vec::new(),
        global_consts: BTreeMap::new(),
        summaries: BTreeMap::new(),
        ctx: BTreeMap::new(),
        report: DataflowReport::default(),
        unproven_arith: BTreeSet::new(),
    };
    eng.extract_all();
    eng.scan_consts();
    let sccs = eng.sccs();
    // Bottom-up summaries (Tarjan emits callees-first).
    for scc in &sccs {
        let rounds = if scc.len() > 1 { SCC_ITERS } else { 1 };
        for round in 0..rounds {
            let mut changed = false;
            for &id in scc {
                let s = eng.summarize(id, round > 0);
                let prev = eng.summaries.insert(id, s);
                let cur = &eng.summaries[&id];
                changed |= prev.is_none_or(|p| p.ret != cur.ret || p.ok_refines != cur.ok_refines);
            }
            if !changed {
                break;
            }
        }
    }
    // Top-down contexts + reporting (callers-first).
    for scc in sccs.iter().rev() {
        let rounds = if scc.len() > 1 { 2 } else { 1 };
        for round in 0..rounds {
            let report = round == rounds - 1;
            for &id in scc {
                eng.walk_with_ctx(id, report);
            }
        }
    }
    let mut out = std::mem::take(&mut eng.report);
    out.proven_arith = out.proven_arith.difference(&eng.unproven_arith).copied().collect();
    out.raw.sort_by_key(|a| (a.file, a.line, a.taint));
    out.raw.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.taint == b.taint);
    out
}

impl<'a> Engine<'a> {
    fn extract_all(&mut self) {
        for (fi, file) in self.graph.files.iter().enumerate() {
            let mut per_file = Vec::with_capacity(file.fns.len());
            for f in &file.fns {
                let (a, b) = f.body;
                per_file.push(if b > a { extract_body(&self.toks[fi], a, b) } else { Vec::new() });
            }
            self.bodies.push(per_file);
        }
    }

    /// Seeds per-file const environments from `const NAME: T = expr;`
    /// declarations (module-level and associated), so `LAMBDA`-style
    /// constants keep their values in the estimator proofs.
    fn scan_consts(&mut self) {
        for fi in 0..self.graph.files.len() {
            let toks = &self.toks[fi];
            let mut map: BTreeMap<String, Val> = BTreeMap::new();
            let mut i = 0;
            while i < toks.len() {
                if toks[i].is_ident("const")
                    && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                {
                    let name = toks[i + 1].text.clone();
                    let mut j = i + 3;
                    let mut angle = 0i32;
                    while j < toks.len() {
                        match toks[j].kind {
                            TokKind::Punct('<') => angle += 1,
                            TokKind::Punct('>') => angle -= 1,
                            TokKind::Punct('=') if angle <= 0 => break,
                            TokKind::Punct(';') => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|t| t.is_punct('=')) {
                        let mut k = j + 1;
                        let mut depth = 0i32;
                        while k < toks.len() {
                            match toks[k].kind {
                                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                                    depth += 1
                                }
                                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                                    depth -= 1
                                }
                                TokKind::Punct(';') if depth <= 0 => break,
                                _ => {}
                            }
                            k += 1;
                        }
                        let mut cur = Cur::new(toks, j + 1, k);
                        let e = parse_expr(&mut cur, 0, true);
                        // Consts may reference earlier consts in the file.
                        let v = const_eval(&e, &map);
                        map.insert(name.clone(), v.clone());
                        self.global_consts.entry(name).and_modify(|g| *g = g.join(&v)).or_insert(v);
                        i = k;
                        continue;
                    }
                }
                i += 1;
            }
            self.consts.push(map);
        }
    }

    /// All function ids, in (file, index) order.
    fn all_fns(&self) -> Vec<FnId> {
        let mut out = Vec::new();
        for (fi, file) in self.graph.files.iter().enumerate() {
            for i in 0..file.fns.len() {
                out.push((fi, i));
            }
        }
        out
    }

    /// Tarjan's SCC algorithm over the call edges, iterative. Output
    /// order: an SCC is emitted only after every SCC it calls into.
    fn sccs(&self) -> Vec<Vec<FnId>> {
        let fns = self.all_fns();
        let index_of: BTreeMap<FnId, usize> =
            fns.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        let n = fns.len();
        let succs: Vec<Vec<usize>> = fns
            .iter()
            .map(|id| {
                let mut s: Vec<usize> = self.graph.facts[id.0][id.1]
                    .edges
                    .iter()
                    .filter_map(|(callee, _)| index_of.get(callee).copied())
                    .collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<FnId>> = Vec::new();
        // Iterative Tarjan: (node, next-successor-position) frames.
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            frames.push((root, 0));
            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                if *pos == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = succs[v].get(*pos) {
                    *pos += 1;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut scc = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            scc.push(fns[w]);
                            if w == v {
                                break;
                            }
                        }
                        out.push(scc);
                    }
                }
            }
        }
        out
    }

    /// Interprets one function with symbolic parameters and returns its
    /// summary. `widen_prev` joins-with-widening against the previous
    /// round's summary (recursive SCCs).
    fn summarize(&mut self, id: FnId, widen_prev: bool) -> Summary {
        let f = self.graph.fn_item(id);
        let mut env: BTreeMap<String, Val> = BTreeMap::new();
        for (i, name) in f.param_order.iter().enumerate() {
            let ty = f.params.get(name).map(String::as_str).unwrap_or("");
            env.insert(
                name.clone(),
                Val::scalar(Abs {
                    iv: type_interval(ty),
                    via: Vec::new(),
                    taint: TaintAbs::param(i),
                }),
            );
        }
        let mut w = Walker { eng: self, id, report: false, frames: Vec::new(), exits: Vec::new() };
        let body = w.eng.bodies[id.0][id.1].clone();
        let mut e: Env = Some(env);
        let tail = w.exec_stmts(&mut e, &body);
        if let Some(env) = e {
            if let Some((v, is_err)) = tail {
                w.record_exit(&env, v, is_err);
            } else {
                // Implicit unit return.
                w.record_exit(&env, Val::scalar(Abs::num(0.0, true)), false);
            }
        }
        let mut s = w.finish_summary();
        if widen_prev {
            if let Some(prev) = self.summaries.get(&id) {
                if let (Some(a), Some(b)) = (&prev.ret, &s.ret) {
                    s.ret = Some(a.widen(b));
                }
                // Refinements can only be trusted if stable: intersect keys,
                // join (weaken) the intervals.
                let mut merged = BTreeMap::new();
                for (k, iv) in &s.ok_refines {
                    if let Some(p) = prev.ok_refines.get(k) {
                        merged.insert(*k, p.join(iv));
                    }
                }
                s.ok_refines = merged;
            }
        }
        s
    }

    /// Walks one function with its accumulated caller context; collects
    /// callee contexts and (when `report`) findings.
    fn walk_with_ctx(&mut self, id: FnId, report: bool) {
        let f = self.graph.fn_item(id);
        let ctx = self.ctx.get(&id).cloned().unwrap_or_default();
        let mut env: BTreeMap<String, Val> = BTreeMap::new();
        for (i, name) in f.param_order.iter().enumerate() {
            let ty = f.params.get(name).map(String::as_str).unwrap_or("");
            let base = Val::scalar(Abs::with_iv(type_interval(ty)));
            let v = if ctx.observed {
                match ctx.args.get(i) {
                    // Meet with the type range: a caller may pass a
                    // wider-typed expression.
                    Some(cv) => {
                        let mut v = cv.clone();
                        v.abs.iv = v.abs.iv.meet(&type_interval(ty));
                        if v.abs.iv.is_bottom() {
                            v.abs.iv = type_interval(ty);
                        }
                        v
                    }
                    None => base,
                }
            } else {
                base
            };
            env.insert(name.clone(), v);
        }
        let mut w = Walker { eng: self, id, report, frames: Vec::new(), exits: Vec::new() };
        let body = w.eng.bodies[id.0][id.1].clone();
        let mut e: Env = Some(env);
        let _ = w.exec_stmts(&mut e, &body);
    }
}

/// Evaluates a const initializer against previously seen consts — no
/// calls, no control flow, just arithmetic over literals and paths.
fn const_eval(e: &Expr, consts: &BTreeMap<String, Val>) -> Val {
    match e {
        Expr::Num(x, int) => Val::scalar(Abs::num(*x, *int)),
        Expr::Str(_) | Expr::Bool(_) => Val::scalar(Abs::num(0.0, true)),
        Expr::Var(n) => consts.get(n).cloned().unwrap_or_else(Val::top),
        Expr::PathConst(q, n) => match path_const_interval(q, n) {
            Some(iv) => Val::scalar(Abs::with_iv(iv)),
            None => consts.get(n).cloned().unwrap_or_else(Val::top),
        },
        Expr::Unary('-', inner) => {
            let v = const_eval(inner, consts);
            Val::scalar(Abs::with_iv(v.abs.iv.neg()))
        }
        Expr::Bin(op, a, b, _) => {
            let va = const_eval(a, consts).abs.iv;
            let vb = const_eval(b, consts).abs.iv;
            let iv = match op {
                '+' => va.add(&vb),
                '-' => va.sub(&vb),
                '*' => va.mul(&vb),
                '/' => va.div(&vb),
                _ => Interval::TOP,
            };
            Val::scalar(Abs::with_iv(iv))
        }
        Expr::Cast(inner, ty) => {
            let v = const_eval(inner, consts);
            Val::scalar(Abs::with_iv(cast_interval(&v.abs.iv, ty)))
        }
        _ => Val::top(),
    }
}

/// Known `Qual::NAME` path constants.
fn path_const_interval(qual: &str, name: &str) -> Option<Interval> {
    let v = match (qual, name) {
        ("u64" | "usize" | "u128", "MAX") => Interval::exact(u64::MAX as f64, true),
        ("u32", "MAX") => Interval::exact(u32::MAX as f64, true),
        ("u16", "MAX") => Interval::exact(u16::MAX as f64, true),
        ("u8", "MAX") => Interval::exact(u8::MAX as f64, true),
        ("i64" | "isize", "MAX") => Interval::exact(i64::MAX as f64, true),
        ("i32", "MAX") => Interval::exact(i32::MAX as f64, true),
        (_, "MIN") if qual.starts_with('u') => Interval::exact(0.0, true),
        ("f64" | "f32", "INFINITY") => Interval::exact(f64::INFINITY, false),
        ("f64" | "f32", "NEG_INFINITY") => Interval::exact(f64::NEG_INFINITY, false),
        ("f64", "MAX") => Interval::exact(f64::MAX, false),
        ("f64", "MIN_POSITIVE") => Interval::exact(f64::MIN_POSITIVE, false),
        ("f64", "EPSILON") => Interval::exact(f64::EPSILON, false),
        ("consts", "E") => Interval::exact(std::f64::consts::E, false),
        ("consts", "PI") => Interval::exact(std::f64::consts::PI, false),
        ("consts", "LN_2") => Interval::exact(std::f64::consts::LN_2, false),
        ("consts", "SQRT_2") => Interval::exact(std::f64::consts::SQRT_2, false),
        _ => return None,
    };
    Some(v)
}

/// The `e as ty` interval transfer: float→int saturates (Rust 1.45+),
/// int→int wraps only when out of range (then we give up to the target's
/// full range), anything→float keeps bounds.
fn cast_interval(iv: &Interval, ty: &str) -> Interval {
    match ty {
        "f64" | "f32" => Interval { int: false, ..*iv },
        "u64" | "usize" | "u128" => {
            if iv.int && iv.within(0.0, u64::MAX as f64) {
                Interval { int: true, ..*iv }
            } else {
                iv.f64_to_u64()
            }
        }
        "u32" | "u16" | "u8" => {
            let max = match ty {
                "u32" => u32::MAX as f64,
                "u16" => u16::MAX as f64,
                _ => u8::MAX as f64,
            };
            if iv.int && iv.within(0.0, max) {
                Interval { int: true, ..*iv }
            } else if !iv.int {
                // Float source saturates into range.
                Interval {
                    lo: iv.lo.clamp(0.0, max).floor(),
                    hi: iv.hi.clamp(0.0, max).floor(),
                    int: true,
                }
            } else {
                Interval { lo: 0.0, hi: max, int: true }
            }
        }
        t if INT_TYPES.contains(&t) => Interval { int: true, ..Interval::TOP },
        _ => Interval::TOP,
    }
}

/// One active loop: where `break`/`continue` environments accumulate.
struct Frame {
    label: Option<String>,
    breaks: Vec<Env>,
    continues: Vec<Env>,
}

fn widen_env(a: &Env, b: &Env) -> Env {
    match (a, b) {
        (None, x) | (x, None) => x.clone(),
        (Some(ea), Some(eb)) => {
            let mut out = BTreeMap::new();
            for (k, va) in ea {
                if let Some(vb) = eb.get(k) {
                    out.insert(k.clone(), va.widen(vb));
                }
            }
            Some(out)
        }
    }
}

/// Binds a pattern to a value (constructor-transparent for single-field
/// variants, positional for tuples, by-name for struct patterns).
fn bind_pat(env: &mut BTreeMap<String, Val>, pat: &Pat, val: Val) {
    match pat {
        Pat::Wild => {}
        Pat::Bind(n) => {
            env.insert(n.clone(), val);
        }
        Pat::Tuple(ps) => {
            for (i, p) in ps.iter().enumerate() {
                bind_pat(env, p, val.field(&i.to_string()));
            }
        }
        Pat::Variant(_, ps) => {
            if ps.len() == 1 {
                bind_pat(env, &ps[0], val);
            } else {
                for p in ps {
                    match p {
                        // Struct-pattern shorthand: the binding name is
                        // the field name.
                        Pat::Bind(n) => {
                            let fv = val.field(n);
                            env.insert(n.clone(), fv);
                        }
                        _ => {
                            let mut names = Vec::new();
                            p.binds(&mut names);
                            for n in names {
                                env.insert(n, Val::top());
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `expr` syntactically constructs an `Err` — exits carrying one are
/// excluded from the `Ok`-summary.
fn expr_is_err(e: &Expr) -> bool {
    match e {
        Expr::FreeCall(n, _, _) | Expr::PathCall(_, n, _, _) => n == "Err",
        _ => false,
    }
}

/// `expr` as a narrowable place: a variable, possibly with field hops.
fn place_of(e: &Expr) -> Option<(String, Vec<String>)> {
    match e {
        Expr::Var(n) => Some((n.clone(), Vec::new())),
        Expr::Field(base, f) => {
            let (n, mut path) = place_of(base)?;
            path.push(f.clone());
            Some((n, path))
        }
        Expr::Ref(inner, _) | Expr::Try(inner) => place_of(inner),
        _ => None,
    }
}

/// What a call resolved to.
enum Target<'e> {
    Method(&'e Expr, &'e str),
    Path(&'e str, &'e str),
    Free(&'e str),
}

/// Interprets one function body against the engine's global state.
struct Walker<'w, 'a> {
    eng: &'w mut Engine<'a>,
    id: FnId,
    report: bool,
    frames: Vec<Frame>,
    /// `(param intervals at exit, value, is_err)` per value exit.
    exits: Vec<(Vec<Interval>, Val, bool)>,
}

impl<'w, 'a> Walker<'w, 'a> {
    fn item(&self) -> &'a FnItem {
        self.eng.graph.fn_item(self.id)
    }

    fn record_exit(&mut self, env: &BTreeMap<String, Val>, v: Val, is_err: bool) {
        let f = self.item();
        let params: Vec<Interval> =
            f.param_order.iter().map(|n| env.get(n).map_or(Interval::TOP, |v| v.abs.iv)).collect();
        self.exits.push((params, v, is_err));
    }

    fn finish_summary(self) -> Summary {
        let f = self.item();
        let mut ret: Option<Val> = None;
        let mut refines: Option<Vec<Interval>> = None;
        for (params, v, is_err) in &self.exits {
            if *is_err {
                continue;
            }
            ret = Some(match ret {
                None => v.clone().prune(),
                Some(r) => r.join(v).prune(),
            });
            refines = Some(match refines {
                None => params.clone(),
                Some(r) => r.iter().zip(params).map(|(a, b)| a.join(b)).collect(),
            });
        }
        let mut ok_refines = BTreeMap::new();
        if let Some(rs) = refines {
            for (i, iv) in rs.iter().enumerate() {
                let name = match f.param_order.get(i) {
                    Some(n) => n,
                    None => continue,
                };
                let ty = f.params.get(name).map(String::as_str).unwrap_or("");
                let init = type_interval(ty);
                // Export only refinements strictly tighter than the type.
                if !iv.is_bottom() && (iv.lo > init.lo || iv.hi < init.hi) {
                    ok_refines.insert(i, *iv);
                }
            }
        }
        Summary { ret, ok_refines }
    }

    // -- statements --------------------------------------------------------

    fn exec_stmts(&mut self, env: &mut Env, stmts: &[Stmt]) -> Option<(Val, bool)> {
        let mut tail = None;
        for (i, s) in stmts.iter().enumerate() {
            if env.is_none() {
                return None;
            }
            let v = self.exec_stmt(env, s);
            if i == stmts.len() - 1 {
                tail = v;
            }
        }
        if env.is_none() {
            None
        } else {
            tail
        }
    }

    /// Joins branch tail values: non-`Err` branches win; all-`Err` keeps
    /// the `Err` classification.
    fn combine_values(&self, vals: Vec<(Val, bool)>) -> Option<(Val, bool)> {
        if vals.is_empty() {
            return None;
        }
        let ok: Vec<&Val> = vals.iter().filter(|(_, e)| !e).map(|(v, _)| v).collect();
        if ok.is_empty() {
            return Some((Val::top(), true));
        }
        let mut out = ok[0].clone();
        for v in &ok[1..] {
            out = out.join(v);
        }
        Some((out, false))
    }

    fn exec_stmt(&mut self, env: &mut Env, s: &Stmt) -> Option<(Val, bool)> {
        match s {
            Stmt::Opaque => None,
            Stmt::Let(pat, init, line) => {
                let v = match init {
                    Some(e) => self.eval_env(env, e),
                    None => Val::top(),
                };
                if let (Pat::Bind(n), Some(m)) = (pat, env.as_mut()) {
                    let mut v = v;
                    v.abs = v.abs.via_hop(n);
                    v.abs.taint = v.abs.taint.hop(n);
                    self.check_prob(n, &v, *line);
                    m.insert(n.clone(), v);
                } else if let Some(m) = env.as_mut() {
                    bind_pat(m, pat, v);
                }
                None
            }
            Stmt::Assign(name, path, op, e, line) => {
                let rhs = self.eval_env(env, e);
                let m = env.as_mut()?;
                let old = m
                    .get(name)
                    .map(|v| {
                        let mut v = v.clone();
                        for seg in path {
                            v = v.field(seg);
                        }
                        v
                    })
                    .unwrap_or_else(Val::top);
                let mut new = match op {
                    Some(c) => self.binop(*c, &old, &rhs, *line),
                    None => rhs,
                };
                new.abs = new.abs.via_hop(name);
                new.abs.taint = new.abs.taint.hop(name);
                if path.is_empty() {
                    self.check_prob(name, &new, *line);
                }
                let root = env
                    .as_mut()
                    .expect("checked above")
                    .entry(name.clone())
                    .or_insert_with(Val::top);
                let mut cur = root;
                for seg in path {
                    if !cur.fields.contains_key(seg) {
                        let d = cur.field(seg);
                        cur.fields.insert(seg.clone(), d);
                    }
                    cur = cur.fields.get_mut(seg).expect("just inserted");
                }
                *cur = new;
                None
            }
            Stmt::Expr(e) => {
                let _ = self.eval_env(env, e);
                None
            }
            Stmt::Tail(e) => {
                let v = self.eval_env(env, e);
                Some((v, expr_is_err(e)))
            }
            Stmt::If(cond, then, els) => {
                let _ = self.eval_env(env, cond);
                let mut t = self.narrow(env.clone(), cond, true);
                let mut f = self.narrow(env.clone(), cond, false);
                let tv = self.exec_stmts(&mut t, then);
                let fv = self.exec_stmts(&mut f, els);
                let mut vals = Vec::new();
                if t.is_some() {
                    if let Some(v) = tv {
                        vals.push(v);
                    }
                }
                if f.is_some() {
                    if let Some(v) = fv {
                        vals.push(v);
                    }
                }
                *env = join_env(t, f, false);
                self.combine_values(vals)
            }
            Stmt::IfLet(pat, scrut, then, els) => {
                let v = self.eval_env(env, scrut);
                let mut t = env.clone();
                if let Some(m) = t.as_mut() {
                    bind_pat(m, pat, v);
                }
                let mut f = env.clone();
                let tv = self.exec_stmts(&mut t, then);
                let fv = self.exec_stmts(&mut f, els);
                let mut vals = Vec::new();
                if t.is_some() {
                    if let Some(v) = tv {
                        vals.push(v);
                    }
                }
                if f.is_some() {
                    if let Some(v) = fv {
                        vals.push(v);
                    }
                }
                *env = join_env(t, f, false);
                self.combine_values(vals)
            }
            Stmt::Match(scrut, arms) => self.exec_match(env, scrut, arms),
            Stmt::While(label, cond, body, line) => {
                if let Expr::Opaque = cond {
                    // `while let`: body may run any number of times.
                    let (head, _, breaks) =
                        self.loop_fixpoint(env, label.clone(), body, None, None);
                    let mut exit = head;
                    for b in breaks {
                        exit = join_env(exit, b, false);
                    }
                    *env = exit;
                    return None;
                }
                self.check_loop_bound_taint(env, cond, *line);
                let entered = self.cond_truth(env, cond) == Some(true);
                let (head, post, breaks) =
                    self.loop_fixpoint(env, label.clone(), body, Some(cond), None);
                let base = if entered { post } else { head };
                let mut exit = self.narrow(base, cond, false);
                for b in breaks {
                    exit = join_env(exit, b, false);
                }
                *env = exit;
                None
            }
            Stmt::Loop(label, body) => {
                let (_, _, breaks) = self.loop_fixpoint(env, label.clone(), body, None, None);
                let mut exit: Env = None;
                for b in breaks {
                    exit = join_env(exit, b, false);
                }
                *env = exit;
                None
            }
            Stmt::For(pat, iter, body, line) => {
                let elem = match iter {
                    Expr::Range(a, b) => {
                        let va = a.as_ref().map(|e| self.eval_env(env, e));
                        let vb = b.as_ref().map(|e| self.eval_env(env, e));
                        let lo = va.as_ref().map_or(f64::NEG_INFINITY, |v| v.abs.iv.lo);
                        let hi = vb.as_ref().map_or(f64::INFINITY, |v| v.abs.iv.hi);
                        let mut taint = TaintAbs::CLEAN;
                        if let Some(v) = &va {
                            taint = taint.join(&v.abs.taint);
                        }
                        if let Some(v) = &vb {
                            taint = taint.join(&v.abs.taint);
                        }
                        if self.report {
                            if let Some(p) = &taint.src {
                                self.push_taint_finding(
                                    *line,
                                    format!(
                                        "attacker-controlled loop bound: iteration count flows from unvalidated wire input (tainted via {})",
                                        p.render()
                                    ),
                                );
                            }
                        }
                        Val::scalar(Abs { iv: Interval::new(lo, hi, true), via: Vec::new(), taint })
                    }
                    _ => {
                        // Iterating a tainted *collection* is content-bounded
                        // (its size was admitted at parse time); only a
                        // tainted numeric bound — the Range arm above — is a
                        // resource-exhaustion hazard.
                        let v = self.eval_env(env, iter);
                        let _ = line;
                        Val::scalar(Abs {
                            iv: Interval::TOP,
                            via: Vec::new(),
                            taint: v.abs.taint.hop("iter"),
                        })
                    }
                };
                let (head, _, breaks) =
                    self.loop_fixpoint(env, None, body, None, Some((pat, &elem)));
                let mut exit = head;
                for b in breaks {
                    exit = join_env(exit, b, false);
                }
                *env = exit;
                None
            }
            Stmt::Return(e) => {
                let (v, is_err) = match e {
                    Some(e) => (self.eval_env(env, e), expr_is_err(e)),
                    None => (Val::scalar(Abs::num(0.0, true)), false),
                };
                if let Some(m) = env.as_ref() {
                    self.record_exit(&m.clone(), v, is_err);
                }
                *env = None;
                None
            }
            Stmt::Break(label, e) => {
                if let Some(e) = e {
                    let _ = self.eval_env(env, e);
                }
                let snapshot = env.clone();
                if let Some(fr) = self.find_frame(label.as_deref()) {
                    fr.breaks.push(snapshot);
                }
                *env = None;
                None
            }
            Stmt::Continue(label) => {
                let snapshot = env.clone();
                if let Some(fr) = self.find_frame(label.as_deref()) {
                    fr.continues.push(snapshot);
                }
                *env = None;
                None
            }
            Stmt::Block(stmts) => self.exec_stmts(env, stmts),
        }
    }

    fn find_frame(&mut self, label: Option<&str>) -> Option<&mut Frame> {
        match label {
            None => self.frames.last_mut(),
            Some(l) => self.frames.iter_mut().rev().find(|f| f.label.as_deref() == Some(l)),
        }
    }

    fn exec_match(
        &mut self,
        env: &mut Env,
        scrut: &Expr,
        arms: &[(Pat, Vec<Stmt>)],
    ) -> Option<(Val, bool)> {
        let v = self.eval_env(env, scrut);
        let mut joined: Env = None;
        let mut vals = Vec::new();
        for (pat, body) in arms {
            let mut arm_env = env.clone();
            if let Some(m) = arm_env.as_mut() {
                bind_pat(m, pat, v.clone());
            }
            let av = self.exec_stmts(&mut arm_env, body);
            if arm_env.is_some() {
                if let Some(x) = av {
                    vals.push(x);
                }
            }
            joined = join_env(joined, arm_env, false);
        }
        *env = joined;
        self.combine_values(vals)
    }

    fn loop_fixpoint(
        &mut self,
        env0: &Env,
        label: Option<String>,
        body: &[Stmt],
        cond: Option<&Expr>,
        bind: Option<(&Pat, &Val)>,
    ) -> (Env, Env, Vec<Env>) {
        let mut head = env0.clone();
        let mut post: Env = None;
        let mut breaks: Vec<Env> = Vec::new();
        for iter in 0..FIXPOINT_ITERS {
            let mut benv = match cond {
                Some(c) => self.narrow(head.clone(), c, true),
                None => head.clone(),
            };
            if let (Some((p, v)), Some(m)) = (bind, benv.as_mut()) {
                bind_pat(m, p, (*v).clone());
            }
            self.frames.push(Frame {
                label: label.clone(),
                breaks: Vec::new(),
                continues: Vec::new(),
            });
            let _ = self.exec_stmts(&mut benv, body);
            let fr = self.frames.pop().expect("pushed above");
            breaks.extend(fr.breaks);
            let mut back = benv;
            for c in fr.continues {
                back = join_env(back, c, false);
            }
            post = join_env(post, back.clone(), false);
            let joined = join_env(head.clone(), back, false);
            let next = if iter >= 1 { widen_env(&head, &joined) } else { joined };
            if env_eq(&next, &head) {
                head = next;
                break;
            }
            head = next;
        }
        (head, post, breaks)
    }

    fn check_loop_bound_taint(&mut self, env: &mut Env, cond: &Expr, line: u32) {
        if !self.report {
            return;
        }
        let v = self.eval_env(env, cond);
        if let Some(p) = &v.abs.taint.src {
            self.push_taint_finding(
                line,
                format!(
                    "attacker-controlled loop bound: `while` condition flows from unvalidated wire input (tainted via {})",
                    p.render()
                ),
            );
        }
    }

    fn check_prob(&mut self, name: &str, v: &Val, line: u32) {
        if !self.report || !self.eng.interval_files.contains(&self.id.0) {
            return;
        }
        let iv = v.abs.iv;
        if is_prob_name(name) && !iv.is_bottom() && !iv.is_top() && !iv.within(0.0, 1.0) {
            self.push_interval_finding(
                line,
                format!(
                    "probability `{name}` provably escapes [0, 1]: range {}{}",
                    iv.render(),
                    v.abs.render_via()
                ),
            );
        }
    }

    fn push_taint_finding(&mut self, line: u32, message: String) {
        self.eng.report.raw.push(RawFinding { taint: true, file: self.id.0, line, message });
    }

    fn push_interval_finding(&mut self, line: u32, message: String) {
        self.eng.report.raw.push(RawFinding { taint: false, file: self.id.0, line, message });
    }
}

impl<'w, 'a> Walker<'w, 'a> {
    // -- expressions -------------------------------------------------------

    /// Evaluates in an optional env; `None` (unreachable) yields top.
    fn eval_env(&mut self, env: &mut Env, e: &Expr) -> Val {
        match env {
            Some(m) => self.eval(m, e),
            None => Val::top(),
        }
    }

    fn eval(&mut self, env: &mut BTreeMap<String, Val>, e: &Expr) -> Val {
        match e {
            Expr::Opaque => Val::top(),
            Expr::Num(x, int) => Val::scalar(Abs::num(*x, *int)),
            Expr::Str(_) => Val::scalar(Abs::top()),
            Expr::Bool(b) => Val::scalar(Abs::num(if *b { 1.0 } else { 0.0 }, true)),
            Expr::Var(n) => self.lookup(env, n),
            Expr::Field(base, f) => {
                let v = self.eval(env, base);
                v.field(f)
            }
            Expr::Unary('-', inner) => {
                let v = self.eval(env, inner);
                Val::scalar(Abs { iv: v.abs.iv.neg(), via: v.abs.via, taint: v.abs.taint })
            }
            Expr::Unary(_, inner) => {
                let v = self.eval(env, inner);
                Val::scalar(Abs {
                    iv: Interval { lo: 0.0, hi: 1.0, int: true },
                    via: Vec::new(),
                    taint: v.abs.taint,
                })
            }
            Expr::Bin(op, a, b, line) => {
                let va = self.eval(env, a);
                let vb = self.eval(env, b);
                self.binop(*op, &va, &vb, *line)
            }
            Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                let va = self.eval(env, a);
                let vb = self.eval(env, b);
                Val::scalar(Abs {
                    iv: Interval { lo: 0.0, hi: 1.0, int: true },
                    via: Vec::new(),
                    taint: va.abs.taint.join(&vb.abs.taint),
                })
            }
            Expr::MethodCall(recv, name, args, line) => {
                self.eval_call(env, Target::Method(recv, name), args, *line, false)
            }
            Expr::PathCall(qual, name, args, line) => {
                self.eval_call(env, Target::Path(qual, name), args, *line, false)
            }
            Expr::FreeCall(name, args, line) => {
                self.eval_call(env, Target::Free(name), args, *line, false)
            }
            Expr::PathConst(qual, name) => {
                if let Some(iv) = path_const_interval(qual, name) {
                    return Val::scalar(Abs::with_iv(iv));
                }
                if let Some(v) = self.eng.consts[self.id.0].get(name) {
                    return v.clone();
                }
                if let Some(v) = self.eng.global_consts.get(name) {
                    return v.clone();
                }
                Val::top()
            }
            Expr::StructLit(_, fields) => {
                let mut out = Val::top();
                let mut abs = Abs { iv: Interval::TOP, via: Vec::new(), taint: TaintAbs::CLEAN };
                for (name, fe) in fields {
                    let v = self.eval(env, fe);
                    abs.taint = abs.taint.join(&v.abs.taint);
                    if name == ".." {
                        for (k, fv) in &v.fields {
                            out.fields.entry(k.clone()).or_insert_with(|| fv.clone());
                        }
                    } else {
                        out.fields.insert(name.clone(), v);
                    }
                }
                out.abs = abs;
                out.prune()
            }
            Expr::Tuple(parts) => {
                let mut out = Val::top();
                let mut taint = TaintAbs::CLEAN;
                for (i, pe) in parts.iter().enumerate() {
                    let v = self.eval(env, pe);
                    taint = taint.join(&v.abs.taint);
                    out.fields.insert(i.to_string(), v);
                }
                out.abs.taint = taint;
                out.prune()
            }
            Expr::Range(a, b) => {
                let va = a.as_ref().map(|e| self.eval(env, e));
                let vb = b.as_ref().map(|e| self.eval(env, e));
                let lo = va.as_ref().map_or(f64::NEG_INFINITY, |v| v.abs.iv.lo);
                let hi = vb.as_ref().map_or(f64::INFINITY, |v| v.abs.iv.hi);
                let mut taint = TaintAbs::CLEAN;
                if let Some(v) = &va {
                    taint = taint.join(&v.abs.taint);
                }
                if let Some(v) = &vb {
                    taint = taint.join(&v.abs.taint);
                }
                Val::scalar(Abs { iv: Interval::new(lo, hi, true), via: Vec::new(), taint })
            }
            Expr::Cast(inner, ty) => {
                let v = self.eval(env, inner);
                Val {
                    abs: Abs {
                        iv: cast_interval(&v.abs.iv, ty),
                        via: v.abs.via,
                        taint: v.abs.taint,
                    },
                    fields: BTreeMap::new(),
                }
            }
            Expr::Try(inner) => match &**inner {
                Expr::MethodCall(recv, name, args, line) => {
                    self.eval_call(env, Target::Method(recv, name), args, *line, true)
                }
                Expr::PathCall(qual, name, args, line) => {
                    self.eval_call(env, Target::Path(qual, name), args, *line, true)
                }
                Expr::FreeCall(name, args, line) => {
                    self.eval_call(env, Target::Free(name), args, *line, true)
                }
                other => self.eval(env, other),
            },
            Expr::IfExpr(cond, then, els) => {
                let _ = self.eval(env, cond);
                let mut wrapped = Some(env.clone());
                let mut t = self.narrow(wrapped.clone(), cond, true);
                let mut f = self.narrow(wrapped.clone(), cond, false);
                let tv = self.exec_stmts(&mut t, then);
                let fv = self.exec_stmts(&mut f, els);
                let mut vals = Vec::new();
                if t.is_some() {
                    if let Some(v) = tv {
                        vals.push(v);
                    }
                }
                if f.is_some() {
                    if let Some(v) = fv {
                        vals.push(v);
                    }
                }
                wrapped = join_env(t, f, false);
                if let Some(m) = wrapped {
                    *env = m;
                }
                self.combine_values(vals).map_or_else(Val::top, |(v, _)| v)
            }
            Expr::MatchExpr(scrut, arms) => {
                let mut wrapped = Some(env.clone());
                let r = self.exec_match(&mut wrapped, scrut, arms);
                if let Some(m) = wrapped {
                    *env = m;
                }
                r.map_or_else(Val::top, |(v, _)| v)
            }
            Expr::Closure(body) => {
                // Effects (and findings) inside the closure are observed
                // against a copy of the current env; the value is opaque.
                let mut inner = Some(env.clone());
                let _ = self.exec_stmts(&mut inner, body);
                Val::top()
            }
            Expr::Ref(inner, _) => self.eval(env, inner),
        }
    }

    fn lookup(&self, env: &BTreeMap<String, Val>, name: &str) -> Val {
        if let Some(v) = env.get(name) {
            return v.clone();
        }
        if let Some(v) = self.eng.consts[self.id.0].get(name) {
            return v.clone();
        }
        if let Some(v) = self.eng.global_consts.get(name) {
            return v.clone();
        }
        Val::top()
    }

    fn binop(&mut self, op: char, va: &Val, vb: &Val, line: u32) -> Val {
        let a = va.abs.iv;
        let b = vb.abs.iv;
        let iv = match op {
            '+' => a.add(&b),
            '-' => a.sub(&b),
            '*' => a.mul(&b),
            '/' => a.div(&b),
            '%' => {
                if b.strictly_positive() && a.lo >= 0.0 {
                    Interval { lo: 0.0, hi: b.hi, int: a.int && b.int }
                } else {
                    Interval::TOP
                }
            }
            _ => Interval::TOP,
        };
        let in_scope = self.eng.interval_files.contains(&self.id.0);
        if self.report
            && in_scope
            && (op == '/' || op == '%')
            && !b.is_bottom()
            && b.contains_zero()
        {
            self.push_interval_finding(
                line,
                format!(
                    "divisor not provably nonzero: range {}{} — guard the division or bound the divisor away from zero",
                    b.render(),
                    vb.abs.render_via()
                ),
            );
        }
        if self.report && in_scope && (op == '+' || op == '*') && a.int && b.int {
            let key = (self.id.0, line);
            // Strict `<`: `u64::MAX as f64` rounds UP to 2^64, and adding a
            // small term to 2^64 in f64 is absorbed by rounding — `<=` would
            // "prove" 1 + u64::MAX safe. The largest representable f64 below
            // 2^64 is 2^64 − 2048 < u64::MAX, so `<` is sound.
            if !iv.is_bottom() && iv.lo >= 0.0 && iv.hi < u64::MAX as f64 {
                self.eng.report.proven_arith.insert(key);
            } else {
                self.eng.unproven_arith.insert(key);
                self.eng.report.arith_notes.entry(key).or_insert_with(|| {
                    format!("operand ranges {} {op} {}", a.render(), b.render())
                });
            }
        }
        Val::scalar(Abs {
            iv,
            via: if va.abs.via.is_empty() { vb.abs.via.clone() } else { va.abs.via.clone() },
            taint: va.abs.taint.join(&vb.abs.taint),
        })
    }

    // -- calls -------------------------------------------------------------

    fn eval_call(
        &mut self,
        env: &mut BTreeMap<String, Val>,
        target: Target<'_>,
        arg_exprs: &[Expr],
        line: u32,
        try_mode: bool,
    ) -> Val {
        let recv = match &target {
            Target::Method(r, _) => Some(self.eval(env, r)),
            _ => None,
        };
        let args: Vec<Val> = arg_exprs.iter().map(|e| self.eval(env, e)).collect();
        let name = match &target {
            Target::Method(_, n) => *n,
            Target::Path(_, n) | Target::Free(n) => *n,
        };

        // Taint sinks fire regardless of how the callee resolves.
        if self.report && ALLOC_SINKS.contains(&name) {
            if let Some(p) = args.first().and_then(|v| v.abs.taint.src.as_ref()) {
                self.push_taint_finding(
                    line,
                    format!(
                        "attacker-controlled allocation size reaches `{name}` (tainted via {})",
                        p.render()
                    ),
                );
            }
        }

        // Resolve workspace callees.
        let f = self.item();
        let candidates: Vec<FnId> = match &target {
            Target::Method(recv_expr, name) => {
                let ty = match &**recv_expr {
                    Expr::Var(v) if v == "self" => f.self_ty.clone(),
                    Expr::Var(v) => self.eng.graph.var_type(f, v),
                    _ => None,
                };
                match ty {
                    Some(t) => self.eng.graph.method_candidates(&t, name),
                    // Unknown receiver type: a unique workspace method of
                    // that name is almost certainly the callee — unless the
                    // name collides with a std method we model (`min`,
                    // `len`, …), where the builtin transfer is the safer
                    // reading.
                    None if !BUILTIN_METHODS.contains(name) => {
                        let by_name =
                            self.eng.graph.by_method_name.get(*name).cloned().unwrap_or_default();
                        if by_name.len() == 1 {
                            by_name
                        } else {
                            Vec::new()
                        }
                    }
                    None => Vec::new(),
                }
            }
            Target::Path(qual, name) => {
                let qual_ty: &str =
                    if *qual == "Self" { f.self_ty.as_deref().unwrap_or(qual) } else { qual };
                let mut ids =
                    self.eng.graph.methods.get(&(qual_ty, *name)).cloned().unwrap_or_default();
                if ids.is_empty() {
                    ids = self.eng.graph.free_fns.get(*name).cloned().unwrap_or_default();
                }
                ids
            }
            Target::Free(name) => self.eng.graph.free_fns.get(*name).cloned().unwrap_or_default(),
        };

        let mut result = if !candidates.is_empty() {
            let mut out: Option<Val> = None;
            for id in &candidates {
                let callee_name = self.eng.graph.display(*id);
                // Contribute this call's arguments to the callee context.
                let entry = self.eng.ctx.entry(*id).or_default();
                entry.observed = true;
                for (i, av) in args.iter().enumerate() {
                    let mut hopped = av.clone();
                    hopped.abs.taint = hopped.abs.taint.hop(&callee_name);
                    match entry.args.get_mut(i) {
                        Some(slot) => *slot = slot.join(&hopped),
                        None => {
                            while entry.args.len() < i {
                                entry.args.push(Val::top());
                            }
                            entry.args.push(hopped);
                        }
                    }
                }
                let summary = self.eng.summaries.get(id).cloned().unwrap_or_default();
                let ret =
                    summary.ret.map(|r| subst_ret(r, &args, &callee_name)).unwrap_or_else(Val::top);
                out = Some(match out {
                    None => ret,
                    Some(o) => o.join(&ret),
                });
                if try_mode && candidates.len() == 1 {
                    for (i, iv) in &summary.ok_refines {
                        if let Some(Expr::Var(vn)) = arg_exprs.get(*i) {
                            if let Some(slot) = env.get_mut(vn) {
                                let met = slot.abs.iv.meet(iv);
                                if !met.is_bottom() {
                                    slot.abs.iv = met;
                                }
                            }
                        }
                    }
                }
            }
            out.unwrap_or_else(Val::top).via_hop_named(name)
        } else {
            self.builtin_call(name, recv.as_ref(), &args, arg_exprs)
        };

        // Wire-read taint sources (server files only).
        if self.eng.source_files.contains(&self.id.0) {
            let is_parse = matches!(&target, Target::Path(q, n) if *q == "Json" && *n == "parse");
            let accessor = matches!(&target, Target::Method(_, _)) && JSON_READS.contains(&name);
            if is_parse {
                result.abs.taint = TaintAbs::source(Provenance::new("Json::parse"));
            } else if accessor {
                let recv_tainted = recv.as_ref().is_some_and(|r| !r.abs.taint.is_clean());
                let recv_json = match &target {
                    Target::Method(recv_expr, _) => match &**recv_expr {
                        Expr::Var(v) if v == "self" => f.self_ty.as_deref() == Some("Json"),
                        Expr::Var(v) => self.eng.graph.var_type(f, v).as_deref() == Some("Json"),
                        _ => false,
                    },
                    _ => false,
                };
                if recv_tainted || recv_json || name.starts_with("req_") {
                    let key = arg_exprs.iter().find_map(|e| match e {
                        Expr::Str(s) => Some(s.clone()),
                        _ => None,
                    });
                    let label = match key {
                        Some(k) => format!("{name}(\"{k}\")"),
                        None => format!("{name}(..)"),
                    };
                    result.abs.taint = TaintAbs::source(Provenance::new(label));
                }
            }
        }

        // A registered validator's return value is sanitized by contract.
        if self.eng.validators.contains(name) {
            strip_taint(&mut result);
        }

        // `&mut` arguments: the callee may have replaced the value.
        for ae in arg_exprs {
            if let Expr::Ref(inner, true) = ae {
                if let Some((vn, path)) = place_of(inner) {
                    if path.is_empty() {
                        if let Some(slot) = env.get_mut(&vn) {
                            let ty = self.eng.graph.var_type(f, &vn).unwrap_or_default();
                            let old_taint = slot.abs.taint.clone();
                            *slot = Val::scalar(Abs {
                                iv: type_interval(&ty),
                                via: Vec::new(),
                                taint: old_taint,
                            });
                        }
                    }
                }
            }
        }
        result
    }

    /// Transfer functions for std / well-known methods when no workspace
    /// function matched.
    fn builtin_call(
        &mut self,
        name: &str,
        recv: Option<&Val>,
        args: &[Val],
        _arg_exprs: &[Expr],
    ) -> Val {
        let r = recv.map(|v| v.abs.iv).unwrap_or(Interval::TOP);
        let a0 = args.first().map(|v| v.abs.iv).unwrap_or(Interval::TOP);
        let mut taint = recv.map(|v| v.abs.taint.clone()).unwrap_or(TaintAbs::CLEAN);
        for a in args {
            taint = taint.join(&a.abs.taint);
        }
        // Enum/newtype constructors (`Ok`, `Some`, `Request::Query`, …):
        // pass the payload through whole so its fields and per-field taint
        // survive the wrap — the matching variant pattern unwraps it again.
        if name.starts_with(|c: char| c.is_ascii_uppercase()) && args.len() == 1 && recv.is_none() {
            return args[0].clone();
        }
        let iv = match name {
            "sqrt" => r.sqrt(),
            "ln" => r.ln(),
            "ceil" => r.ceil(),
            "floor" => r.floor(),
            "round" | "trunc" => r.floor().join(&r.ceil()),
            "abs" => r.abs(),
            "exp" => {
                let lo = if r.lo == f64::NEG_INFINITY { 0.0 } else { r.lo.exp() };
                let hi = if r.hi == f64::INFINITY { f64::INFINITY } else { r.hi.exp() };
                Interval::new(lo.max(0.0), hi, false)
            }
            "min" => r.min_op(&a0),
            "max" => r.max_op(&a0),
            "clamp" => {
                let a1 = args.get(1).map(|v| v.abs.iv).unwrap_or(Interval::TOP);
                Interval { lo: a0.lo, hi: a1.hi, int: r.int && a0.int && a1.int }
            }
            "saturating_add" => r.saturating_add(&a0),
            "saturating_sub" => r.saturating_sub(&a0),
            "saturating_mul" => r.mul(&a0).clamp_u64(),
            "f64_to_u64" => a0.f64_to_u64(),
            "len" | "capacity" => {
                // Documented policy: a collection's *length* is treated as
                // clean — taint tracks content-to-size amplification, and
                // lengths of already-admitted payloads are bounded by the
                // framing limits the server enforces.
                return Val::scalar(Abs {
                    iv: Interval { lo: 0.0, hi: u64::MAX as f64, int: true },
                    via: Vec::new(),
                    taint: TaintAbs::CLEAN,
                });
            }
            "is_finite" | "is_nan" | "is_empty" | "contains" | "is_some" | "is_none" | "is_ok"
            | "is_err" | "starts_with" | "ends_with" => Interval { lo: 0.0, hi: 1.0, int: true },
            "powi" | "powf" => {
                if r.strictly_positive() {
                    Interval { lo: f64::MIN_POSITIVE, hi: f64::INFINITY, int: false }
                } else {
                    Interval::TOP
                }
            }
            "unwrap" | "expect" | "clone" | "copied" | "cloned" | "to_owned" | "into" => {
                // Structure-preserving: pass the receiver through whole.
                if let Some(v) = recv {
                    return v.clone();
                }
                Interval::TOP
            }
            "unwrap_or" | "unwrap_or_default" | "unwrap_or_else" => {
                if let (Some(rv), Some(av)) = (recv, args.first()) {
                    return rv.join(av);
                }
                r.join(&a0)
            }
            "ok_or" | "ok_or_else" | "ok" | "as_ref" | "as_deref" | "copied_ref" => {
                if let Some(v) = recv {
                    return v.clone();
                }
                Interval::TOP
            }
            "and_then" | "map" | "map_err" | "filter" | "take" | "skip" | "rev" | "iter"
            | "enumerate" | "zip" | "chain" | "collect" | "sum" | "product" | "count" => {
                Interval::TOP
            }
            _ => Interval::TOP,
        };
        Val::scalar(Abs { iv, via: Vec::new(), taint: taint.hop(&format!(".{name}")) })
    }

    // -- condition narrowing ----------------------------------------------

    fn narrow(&mut self, env: Env, cond: &Expr, truth: bool) -> Env {
        let mut m = env?;
        self.narrow_into(&mut m, cond, truth);
        // A refinement that emptied some interval proves the condition can
        // never take this truth value here: the branch is unreachable.
        if m.values().any(val_has_bottom) {
            return None;
        }
        Some(m)
    }

    fn narrow_into(&mut self, env: &mut BTreeMap<String, Val>, cond: &Expr, truth: bool) {
        match cond {
            Expr::Unary('!', inner) => self.narrow_into(env, inner, !truth),
            Expr::And(a, b) if truth => {
                self.narrow_into(env, a, true);
                self.narrow_into(env, b, true);
            }
            Expr::Or(a, b) if !truth => {
                self.narrow_into(env, a, false);
                self.narrow_into(env, b, false);
            }
            Expr::Cmp(a, op, b) => {
                if let Some((name, path)) = place_of(a) {
                    let k = self.eval(env, b).abs.iv;
                    apply_cmp(env, &name, &path, if truth { *op } else { op.negate() }, k);
                }
                if let Some((name, path)) = place_of(b) {
                    let k = self.eval(env, a).abs.iv;
                    apply_cmp(
                        env,
                        &name,
                        &path,
                        if truth { op.flip() } else { op.flip().negate() },
                        k,
                    );
                }
            }
            Expr::MethodCall(recv, mname, _, _) if mname == "is_finite" && truth => {
                if let Some((name, path)) = place_of(recv) {
                    refine_place(env, &name, &path, |iv| {
                        let met = iv.meet(&Interval::new(-f64::MAX, f64::MAX, iv.int));
                        if met.is_bottom() {
                            iv
                        } else {
                            met
                        }
                    });
                }
            }
            _ => {}
        }
    }

    /// Definite truth of a condition under the current environment.
    fn cond_truth(&mut self, env: &mut Env, cond: &Expr) -> Option<bool> {
        let m = env.as_mut()?;
        self.cond_truth_in(m, cond)
    }

    fn cond_truth_in(&mut self, env: &mut BTreeMap<String, Val>, cond: &Expr) -> Option<bool> {
        match cond {
            Expr::Bool(b) => Some(*b),
            Expr::Unary('!', inner) => self.cond_truth_in(env, inner).map(|b| !b),
            Expr::And(a, b) => match (self.cond_truth_in(env, a), self.cond_truth_in(env, b)) {
                (Some(true), Some(true)) => Some(true),
                (Some(false), _) | (_, Some(false)) => Some(false),
                _ => None,
            },
            Expr::Or(a, b) => match (self.cond_truth_in(env, a), self.cond_truth_in(env, b)) {
                (Some(false), Some(false)) => Some(false),
                (Some(true), _) | (_, Some(true)) => Some(true),
                _ => None,
            },
            Expr::Cmp(a, op, b) => {
                let ia = self.eval(env, a).abs.iv;
                let ib = self.eval(env, b).abs.iv;
                if ia.is_bottom() || ib.is_bottom() || ia.is_top() || ib.is_top() {
                    return None;
                }
                match op {
                    CmpOp::Lt => {
                        if ia.hi < ib.lo {
                            Some(true)
                        } else if ia.lo >= ib.hi {
                            Some(false)
                        } else {
                            None
                        }
                    }
                    CmpOp::Le => {
                        if ia.hi <= ib.lo {
                            Some(true)
                        } else if ia.lo > ib.hi {
                            Some(false)
                        } else {
                            None
                        }
                    }
                    CmpOp::Gt => {
                        if ia.lo > ib.hi {
                            Some(true)
                        } else if ia.hi <= ib.lo {
                            Some(false)
                        } else {
                            None
                        }
                    }
                    CmpOp::Ge => {
                        if ia.lo >= ib.hi {
                            Some(true)
                        } else if ia.hi < ib.lo {
                            Some(false)
                        } else {
                            None
                        }
                    }
                    CmpOp::Eq | CmpOp::Ne => None,
                }
            }
            _ => None,
        }
    }
}

/// Substitutes caller arguments into a callee summary's return value:
/// parameter-mask taint becomes the matching argument's taint, hopped
/// through the callee's name.
fn subst_ret(mut ret: Val, args: &[Val], callee: &str) -> Val {
    fn subst_abs(a: &mut Abs, args: &[Val], callee: &str) {
        let mut t = match &a.taint.src {
            Some(p) => TaintAbs::source(p.hop(callee)),
            None => TaintAbs::CLEAN,
        };
        for (i, arg) in args.iter().enumerate() {
            if i < 64 && a.taint.mask & (1 << i) != 0 {
                t = t.join(&arg.abs.taint.hop(callee));
            }
        }
        a.taint = t;
    }
    fn walk(v: &mut Val, args: &[Val], callee: &str) {
        subst_abs(&mut v.abs, args, callee);
        for f in v.fields.values_mut() {
            walk(f, args, callee);
        }
    }
    walk(&mut ret, args, callee);
    ret
}

/// Recursively clears taint (a registered validator's contract).
fn strip_taint(v: &mut Val) {
    v.abs.taint = TaintAbs::CLEAN;
    for f in v.fields.values_mut() {
        strip_taint(f);
    }
}

impl Val {
    /// Appends a call-boundary hop to the range provenance.
    fn via_hop_named(mut self, name: &str) -> Val {
        self.abs = self.abs.via_hop(&format!("{name}()"));
        self
    }
}

/// Applies `place <op> k` to the environment.
fn apply_cmp(env: &mut BTreeMap<String, Val>, name: &str, path: &[String], op: CmpOp, k: Interval) {
    if k.is_bottom() {
        return;
    }
    refine_place(env, name, path, |iv| {
        let mut out = iv;
        match op {
            CmpOp::Lt => {
                let bound = if iv.int { k.hi.ceil() - 1.0 } else { k.hi };
                out.hi = out.hi.min(bound);
            }
            CmpOp::Le => out.hi = out.hi.min(k.hi),
            CmpOp::Gt => {
                let bound = if iv.int {
                    k.lo.floor() + 1.0
                } else if k.lo == 0.0 {
                    f64::MIN_POSITIVE
                } else {
                    k.lo
                };
                out.lo = out.lo.max(bound);
            }
            CmpOp::Ge => out.lo = out.lo.max(k.lo),
            CmpOp::Eq => out = out.meet(&k),
            CmpOp::Ne => {
                if k.lo == 0.0 && k.hi == 0.0 && out.lo >= 0.0 {
                    out.lo = out.lo.max(if out.int { 1.0 } else { f64::MIN_POSITIVE });
                }
            }
        }
        out
    });
}

/// True when the value (or any nested field) has an empty interval —
/// the witness that a narrowing was contradictory.
fn val_has_bottom(v: &Val) -> bool {
    v.abs.iv.is_bottom() || v.fields.values().any(val_has_bottom)
}

/// Applies `f` to the interval stored at `name(.path)*`.
fn refine_place(
    env: &mut BTreeMap<String, Val>,
    name: &str,
    path: &[String],
    f: impl FnOnce(Interval) -> Interval,
) {
    let Some(root) = env.get_mut(name) else { return };
    let mut cur = root;
    for seg in path {
        if !cur.fields.contains_key(seg) {
            let d = cur.field(seg);
            cur.fields.insert(seg.clone(), d);
        }
        cur = cur.fields.get_mut(seg).expect("just inserted");
    }
    cur.abs.iv = f(cur.abs.iv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::ParsedFile;
    use crate::{lexer, parser};

    struct Case {
        files: Vec<ParsedFile>,
        toks: Vec<Vec<Tok>>,
    }

    fn build(files: &[(&str, &str)]) -> Case {
        let mut parsed = Vec::new();
        let mut toks = Vec::new();
        for (rel, src) in files {
            let lexed = lexer::lex(src);
            let stripped = lexer::strip_cfg_test(&lexed.toks);
            parsed.push(parser::parse_file(rel, &stripped));
            toks.push(stripped);
        }
        Case { files: parsed, toks }
    }

    fn run(case: &Case, validators: &[&str], interval_files: &[&str]) -> DataflowReport {
        let graph = Graph::build(&case.files);
        let v: BTreeSet<String> = validators.iter().map(|s| s.to_string()).collect();
        analyze(&graph, &case.toks, &v, interval_files, "srv/")
    }

    fn messages(r: &DataflowReport) -> Vec<&str> {
        r.raw.iter().map(|f| f.message.as_str()).collect()
    }

    #[test]
    fn counting_loop_exit_is_bounded_below() {
        let case = build(&[(
            "est.rs",
            "fn f() -> f64 { \
           let mut trials = 0u64; \
           loop { trials = trials.saturating_add(1); if trials > 2 { break; } } \
           1.0 / trials as f64 \
         }",
        )]);
        let r = run(&case, &[], &["est.rs"]);
        assert!(messages(&r).is_empty(), "counting loop: {:?}", messages(&r));
    }

    #[test]
    fn labeled_break_env_is_narrowed_by_guard() {
        let case = build(&[(
            "est.rs",
            "fn f() -> f64 { \
           let mut trials = 0u64; \
           'outer: loop { \
             loop { if trials > 0 { break 'outer; } break; } \
             trials = trials.saturating_add(1); \
           } \
           1.0 / trials as f64 \
         }",
        )]);
        let r = run(&case, &[], &["est.rs"]);
        assert!(messages(&r).is_empty(), "labeled break: {:?}", messages(&r));
    }

    #[test]
    fn nested_budget_loop_proves_trials_positive() {
        let case = build(&[(
            "est.rs",
            "fn f(budget: u64) -> f64 { \
           let mut steps = 0u64; \
           let mut trials = 0u64; \
           'outer: loop { \
             loop { \
               steps = steps.saturating_add(1); \
               if steps > budget && trials > 0 { break 'outer; } \
               if steps == 3 { break; } \
             } \
             trials = trials.saturating_add(1); \
           } \
           1.0 / trials as f64 \
         }",
        )]);
        let r = run(&case, &[], &["est.rs"]);
        assert!(messages(&r).is_empty(), "{:?}", messages(&r));
    }

    #[test]
    fn taint_reaches_alloc_sink_with_path() {
        let case = build(&[(
            "srv/handler.rs",
            "fn handle(msg: &Json) { \
               let n = msg.req_u64(\"rows\"); \
               let mut buf: Vec<u8> = Vec::with_capacity(n as usize); \
               buf.clear(); \
             }",
        )]);
        let r = run(&case, &[], &[]);
        let msgs = messages(&r);
        assert!(
            msgs.iter().any(|m| m.contains("with_capacity") && m.contains("req_u64(\"rows\")")),
            "expected alloc-sink finding with provenance, got {msgs:?}"
        );
    }

    #[test]
    fn validator_clears_taint() {
        let case = build(&[(
            "srv/handler.rs",
            "fn handle(msg: &Json) { \
               let n = capped_u64(msg.req_u64(\"rows\"), 4096); \
               let mut buf: Vec<u8> = Vec::with_capacity(n as usize); \
               buf.clear(); \
             }",
        )]);
        let r = run(&case, &["capped_u64"], &[]);
        assert!(messages(&r).is_empty(), "validator should sanitize: {:?}", messages(&r));
    }

    #[test]
    fn taint_flows_interprocedurally_through_helper() {
        let case = build(&[(
            "srv/handler.rs",
            "fn read_count(msg: &Json) -> u64 { msg.req_u64(\"n\") } \
             fn handle(msg: &Json) { \
               let n = read_count(msg); \
               let mut buf: Vec<u8> = Vec::with_capacity(n as usize); \
               buf.clear(); \
             }",
        )]);
        let r = run(&case, &[], &[]);
        let msgs = messages(&r);
        assert!(
            msgs.iter().any(|m| m.contains("read_count") && m.contains("with_capacity")),
            "expected interprocedural path through read_count, got {msgs:?}"
        );
    }

    #[test]
    fn tainted_while_bound_is_flagged() {
        let case = build(&[(
            "srv/handler.rs",
            "fn handle(msg: &Json) { \
               let n = msg.req_u64(\"iters\"); \
               let mut i = 0u64; \
               while i < n { i += 1; } \
             }",
        )]);
        let r = run(&case, &[], &[]);
        assert!(
            messages(&r).iter().any(|m| m.contains("loop bound")),
            "expected loop-bound finding, got {:?}",
            messages(&r)
        );
    }

    #[test]
    fn division_guarded_by_zero_check_is_clean() {
        let case = build(&[(
            "est.rs",
            "fn mean(total: f64, n: u64) -> f64 { \
               if n == 0 { return 0.0; } \
               total / n as f64 \
             }",
        )]);
        let r = run(&case, &[], &["est.rs"]);
        assert!(messages(&r).is_empty(), "guarded division flagged: {:?}", messages(&r));
    }

    #[test]
    fn unguarded_division_is_flagged_with_range() {
        let case = build(&[("est.rs", "fn mean(total: f64, n: u64) -> f64 { total / n as f64 }")]);
        let r = run(&case, &[], &["est.rs"]);
        assert!(
            messages(&r).iter().any(|m| m.contains("divisor") && m.contains("range")),
            "expected divisor finding, got {:?}",
            messages(&r)
        );
    }

    #[test]
    fn probability_escape_is_flagged() {
        let case = build(&[("est.rs", "fn bad() -> f64 { let p = 1.5; p }")]);
        let r = run(&case, &[], &["est.rs"]);
        assert!(
            messages(&r).iter().any(|m| m.contains("escapes [0, 1]")),
            "expected probability finding, got {:?}",
            messages(&r)
        );
    }

    #[test]
    fn clamped_probability_is_clean() {
        let case = build(&[("est.rs", "fn good(x: f64) -> f64 { let p = x.clamp(0.0, 1.0); p }")]);
        let r = run(&case, &[], &["est.rs"]);
        assert!(messages(&r).is_empty(), "clamped probability flagged: {:?}", messages(&r));
    }

    #[test]
    fn bounded_add_is_proven() {
        let case = build(&[("est.rs", "fn f(n: u32) -> u64 { let k = n as u64 + 1; k }")]);
        let r = run(&case, &[], &["est.rs"]);
        assert!(!r.proven_arith.is_empty(), "expected + on bounded u32 range to be proven");
        assert!(r.arith_notes.is_empty(), "no unproven notes expected: {:?}", r.arith_notes);
    }

    #[test]
    fn unbounded_add_is_not_proven() {
        let case = build(&[("est.rs", "fn f(a: u64, b: u64) -> u64 { let k = a + b; k }")]);
        let r = run(&case, &[], &["est.rs"]);
        assert!(r.proven_arith.is_empty());
        assert!(!r.arith_notes.is_empty(), "expected an operand-range note");
    }

    #[test]
    fn ok_refinement_propagates_through_question_mark() {
        // check(eps)? proves eps > 0 afterward, so 1.0 / eps is safe.
        let case = build(&[(
            "est.rs",
            "fn check(eps: f64) -> Result<(), String> { \
               if !(eps > 0.0) { return Err(String::new()); } \
               Ok(()) \
             } \
             fn run(eps: f64) -> Result<f64, String> { \
               check(eps)?; \
               Ok(1.0 / eps) \
             }",
        )]);
        let r = run(&case, &[], &["est.rs"]);
        assert!(messages(&r).is_empty(), "ok_refines should prove the divisor: {:?}", messages(&r));
    }

    #[test]
    fn widening_terminates_on_counting_loop() {
        let case = build(&[(
            "est.rs",
            "fn f() -> u64 { \
               let mut i = 0u64; \
               let mut total = 0u64; \
               while i < 10 { total = total.saturating_add(2); i += 1; } \
               total \
             }",
        )]);
        let r = run(&case, &[], &["est.rs"]);
        assert!(messages(&r).is_empty(), "saturating loop flagged: {:?}", messages(&r));
    }

    #[test]
    fn struct_field_taint_tracks_through_literal() {
        let case = build(&[(
            "srv/handler.rs",
            "struct Plan { n: u64 } \
             fn handle(msg: &Json) { \
               let plan = Plan { n: msg.req_u64(\"n\") }; \
               let mut buf: Vec<u8> = Vec::with_capacity(plan.n as usize); \
               buf.clear(); \
             }",
        )]);
        let r = run(&case, &[], &[]);
        assert!(
            messages(&r).iter().any(|m| m.contains("with_capacity")),
            "struct-field taint lost: {:?}",
            messages(&r)
        );
    }

    #[test]
    fn non_server_files_have_no_taint_sources() {
        let case = build(&[(
            "core/engine.rs",
            "fn local(msg: &Json) { \
               let n = msg.req_u64(\"rows\"); \
               let mut buf: Vec<u8> = Vec::with_capacity(n as usize); \
               buf.clear(); \
             }",
        )]);
        let r = run(&case, &[], &[]);
        assert!(messages(&r).is_empty(), "non-server read tainted: {:?}", messages(&r));
    }
}
