//! A conservative workspace call graph over [`crate::parser`] output.
//!
//! Resolution is name- and type-directed, never sound in the
//! rustc sense but safe for linting because every ambiguity widens the
//! graph instead of narrowing it:
//!
//! - A method call whose receiver type is known resolves to that type's
//!   inherent methods; if the type is a trait (a generic bound or `dyn`),
//!   to every workspace `impl` of the trait plus its default methods.
//! - A method call whose receiver type is *unknown* resolves to the union
//!   of all same-named workspace methods — unless the name is a std
//!   panic/alloc method (`unwrap`, `clone`, …), which is taken as the std
//!   effect directly. That keeps workspace methods that happen to share a
//!   std name (`Parser::expect`, the JSON reader's `self.expect(b'"')`)
//!   from being misread as `Option::expect`, while an `.unwrap()` on an
//!   arbitrary expression still counts as a panic site.
//! - A free call on a known *binding* (param, `let`, `for` pattern) is a
//!   closure or fn-pointer invocation the graph cannot see through: an
//!   **opaque call**, surfaced to the rules instead of silently dropped.
//!
//! Three blind spots have been closed since PR 5: a closure bound to a
//! local and invoked in the same body is resolved (its calls are
//! attributed to the enclosing fn), `?` edges into every workspace `From`
//! impl (the desugared `From::from` on the error path), and every local,
//! parameter, or guard binding whose type has a workspace `Drop` impl now
//! synthesizes an implicit `T::drop` edge at its scope end, so
//! panic/alloc/lockflow reachability sees destructors. The remaining
//! blind spots are documented in `docs/ANALYSIS.md`: operator overloads
//! and calls through closure *values* built in one function and invoked
//! in another.

use crate::parser::{Call, FnItem, ParsedFile, Receiver};
use std::collections::{BTreeMap, VecDeque};

/// Identifies a function as (file index, fn index) into the parsed set.
pub type FnId = (usize, usize);

/// A reachability seed: a function, optionally restricted to inclusive
/// line ranges (the marked hot-path regions).
pub type Seed = (FnId, Option<Vec<(u32, u32)>>);

/// Methods on std types that panic on bad input. Only consulted when the
/// receiver does not resolve to a workspace method of the same name.
const STD_PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Methods on std types that allocate. Same consultation rule.
const STD_ALLOC_METHODS: [&str; 14] = [
    "clone",
    "to_string",
    "to_owned",
    "to_vec",
    "collect",
    "push",
    "push_str",
    "insert",
    "extend",
    "reserve",
    "repeat",
    "join",
    "concat",
    "into_boxed_slice",
];

/// Method names so dominated by std containers/iterators that an
/// *unknown*-receiver call is assumed to be the std one (pure) rather than
/// unioned over same-named workspace methods. Without this, every
/// `foo().iter()` in the workspace would edge into e.g. the criterion
/// shim's `Bencher::iter`. Known-receiver calls still resolve to workspace
/// methods of these names.
const STD_PURE_METHODS: [&str; 20] = [
    "iter",
    "iter_mut",
    "into_iter",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "next",
    "first",
    "last",
    "contains",
    "contains_key",
    "keys",
    "values",
    "as_str",
    "as_bytes",
    "map",
    "min",
    "max",
    "trim",
];

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// Std owner types whose constructors allocate (`Vec::with_capacity`, …).
const ALLOC_TYPES: [&str; 6] = ["Vec", "Box", "String", "BTreeMap", "HashMap", "VecDeque"];
const ALLOC_CTORS: [&str; 4] = ["new", "from", "with_capacity", "from_iter"];

/// The workspace's seeded RNG type and its root constructors. `fork` is
/// the sanctioned derivation and is not listed.
pub const RNG_TYPE: &str = "Mt64";
pub const RNG_ROOT_CTORS: [&str; 2] = ["new", "from_key"];

/// One effect site inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    pub line: u32,
    /// What the site does, e.g. "`.unwrap()`" or "`format!`".
    pub what: String,
}

/// Per-function analysis facts.
#[derive(Debug, Default)]
pub struct FnFacts {
    /// Workspace callees, with the call line (used to restrict seed
    /// traversal to a marked region).
    pub edges: Vec<(FnId, u32)>,
    /// Sites that can panic (std methods and panic macros).
    pub panics: Vec<Site>,
    /// Sites that allocate (std methods, macros, constructors).
    pub allocs: Vec<Site>,
    /// Free calls through bindings — dynamic dispatch the graph cannot
    /// resolve.
    pub opaques: Vec<Site>,
    /// Root-RNG constructions (`Mt64::new` / `Mt64::from_key`).
    pub rng_ctors: Vec<Site>,
    /// Sites that block the calling thread (channel recv, `join()`,
    /// file/socket I/O, `sleep`) after call-graph filtering: a candidate
    /// that resolves to a non-shim workspace method is an ordinary edge.
    pub blocking: Vec<Site>,
}

/// The workspace call graph plus per-function facts.
pub struct Graph<'a> {
    pub files: &'a [ParsedFile],
    /// facts[file][fn], parallel to `files[_].fns`.
    pub facts: Vec<Vec<FnFacts>>,
    /// Merged struct field tables: type name → field → type.
    pub(crate) structs: BTreeMap<&'a str, BTreeMap<&'a str, &'a str>>,
    /// (self type, method name) → candidate fns.
    pub(crate) methods: BTreeMap<(&'a str, &'a str), Vec<FnId>>,
    /// method name → every fn with a self type of that name.
    pub(crate) by_method_name: BTreeMap<&'a str, Vec<FnId>>,
    /// free fn name → candidate fns.
    pub(crate) free_fns: BTreeMap<&'a str, Vec<FnId>>,
    /// trait name → self types implementing it.
    pub(crate) trait_impls: BTreeMap<&'a str, Vec<&'a str>>,
}

impl<'a> Graph<'a> {
    /// Builds the graph and computes per-function facts.
    pub fn build(files: &'a [ParsedFile]) -> Graph<'a> {
        let mut g = Graph {
            files,
            facts: Vec::new(),
            structs: BTreeMap::new(),
            methods: BTreeMap::new(),
            by_method_name: BTreeMap::new(),
            free_fns: BTreeMap::new(),
            trait_impls: BTreeMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            for (name, fields) in &file.structs {
                let slot = g.structs.entry(name).or_default();
                for (fname, fty) in fields {
                    slot.insert(fname, fty);
                }
            }
            for (ni, f) in file.fns.iter().enumerate() {
                let id = (fi, ni);
                match &f.self_ty {
                    Some(ty) => {
                        g.methods.entry((ty, &f.name)).or_default().push(id);
                        g.by_method_name.entry(&f.name).or_default().push(id);
                    }
                    None => g.free_fns.entry(&f.name).or_default().push(id),
                }
                if let (Some(tr), Some(ty)) = (&f.trait_name, &f.self_ty) {
                    if tr != ty {
                        let impls = g.trait_impls.entry(tr).or_default();
                        if !impls.contains(&ty.as_str()) {
                            impls.push(ty);
                        }
                    }
                }
            }
        }
        let facts: Vec<Vec<FnFacts>> = files
            .iter()
            .enumerate()
            .map(|(fi, file)| file.fns.iter().map(|f| g.fn_facts(fi, f)).collect())
            .collect();
        g.facts = facts;
        g
    }

    pub fn fn_item(&self, id: FnId) -> &'a FnItem {
        &self.files[id.0].fns[id.1]
    }

    /// `Type::method` display name for messages.
    pub fn display(&self, id: FnId) -> String {
        let f = self.fn_item(id);
        match &f.self_ty {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Walks `start.f1.f2…` through the merged struct tables.
    fn walk_fields(&self, start: &str, fields: &[String]) -> Option<&'a str> {
        let mut ty: &str = self.structs.get(start).map(|_| start)?;
        let mut out: Option<&'a str> = None;
        for fld in fields {
            let next = *self.structs.get(ty)?.get(fld.as_str())?;
            out = Some(next);
            ty = next;
        }
        out
    }

    /// The terminal type of a variable in `f`, if recoverable. Generic
    /// params resolve to their first trait bound.
    pub(crate) fn var_type(&self, f: &FnItem, name: &str) -> Option<String> {
        let base = f.params.get(name).or_else(|| f.locals.get(name)).cloned().or_else(|| {
            let chain = f.local_chains.get(name)?;
            let ty = f.self_ty.as_deref()?;
            self.walk_fields(ty, &chain[1..]).map(str::to_owned)
        })?;
        // `s: S` with `S: Sampler` → the bound is the usable type.
        Some(f.generics.get(&base).cloned().unwrap_or(base))
    }

    /// The receiver's terminal type, if recoverable.
    pub(crate) fn receiver_type(&self, f: &FnItem, recv: &Receiver) -> Option<String> {
        match recv {
            Receiver::SelfChain(fields) => {
                let ty = f.self_ty.as_deref()?;
                if fields.is_empty() {
                    Some(ty.to_owned())
                } else {
                    self.walk_fields(ty, fields).map(str::to_owned)
                }
            }
            Receiver::Var(v, fields) => {
                let base = self.var_type(f, v)?;
                if fields.is_empty() {
                    Some(base)
                } else {
                    self.walk_fields(&base, fields).map(str::to_owned)
                }
            }
            Receiver::Unknown => None,
        }
    }

    /// Workspace candidates for `ty::name`: inherent methods, trait
    /// defaults, and — when `ty` is a trait — every impl's method.
    pub(crate) fn method_candidates(&self, ty: &str, name: &str) -> Vec<FnId> {
        let mut out: Vec<FnId> = self.methods.get(&(ty, name)).cloned().unwrap_or_default();
        if let Some(impls) = self.trait_impls.get(ty) {
            for imp in impls {
                if let Some(ids) = self.methods.get(&(imp, name)) {
                    out.extend(ids.iter().copied());
                }
            }
        }
        out
    }

    /// Computes the facts for one function body.
    fn fn_facts(&self, _fi: usize, f: &FnItem) -> FnFacts {
        let mut facts = FnFacts::default();
        for call in &f.calls {
            match call {
                Call::Macro { name, line } => {
                    if PANIC_MACROS.contains(&name.as_str()) {
                        facts.panics.push(Site { line: *line, what: format!("{name}!") });
                    } else if ALLOC_MACROS.contains(&name.as_str()) {
                        facts.allocs.push(Site { line: *line, what: format!("{name}!") });
                    }
                }
                Call::Method { name, recv, line } => {
                    let cands = match self.receiver_type(f, recv) {
                        Some(ty) => self.method_candidates(&ty, name),
                        // Unknown receiver: std effect/pure names win (see
                        // the module docs), otherwise union over all
                        // same-named workspace methods.
                        None if STD_PANIC_METHODS.contains(&name.as_str())
                            || STD_ALLOC_METHODS.contains(&name.as_str())
                            || STD_PURE_METHODS.contains(&name.as_str()) =>
                        {
                            Vec::new()
                        }
                        None => self.by_method_name.get(name.as_str()).cloned().unwrap_or_default(),
                    };
                    if !cands.is_empty() {
                        facts.edges.extend(cands.into_iter().map(|id| (id, *line)));
                    } else if STD_PANIC_METHODS.contains(&name.as_str()) {
                        facts.panics.push(Site { line: *line, what: format!(".{name}()") });
                    } else if STD_ALLOC_METHODS.contains(&name.as_str()) {
                        facts.allocs.push(Site { line: *line, what: format!(".{name}()") });
                    }
                }
                Call::Path { qualifier, name, line } => {
                    let q: &str = match qualifier.as_str() {
                        "Self" => f.self_ty.as_deref().unwrap_or("Self"),
                        q => q,
                    };
                    if q == RNG_TYPE
                        && RNG_ROOT_CTORS.contains(&name.as_str())
                        && f.self_ty.as_deref() != Some(RNG_TYPE)
                    {
                        facts.rng_ctors.push(Site { line: *line, what: format!("{q}::{name}") });
                    }
                    let cands = self.method_candidates(q, name);
                    if !cands.is_empty() {
                        facts.edges.extend(cands.into_iter().map(|id| (id, *line)));
                    } else if ALLOC_TYPES.contains(&q) && ALLOC_CTORS.contains(&name.as_str()) {
                        facts.allocs.push(Site { line: *line, what: format!("{q}::{name}") });
                    } else if let Some(ids) = self.free_fns.get(name.as_str()) {
                        // Module-qualified free fn (`cqa_query::parse(…)`).
                        facts.edges.extend(ids.iter().map(|id| (*id, *line)));
                    }
                }
                Call::Free { name, line } => {
                    if f.closure_bindings.contains(name.as_str()) {
                        // `let cb = |…| …; cb();` — the closure literal was
                        // built in this very body, so its calls are already
                        // attributed to this fn: the invocation is
                        // resolved, not opaque.
                    } else if f.bindings.contains(name.as_str()) {
                        facts.opaques.push(Site { line: *line, what: format!("{name}(…)") });
                    } else if let Some(ids) = self.free_fns.get(name.as_str()) {
                        facts.edges.extend(ids.iter().map(|id| (*id, *line)));
                    }
                    // Anything else (`Some(…)`, `Ok(…)`, std free fns,
                    // tuple-struct literals) is assumed effect-free.
                }
            }
        }
        // `?` desugars to `From::from` on the error path: edge into every
        // workspace `From` impl. The concrete error type is not recoverable
        // from tokens, so this fans out conservatively, like every other
        // ambiguity.
        if !f.question_lines.is_empty() {
            let from_ids = self.method_candidates("From", "from");
            for &line in &f.question_lines {
                facts.edges.extend(from_ids.iter().map(|id| (*id, line)));
            }
        }
        // Thread-blocking candidates (pre-filtered by shape in the parser).
        // A receiver resolving to a non-shim workspace method of the same
        // name is an ordinary call; everything else — std
        // (`JoinHandle::join`), a shim primitive (crossbeam's
        // `Receiver::recv`), or an unresolvable receiver — really blocks.
        for call in &f.blocking_sites {
            match call {
                Call::Method { name, recv, line } => {
                    let ws = self
                        .receiver_type(f, recv)
                        .map(|ty| self.method_candidates(&ty, name))
                        .unwrap_or_default();
                    if !ws.iter().any(|id| !self.files[id.0].rel.starts_with("shims/")) {
                        facts.blocking.push(Site { line: *line, what: format!(".{name}()") });
                    }
                }
                Call::Path { qualifier, name, line } => {
                    facts.blocking.push(Site { line: *line, what: format!("{qualifier}::{name}") });
                }
                Call::Free { name, line } => {
                    if !f.bindings.contains(name.as_str()) {
                        facts.blocking.push(Site { line: *line, what: format!("{name}(…)") });
                    }
                }
                Call::Macro { .. } => {}
            }
        }
        // Implicit destructors: a local, parameter, or lock-guard binding
        // whose type has a workspace `Drop` impl runs `T::drop` when its
        // scope (or guard span) ends. The token scan cannot see that call,
        // so synthesize the edge here — this is what lets
        // panic/alloc/lockflow reachability into destructor bodies.
        if f.end_line > 0 {
            let mut drop_sites: Vec<(String, u32)> = Vec::new();
            for ty in f.params.values().chain(f.locals.values()) {
                drop_sites.push((ty.clone(), f.end_line));
            }
            for span in &f.lock_spans {
                // `span.lock` roots in a receiver chain; when it roots in a
                // local variable the root's type may carry a workspace guard
                // with a `Drop` impl.
                if span.local {
                    let root = span.lock.split(['.', '(']).next().unwrap_or_default().to_string();
                    if let Some(ty) = self.var_type(f, &root) {
                        drop_sites.push((ty, span.end_line));
                    }
                }
            }
            for (ty, line) in drop_sites {
                if let Some(ids) = self.methods.get(&(ty.as_str(), "drop")) {
                    for id in ids.clone() {
                        if self.fn_item(id).trait_name.as_deref() == Some("Drop") {
                            facts.edges.push((id, line));
                        }
                    }
                }
            }
        }
        facts
    }

    /// BFS over the graph from `seeds`. A seed may carry line ranges: its
    /// own edges (and direct effects, which the caller checks) only count
    /// when the call line falls inside one of the ranges; transitively
    /// reached functions count in full. Returns reached fn → parent (seeds
    /// map to themselves), for path reconstruction.
    pub fn reach(&self, seeds: &[Seed]) -> BTreeMap<FnId, FnId> {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        let in_ranges = |ranges: &Option<Vec<(u32, u32)>>, line: u32| match ranges {
            None => true,
            Some(rs) => rs.iter().any(|(a, b)| (*a..=*b).contains(&line)),
        };
        for (id, ranges) in seeds {
            parent.entry(*id).or_insert(*id);
            for (callee, line) in &self.facts[id.0][id.1].edges {
                if in_ranges(ranges, *line) && !parent.contains_key(callee) {
                    parent.insert(*callee, *id);
                    queue.push_back(*callee);
                }
            }
        }
        while let Some(id) = queue.pop_front() {
            for (callee, _) in &self.facts[id.0][id.1].edges {
                if !parent.contains_key(callee) {
                    parent.insert(*callee, id);
                    queue.push_back(*callee);
                }
            }
        }
        parent
    }

    /// Human-readable call path from a seed to `id`, e.g.
    /// "handle_line → run_query → resolve".
    pub fn path_to(&self, parent: &BTreeMap<FnId, FnId>, id: FnId) -> String {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
            if chain.len() > 24 {
                break; // defensive: a cycle in the parent map
            }
        }
        chain.reverse();
        chain.iter().map(|&n| self.display(n)).collect::<Vec<_>>().join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer, parser};

    fn build(files: &[(&str, &str)]) -> Vec<ParsedFile> {
        files
            .iter()
            .map(|(rel, src)| {
                let lexed = lexer::lex(src);
                parser::parse_file(rel, &lexer::strip_cfg_test(&lexed.toks))
            })
            .collect()
    }

    fn id_of(g: &Graph<'_>, name: &str) -> FnId {
        for (fi, file) in g.files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                if f.name == name {
                    return (fi, ni);
                }
            }
        }
        panic!("no fn {name}");
    }

    #[test]
    fn cross_file_panic_is_reachable() {
        let files = build(&[
            ("a.rs", "pub fn entry(x: Option<u32>) -> u32 { helper(x) }"),
            ("b.rs", "pub fn helper(x: Option<u32>) -> u32 { x.unwrap() }"),
        ]);
        let g = Graph::build(&files);
        let seeds = vec![(id_of(&g, "entry"), None)];
        let reached = g.reach(&seeds);
        let h = id_of(&g, "helper");
        assert!(reached.contains_key(&h));
        assert_eq!(g.facts[h.0][h.1].panics.len(), 1);
        assert_eq!(g.path_to(&reached, h), "entry → helper");
    }

    #[test]
    fn field_typed_receiver_resolves_to_workspace_method() {
        let files = build(&[(
            "a.rs",
            "struct Pair; impl Pair { fn go(&self) { other(); } } \
             struct S { pair: Pair } \
             impl S { fn run(&self) { self.pair.go(); } } \
             fn other() {}",
        )]);
        let g = Graph::build(&files);
        let reached = g.reach(&[(id_of(&g, "run"), None)]);
        assert!(reached.contains_key(&id_of(&g, "go")));
        assert!(reached.contains_key(&id_of(&g, "other")));
    }

    #[test]
    fn implicit_drop_edge_reaches_destructor_body() {
        // No explicit call to `drop` anywhere: the edge is synthesized at
        // `entry`'s scope end because a local's type has a workspace
        // `Drop` impl, and reachability continues into the destructor.
        let files = build(&[(
            "a.rs",
            "struct Guard; \
             impl Drop for Guard { fn drop(&mut self) { cleanup(); } } \
             fn cleanup() {} \
             fn entry() { let g: Guard = make(); use_it(&g); } \
             fn make() -> Guard { Guard } \
             fn use_it(_g: &Guard) {}",
        )]);
        let g = Graph::build(&files);
        let reached = g.reach(&[(id_of(&g, "entry"), None)]);
        assert!(reached.contains_key(&id_of(&g, "drop")), "implicit Drop edge missing");
        assert!(reached.contains_key(&id_of(&g, "cleanup")), "destructor body not traversed");
    }

    #[test]
    fn inherent_drop_method_is_not_an_implicit_edge() {
        // Only a `Drop` *trait* impl runs at scope end; an inherent method
        // that happens to be named `drop` must not be pulled in.
        let files = build(&[(
            "a.rs",
            "struct Plain; \
             impl Plain { fn drop(&mut self) { never_runs(); } } \
             fn never_runs() {} \
             fn entry() { let p: Plain = make(); use_it(&p); } \
             fn make() -> Plain { Plain } \
             fn use_it(_p: &Plain) {}",
        )]);
        let g = Graph::build(&files);
        let reached = g.reach(&[(id_of(&g, "entry"), None)]);
        assert!(!reached.contains_key(&id_of(&g, "never_runs")), "inherent drop pulled in");
    }

    #[test]
    fn workspace_expect_is_not_a_std_panic() {
        // `self.expect(…)` resolves to the workspace method; the panic
        // inside it is still found transitively, but the call site itself
        // is an edge, not a panic effect.
        let files = build(&[(
            "a.rs",
            "struct P; impl P { fn expect(&self, b: u8) {} fn parse(&self) { self.expect(1); } }",
        )]);
        let g = Graph::build(&files);
        let p = id_of(&g, "parse");
        assert!(g.facts[p.0][p.1].panics.is_empty());
        assert_eq!(g.facts[p.0][p.1].edges.len(), 1);
    }

    #[test]
    fn unknown_receiver_unwrap_is_a_panic_site() {
        let files = build(&[("a.rs", "fn f() { foo().unwrap(); }")]);
        let g = Graph::build(&files);
        let f = id_of(&g, "f");
        assert_eq!(g.facts[f.0][f.1].panics.len(), 1);
    }

    #[test]
    fn generic_bound_resolves_to_all_impls() {
        let files = build(&[(
            "a.rs",
            "trait Sampler { fn sample(&mut self); } \
             struct A; impl Sampler for A { fn sample(&mut self) { alloc_it(); } } \
             struct B; impl Sampler for B { fn sample(&mut self) {} } \
             fn drive<S: Sampler>(s: &mut S) { s.sample(); } \
             fn alloc_it() { let _v = Vec::with_capacity(8); }",
        )]);
        let g = Graph::build(&files);
        let reached = g.reach(&[(id_of(&g, "drive"), None)]);
        let a = id_of(&g, "alloc_it");
        assert!(reached.contains_key(&a), "impl A's body must be reachable through the bound");
        assert_eq!(g.facts[a.0][a.1].allocs.len(), 1);
    }

    #[test]
    fn binding_call_is_opaque() {
        let files = build(&[("a.rs", "fn pump(rx: Receiver) { for job in rx.iter() { job(); } }")]);
        let g = Graph::build(&files);
        let f = id_of(&g, "pump");
        assert_eq!(g.facts[f.0][f.1].opaques.len(), 1);
        assert!(g.facts[f.0][f.1].opaques[0].what.contains("job"));
    }

    #[test]
    fn region_restricted_seed_only_follows_in_region_edges() {
        let files = build(&[(
            "a.rs",
            "fn seed() {\n  cold();\n  hot();\n}\nfn cold() { x.unwrap(); }\nfn hot() {}",
        )]);
        let g = Graph::build(&files);
        // Only line 3 (`hot()`) is inside the region.
        let reached = g.reach(&[(id_of(&g, "seed"), Some(vec![(3, 3)]))]);
        assert!(reached.contains_key(&id_of(&g, "hot")));
        assert!(!reached.contains_key(&id_of(&g, "cold")));
    }

    #[test]
    fn same_fn_closure_is_resolved_not_opaque() {
        let files =
            build(&[("a.rs", "fn f() { let cb = |x: u32| go(x); cb(1); } fn go(x: u32) {}")]);
        let g = Graph::build(&files);
        let f = id_of(&g, "f");
        assert!(g.facts[f.0][f.1].opaques.is_empty(), "{:?}", g.facts[f.0][f.1].opaques);
        // The closure body's call to `go` is attributed to `f`.
        assert!(g.reach(&[(f, None)]).contains_key(&id_of(&g, "go")));
    }

    #[test]
    fn question_mark_edges_into_workspace_from_impls() {
        let files = build(&[(
            "a.rs",
            "fn f(s: &str) -> Result<u32, E> { let v = inner(s)?; Ok(v) }\n\
             fn inner(s: &str) -> Result<u32, X> { Ok(1) }\n\
             struct E; struct X;\n\
             impl From<X> for E { fn from(x: X) -> E { panic!(\"conv\") } }",
        )]);
        let g = Graph::build(&files);
        let reached = g.reach(&[(id_of(&g, "f"), None)]);
        let from = id_of(&g, "from");
        assert!(reached.contains_key(&from), "? must edge into From impls");
        assert_eq!(g.facts[from.0][from.1].panics.len(), 1);
    }

    #[test]
    fn blocking_sites_survive_only_without_a_workspace_resolution() {
        let files = build(&[
            (
                "a.rs",
                "struct Q; impl Q { fn recv(&self) {} }\n\
                 fn ours(q: &Q) { q.recv(); }\n\
                 fn std_join(h: JoinHandle) { h.join(); }",
            ),
            (
                "shims/x/src/lib.rs",
                "struct Rx; impl Rx { fn recv(&self) {} } fn sh(r: &Rx) { r.recv(); }",
            ),
        ]);
        let g = Graph::build(&files);
        let ours = id_of(&g, "ours");
        assert!(g.facts[ours.0][ours.1].blocking.is_empty(), "resolved to workspace Q::recv");
        let j = id_of(&g, "std_join");
        assert_eq!(g.facts[j.0][j.1].blocking.len(), 1);
        // A receiver resolving only into a shim still blocks: the shim is
        // the primitive layer, not workspace code.
        let sh = id_of(&g, "sh");
        assert_eq!(g.facts[sh.0][sh.1].blocking.len(), 1);
    }

    #[test]
    fn rng_root_ctor_is_recorded_outside_impl_mt64() {
        let files = build(&[(
            "a.rs",
            "fn bad(seed: u64) { let _r = Mt64::new(seed); } \
             struct Mt64; impl Mt64 { fn new(s: u64) -> Mt64 { Mt64 } \
             fn fork(&mut self) -> Mt64 { Mt64::from_key(0) } fn from_key(k: u64) -> Mt64 { Mt64 } }",
        )]);
        let g = Graph::build(&files);
        let b = id_of(&g, "bad");
        assert_eq!(g.facts[b.0][b.1].rng_ctors.len(), 1);
        let fork = id_of(&g, "fork");
        assert!(g.facts[fork.0][fork.1].rng_ctors.is_empty(), "fork derivation is sanctioned");
    }
}
