//! SARIF 2.1.0 serialization of lint findings.
//!
//! Hand-rolled (the linter has zero non-std dependencies): the output is
//! the minimal static-analysis interchange document CI annotation
//! tooling consumes — one `run` with a `tool.driver` listing every rule
//! as a `reportingDescriptor`, and one `result` per finding carrying the
//! rule id, message, and physical location. Findings with line 0
//! (whole-file findings such as a missing doc entry) omit the `region`,
//! which SARIF permits.

use crate::rules::{Finding, ALL_RULES};

/// Serializes findings as a single-run SARIF 2.1.0 document.
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::with_capacity(2048 + findings.len() * 256);
    out.push_str(concat!(
        "{\n",
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/",
        "Schemata/sarif-schema-2.1.0.json\",\n",
        "  \"version\": \"2.1.0\",\n",
        "  \"runs\": [\n",
        "    {\n",
        "      \"tool\": {\n",
        "        \"driver\": {\n",
        "          \"name\": \"cqa-lint\",\n",
        "          \"informationUri\": \"docs/ANALYSIS.md\",\n",
        "          \"rules\": [\n"
    ));
    for (i, rule) in ALL_RULES.iter().enumerate() {
        out.push_str("            {\"id\": ");
        push_json_string(&mut out, rule);
        out.push('}');
        if i + 1 < ALL_RULES.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(concat!("          ]\n", "        }\n", "      },\n", "      \"results\": [\n"));
    for (i, f) in findings.iter().enumerate() {
        out.push_str("        {\"ruleId\": ");
        push_json_string(&mut out, f.rule);
        out.push_str(", \"level\": \"error\", \"message\": {\"text\": ");
        push_json_string(&mut out, &f.message);
        out.push_str("}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": ");
        push_json_string(&mut out, &f.file);
        out.push('}');
        if f.line > 0 {
            out.push_str(&format!(", \"region\": {{\"startLine\": {}}}", f.line));
        }
        out.push_str("}}]}");
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Appends `s` as a JSON string literal (RFC 8259 escaping; findings carry
/// arbitrary source identifiers and → arrows, so non-ASCII passes through
/// as UTF-8 while control characters are escaped).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32, message: &str) -> Finding {
        Finding { rule, file: file.to_owned(), line, message: message.to_owned() }
    }

    #[test]
    fn document_shape_and_escaping() {
        let doc = to_sarif(&[finding(
            crate::rules::WIRE_TAINT,
            "crates/server/src/protocol.rs",
            42,
            "tainted via a → b with \"quotes\"\nand newline",
        )]);
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"ruleId\": \"wire-input-taint\""));
        assert!(doc.contains("\"startLine\": 42"));
        assert!(doc.contains("\\\"quotes\\\""));
        assert!(doc.contains("\\n"));
        assert!(doc.contains("a → b"));
        // Every rule is declared so annotation tooling can resolve ruleId.
        for rule in ALL_RULES {
            assert!(doc.contains(&format!("{{\"id\": \"{rule}\"}}")), "{rule}");
        }
    }

    #[test]
    fn line_zero_omits_region() {
        let doc = to_sarif(&[finding(crate::rules::PROTOCOL_SYNC, "docs/PROTOCOL.md", 0, "m")]);
        assert!(!doc.contains("startLine"));
    }

    #[test]
    fn empty_findings_is_valid_empty_results() {
        let doc = to_sarif(&[]);
        assert!(doc.contains("\"results\": [\n      ]"));
    }
}
