//! End-to-end tests of the `cqa-lint` binary itself: a broken workspace
//! must produce exit code 2 with a clear diagnostic on stderr — never a
//! panic — and a garbled-but-readable source file must still lint, not
//! crash the parser.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A fresh scratch workspace with just the four name registries (the
/// minimum `check_workspace` refuses to run without) and one demo crate
/// planting the registered fault point.
fn scratch_workspace(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("cqa-lint-cli-{}-{name}", std::process::id()));
    if root.exists() {
        std::fs::remove_dir_all(&root).unwrap();
    }
    let write = |rel: &str, body: &[u8]| {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, body).unwrap();
    };
    write(
        "crates/obs/src/names.rs",
        b"pub const SPANS: &[&str] = &[\"demo/work\"];\n\
          pub const METRICS: &[&str] = &[\"demo_total\"];\n\
          pub const FIELDS: &[&str] = &[\"request_id\"];\n",
    );
    write("crates/perf/src/names.rs", b"pub const SERIES: &[&str] = &[\"demo/build_ns\"];\n");
    write("crates/chaos/src/points.rs", b"pub const POINTS: &[&str] = &[\"demo/parse\"];\n");
    write(
        "crates/common/src/validate.rs",
        b"pub const VALIDATORS: &[&str] = &[\"capped_u64\"];\n\
          pub fn capped_u64(x: u64, cap: u64) -> u64 { x.min(cap) }\n",
    );
    write("crates/demo/src/lib.rs", b"pub fn work() {\n    fault_point!(\"demo/parse\");\n}\n");
    root
}

fn run_check(root: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cqa-lint"))
        .args(["check", "--root"])
        .arg(root)
        .output()
        .expect("spawn cqa-lint")
}

#[test]
fn scratch_workspace_lints_clean() {
    // Baseline: the harness itself is valid, so the failures below are
    // attributable to the breakage each test introduces.
    let root = scratch_workspace("clean");
    let out = run_check(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("workspace clean"), "{stdout}");
}

#[test]
fn unreadable_source_file_is_a_diagnostic_not_a_panic() {
    let root = scratch_workspace("unreadable");
    // Invalid UTF-8 makes read_to_string fail the same way a permission
    // error would, portably.
    std::fs::write(root.join("crates/demo/src/garbage.rs"), [0xff, 0xfe, 0x66, 0x6e]).unwrap();
    let out = run_check(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(stderr.contains("cannot read"), "{stderr}");
    assert!(stderr.contains("garbage.rs"), "diagnostic must name the file: {stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn missing_registry_is_a_diagnostic_not_a_panic() {
    let root = scratch_workspace("no-registry");
    std::fs::remove_file(root.join("crates/chaos/src/points.rs")).unwrap();
    let out = run_check(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(stderr.contains("cannot read"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn unparseable_source_is_linted_best_effort_not_a_crash() {
    let root = scratch_workspace("unparseable");
    std::fs::write(
        root.join("crates/demo/src/soup.rs"),
        "fn unclosed( { ] } ) -> ,, where impl { \"str\n",
    )
    .unwrap();
    let out = run_check(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Garbled-but-readable sources lint best-effort: the run completes
    // with a verdict (clean or findings), never a parser crash.
    assert!(
        matches!(out.status.code(), Some(0) | Some(1)),
        "expected a lint verdict, got {:?}; stderr: {stderr}",
        out.status.code()
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn sarif_format_writes_document_and_keeps_exit_contract() {
    let root = scratch_workspace("sarif-clean");
    let sarif_path = root.join("lint.sarif");
    let out = Command::new(env!("CARGO_BIN_EXE_cqa-lint"))
        .args(["check", "--root"])
        .arg(&root)
        .args(["--format", "sarif", "--out"])
        .arg(&sarif_path)
        .output()
        .expect("spawn cqa-lint");
    assert_eq!(out.status.code(), Some(0));
    let doc = std::fs::read_to_string(&sarif_path).unwrap();
    assert!(doc.contains("\"version\": \"2.1.0\""), "{doc}");
    assert!(doc.contains("\"name\": \"cqa-lint\""), "{doc}");
}

#[test]
fn sarif_format_reports_findings_with_exit_1() {
    let root = scratch_workspace("sarif-dirty");
    // An unregistered span name is a deterministic single finding.
    std::fs::write(
        root.join("crates/demo/src/dirty.rs"),
        "pub fn f() { let _s = cqa_obs::span(\"not/registered\"); }\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_cqa-lint"))
        .args(["check", "--root"])
        .arg(&root)
        .args(["--format", "sarif"])
        .output()
        .expect("spawn cqa-lint");
    assert_eq!(out.status.code(), Some(1));
    let doc = String::from_utf8_lossy(&out.stdout);
    assert!(doc.contains("\"ruleId\": \"obs-name-registry\""), "{doc}");
    assert!(doc.contains("\"startLine\""), "{doc}");
}

#[test]
fn unknown_format_is_a_usage_error() {
    let root = scratch_workspace("bad-format");
    let out = Command::new(env!("CARGO_BIN_EXE_cqa-lint"))
        .args(["check", "--root"])
        .arg(&root)
        .args(["--format", "xml"])
        .output()
        .expect("spawn cqa-lint");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown format"));
}
