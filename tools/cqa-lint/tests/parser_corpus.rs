//! Parser robustness: the item parser must digest every real source file
//! in the workspace (the corpus it will be run against forever) and must
//! never panic on adversarial token soup — nested generics that end in
//! `>>`, closures in call arguments, raw identifiers, unbalanced
//! brackets. The property tests build such inputs generatively.

use cqa_lint::{lexer, parser};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn workspace_sources() -> Vec<(PathBuf, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut out = Vec::new();
    for scan in cqa_lint::SCAN_ROOTS {
        let Ok(members) = std::fs::read_dir(root.join(scan)) else { continue };
        for member in members.flatten() {
            let src = member.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out);
            }
        }
    }
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<(PathBuf, String)>) {
    for entry in std::fs::read_dir(dir).expect("readable src dir").flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path).expect("readable source file");
            out.push((path, text));
        }
    }
}

/// Every workspace source file parses without panicking, and files that
/// declare functions yield at least one parsed item.
#[test]
fn corpus_every_workspace_file_parses() {
    let sources = workspace_sources();
    assert!(sources.len() > 40, "suspiciously small corpus: {} files", sources.len());
    for (path, text) in &sources {
        let lexed = lexer::lex(text);
        let stripped = lexer::strip_cfg_test(&lexed.toks);
        let parsed = parser::parse_file(&path.display().to_string(), &stripped);
        let declares_fn = stripped
            .windows(2)
            .any(|w| w[0].is_ident("fn") && matches!(w[1].kind, lexer::TokKind::Ident));
        assert_eq!(
            declares_fn,
            !parsed.fns.is_empty(),
            "{}: declares_fn={declares_fn} but parsed {} fns",
            path.display(),
            parsed.fns.len()
        );
    }
}

/// Known-nasty constructs, spelled out so a regression names the culprit.
#[test]
fn corpus_adversarial_handwritten_cases() {
    let cases: &[&str] = &[
        "fn f() -> Vec<Vec<u32>> { Vec::new() }",
        "fn g(x: BTreeMap<String, Vec<(u32, u32)>>) {}",
        "fn h() { run(|| helper(), |x| x + 1); }",
        "fn r#match(r#type: u32) -> u32 { r#type }",
        "fn i() { let f = |a: u32| -> u32 { a.pow(2) }; f(3); }",
        "fn j<T: Iterator<Item = Vec<u8>>>(it: T) {}",
        "fn k() { x << 2; y >> 3; a < b; c > d; }",
        "impl<T> Foo<T> where T: Clone { fn m(&self) {} }",
        "fn l() { m!( unbalanced ( still lexes",
        "fn n() { \"s\u{2764}tring\".chars(); '\\u{1F600}'; }",
    ];
    for (i, src) in cases.iter().enumerate() {
        let lexed = lexer::lex(src);
        let stripped = lexer::strip_cfg_test(&lexed.toks);
        let _ = parser::parse_file(&format!("case{i}.rs"), &stripped);
    }
}

/// A tiny grammar of token fragments that compose into function-like
/// source. Indexes into FRAGMENTS, so the generator stays a plain
/// integer-vector strategy.
const FRAGMENTS: &[&str] = &[
    "fn f",
    "( x : u32 )",
    "( v : Vec<Vec<u8>> )",
    "<T: Iterator<Item = u64>>",
    "-> Result<Vec<u8>, E>",
    "{ let y = x; }",
    "{ run(|| helper(), |x| x + 1) }",
    "{ a >> b; c << d; e < f; g > h }",
    "{ r#fn(r#struct) }",
    "{ s.field.method::<u8>() }",
    "{ m!{ nested { braces } } }",
    "{",
    "}",
    "(",
    ")",
    "<",
    ">>",
    "|",
    "impl Foo for Bar",
    "struct S { a : u32 , b : Vec<u8> }",
    "let q = |k: u64| k * 2;",
    "as u32",
    "\"string \\\" with escapes\"",
    "'x'",
    "// comment\n",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random fragment concatenations — mostly ill-formed Rust — must
    /// never panic the lexer or parser.
    #[test]
    fn parser_survives_fragment_soup(picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..24)) {
        let src = picks.iter().map(|&i| FRAGMENTS[i]).collect::<Vec<_>>().join(" ");
        let lexed = lexer::lex(&src);
        let stripped = lexer::strip_cfg_test(&lexed.toks);
        let parsed = parser::parse_file("soup.rs", &stripped);
        // Fn items the parser does report must carry sane line spans
        // (end_line is 0 for bodyless declarations).
        for f in &parsed.fns {
            prop_assert!(
                f.end_line == 0 || f.end_line >= f.line,
                "{}: {} ends before it starts",
                f.name,
                f.line
            );
        }
    }

    /// Deeply nested generic arguments closed by runs of `>`; the parser
    /// must treat `>>` as two closers, not a shift, wherever it recurses.
    #[test]
    fn parser_survives_nested_generics(depth in 1usize..12, tail in 0usize..4) {
        let mut ty = String::from("u8");
        for _ in 0..depth {
            ty = format!("Vec<{ty}>");
        }
        let extra = ">".repeat(tail); // deliberately unbalanced closers
        let src = format!("fn f(x: {ty}{extra}) -> {ty} {{ g(|| h(x), |y| y) }}");
        let lexed = lexer::lex(&src);
        let stripped = lexer::strip_cfg_test(&lexed.toks);
        let parsed = parser::parse_file("generics.rs", &stripped);
        prop_assert!(!parsed.fns.is_empty(), "fn item lost in {src}");
    }
}
