//! Self-tests: every rule must fire on its bad fixture (with the right
//! rule name) and stay silent on its good fixture, suppressions must be
//! honored, and the real workspace must lint clean — which makes
//! `cargo test --workspace` fail the moment an invariant regresses, even
//! where CI forgets to run the CLI.

use cqa_lint::rules::{self, NameRegistry};
use std::path::{Path, PathBuf};

fn fixture_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(rel)
}

fn fixture(rel: &str) -> String {
    let path = fixture_path(rel);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn registry() -> NameRegistry {
    NameRegistry::parse(&fixture("registry.rs"))
}

/// Lints a fixture as if it were workspace file `rel` and returns the
/// rule names that fired.
fn fired(rel: &str, fixture_file: &str) -> Vec<&'static str> {
    cqa_lint::check_source(rel, &fixture(fixture_file), &registry())
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

const REQUEST_PATH: &str = "crates/server/src/pool.rs";
const ANYWHERE: &str = "crates/core/src/sampler.rs";
const ESTIMATOR: &str = "crates/core/src/montecarlo.rs";

/// Lints several fixtures together as the given workspace files — the
/// call-graph rules need the whole set to connect cross-module edges.
fn fired_multi(files: &[(&str, &str)]) -> Vec<rules::Finding> {
    let sources: Vec<(String, String)> =
        files.iter().map(|(rel, fx)| (rel.to_string(), fixture(fx))).collect();
    cqa_lint::check_sources(&sources, &registry())
}

#[test]
fn no_panic_fires_on_bad_fixture() {
    let fired = fired(REQUEST_PATH, "no-panic-in-request-path/bad.rs");
    assert_eq!(fired, vec![rules::NO_PANIC, rules::NO_PANIC], "unwrap + panic!");
}

#[test]
fn no_panic_is_scoped_to_the_request_path() {
    // The same source outside the request path is not no-panic's business.
    assert!(fired(ANYWHERE, "no-panic-in-request-path/bad.rs").is_empty());
}

#[test]
fn no_panic_passes_good_fixture_and_ignores_tests() {
    assert!(fired(REQUEST_PATH, "no-panic-in-request-path/good.rs").is_empty());
}

#[test]
fn suppression_comment_waives_a_finding() {
    assert!(fired(REQUEST_PATH, "no-panic-in-request-path/suppressed.rs").is_empty());
}

#[test]
fn no_alloc_fires_on_bad_fixture() {
    let fired = fired(ANYWHERE, "no-alloc-in-hot-path/bad.rs");
    assert_eq!(
        fired,
        vec![rules::NO_ALLOC, rules::NO_ALLOC, rules::NO_ALLOC],
        "clone, format!, Vec::new"
    );
}

#[test]
fn no_alloc_passes_good_fixture() {
    assert!(fired(ANYWHERE, "no-alloc-in-hot-path/good.rs").is_empty());
}

#[test]
fn no_alloc_reports_unclosed_region() {
    let findings =
        cqa_lint::check_source(ANYWHERE, &fixture("no-alloc-in-hot-path/unclosed.rs"), &registry());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, rules::NO_ALLOC);
    assert!(findings[0].message.contains("never closed"), "{}", findings[0].message);
}

#[test]
fn transitive_panic_crosses_modules() {
    let findings = fired_multi(&[
        (REQUEST_PATH, "transitive/request_entry.rs"),
        ("crates/server/src/util.rs", "transitive/request_helper.rs"),
    ]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, rules::NO_PANIC);
    assert_eq!(findings[0].file, "crates/server/src/util.rs");
    assert!(findings[0].message.contains("reachable via"), "{}", findings[0].message);
}

#[test]
fn transitive_alloc_crosses_modules_from_hot_region() {
    let findings = fired_multi(&[
        (ANYWHERE, "transitive/hot_entry.rs"),
        ("crates/core/src/tabulate.rs", "transitive/hot_helper.rs"),
    ]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, rules::NO_ALLOC);
    assert_eq!(findings[0].file, "crates/core/src/tabulate.rs");
    assert!(findings[0].message.contains("reachable via"), "{}", findings[0].message);
}

#[test]
fn transitive_helpers_alone_are_clean() {
    // Without the entry points, neither helper is reachable from a seed:
    // the findings above really do come from the call graph.
    assert!(fired("crates/server/src/util.rs", "transitive/request_helper.rs").is_empty());
    assert!(fired("crates/core/src/tabulate.rs", "transitive/hot_helper.rs").is_empty());
}

#[test]
fn checked_math_fires_on_bad_fixture() {
    let fired = fired(ESTIMATOR, "checked-estimator-math/bad.rs");
    assert_eq!(
        fired,
        vec![rules::CHECKED_MATH, rules::CHECKED_MATH, rules::CHECKED_MATH],
        "unchecked +=, float cast, narrowing cast"
    );
}

#[test]
fn checked_math_passes_good_fixture() {
    assert!(fired(ESTIMATOR, "checked-estimator-math/good.rs").is_empty());
}

#[test]
fn checked_math_is_scoped_to_estimator_files() {
    assert!(fired(ANYWHERE, "checked-estimator-math/bad.rs").is_empty());
}

#[test]
fn rng_flow_fires_on_ambient_entropy_and_unforked_root() {
    let findings = cqa_lint::check_source(ESTIMATOR, &fixture("rng-flow/bad.rs"), &registry());
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == rules::RNG_FLOW));
    assert!(findings.iter().any(|f| f.message.contains("thread_rng")), "{findings:#?}");
}

#[test]
fn rng_flow_passes_forked_rng() {
    assert!(fired(ESTIMATOR, "rng-flow/good.rs").is_empty());
}

#[test]
fn suppression_hygiene_fires_on_bad_fixture() {
    let fired = fired(REQUEST_PATH, "suppression-needs-reason/bad.rs");
    assert_eq!(
        fired,
        vec![rules::SUPPRESSION, rules::SUPPRESSION, rules::SUPPRESSION],
        "missing reason, unknown rule, self-suppression"
    );
}

#[test]
fn suppression_hygiene_passes_good_fixture() {
    assert!(fired(REQUEST_PATH, "suppression-needs-reason/good.rs").is_empty());
}

#[test]
fn safety_comment_fires_on_bad_fixture() {
    assert_eq!(fired(ANYWHERE, "safety-comment/bad.rs"), vec![rules::SAFETY]);
}

#[test]
fn safety_comment_passes_good_fixture() {
    assert!(fired(ANYWHERE, "safety-comment/good.rs").is_empty());
}

#[test]
fn obs_names_fire_on_bad_fixture() {
    let findings =
        cqa_lint::check_source(ANYWHERE, &fixture("obs-name-registry/bad.rs"), &registry());
    assert_eq!(findings.len(), 3, "one span, one metric, one field typo: {findings:?}");
    assert!(findings.iter().all(|f| f.rule == rules::OBS_NAMES));
    assert!(findings.iter().any(|f| f.message.contains("serve/request_typo")));
    assert!(findings.iter().any(|f| f.message.contains("server_requets_total")));
    assert!(findings.iter().any(|f| f.message.contains("reqest_id")));
}

#[test]
fn obs_names_pass_good_fixture() {
    assert!(fired(ANYWHERE, "obs-name-registry/good.rs").is_empty());
}

#[test]
fn bench_names_fire_on_bad_fixture() {
    let findings =
        cqa_lint::check_source(ANYWHERE, &fixture("bench-name-registry/bad.rs"), &registry());
    assert_eq!(findings.len(), 1, "one series typo: {findings:?}");
    assert_eq!(findings[0].rule, rules::BENCH_NAMES);
    assert!(findings[0].message.contains("demo/biuld_ns"));
    assert!(findings[0].message.contains("crates/perf/src/names.rs"));
}

#[test]
fn bench_names_pass_good_fixture() {
    // Registered literal, computed name, definition site, and a reasoned
    // suppression: none fire.
    assert!(fired(ANYWHERE, "bench-name-registry/good.rs").is_empty());
}

#[test]
fn protocol_sync_passes_matching_pair() {
    let lexed = cqa_lint::lexer::lex(&fixture("protocol-doc-sync/good_protocol.rs"));
    let code = rules::protocol_code_keys(&lexed.toks);
    assert_eq!(code.iter().map(String::as_str).collect::<Vec<_>>(), vec!["query", "seed"]);
    let doc = rules::protocol_doc_keys(&fixture("protocol-doc-sync/good_doc.md"));
    assert!(rules::protocol_sync(&code, &doc, "protocol.rs", "doc.md").is_empty());
}

#[test]
fn protocol_sync_fires_in_both_directions() {
    let lexed = cqa_lint::lexer::lex(&fixture("protocol-doc-sync/good_protocol.rs"));
    let code = rules::protocol_code_keys(&lexed.toks);
    let doc = rules::protocol_doc_keys(&fixture("protocol-doc-sync/bad_doc.md"));
    let findings = rules::protocol_sync(&code, &doc, "protocol.rs", "doc.md");
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == rules::PROTOCOL_SYNC));
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("\"seed\"") && f.message.contains("never documented")),
        "undocumented code key: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("\"retries\"") && f.message.contains("stale doc")),
        "doc-only key: {findings:?}"
    );
}

#[test]
fn fault_points_fire_on_bad_fixture() {
    let findings =
        cqa_lint::check_source(ANYWHERE, &fixture("fault-point-registry/bad.rs"), &registry());
    assert_eq!(findings.len(), 1, "one point typo: {findings:?}");
    assert_eq!(findings[0].rule, rules::FAULT_POINTS);
    assert!(findings[0].message.contains("demo/prase"));
    assert!(findings[0].message.contains("crates/chaos/src/points.rs"));
}

#[test]
fn fault_points_pass_good_fixture() {
    // Registered literals, a computed name, and the macro definition site:
    // none fire.
    assert!(fired(ANYWHERE, "fault-point-registry/good.rs").is_empty());
}

#[test]
fn fault_point_sync_flags_never_planted_points() {
    let lexed = cqa_lint::lexer::lex(&fixture("fault-point-registry/good.rs"));
    let calls = rules::fault_point_call_sites(&lexed.toks);
    assert_eq!(
        calls.iter().map(String::as_str).collect::<Vec<_>>(),
        vec!["demo/parse", "demo/write"],
        "call-site extraction must skip the definition site and computed names"
    );
    let reg = registry();
    assert!(
        rules::fault_point_sync(&reg.points, &calls, "points.rs").is_empty(),
        "every fixture-registered point is planted"
    );
    let mut points = reg.points.clone();
    points.insert("demo/never_planted".to_owned());
    let findings = rules::fault_point_sync(&points, &calls, "points.rs");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, rules::FAULT_POINTS);
    assert_eq!(findings[0].file, "points.rs");
    assert!(findings[0].message.contains("demo/never_planted"));
}

#[test]
fn error_table_sync_passes_matching_pair() {
    let lexed = cqa_lint::lexer::lex(&fixture("protocol-doc-sync/error_protocol.rs"));
    let code = rules::protocol_error_kinds(&lexed.toks);
    assert_eq!(
        code.iter().map(String::as_str).collect::<Vec<_>>(),
        vec!["bad_request", "overloaded"],
        "kinds come from the from_name parse table only"
    );
    let doc = rules::protocol_doc_error_kinds(&fixture("protocol-doc-sync/good_error_doc.md"));
    assert_eq!(code, doc, "tables outside the error section must be ignored");
    assert!(rules::error_table_sync(&code, &doc, "protocol.rs", "doc.md").is_empty());
}

#[test]
fn error_table_sync_fires_in_both_directions() {
    let lexed = cqa_lint::lexer::lex(&fixture("protocol-doc-sync/error_protocol.rs"));
    let code = rules::protocol_error_kinds(&lexed.toks);
    let doc = rules::protocol_doc_error_kinds(&fixture("protocol-doc-sync/bad_error_doc.md"));
    let findings = rules::error_table_sync(&code, &doc, "protocol.rs", "doc.md");
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == rules::PROTOCOL_SYNC));
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("\"bad_request\"") && f.message.contains("missing")),
        "undocumented error kind: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("\"deadline_exceeded\"") && f.message.contains("stale")),
        "doc-only error kind: {findings:?}"
    );
}

#[test]
fn lock_order_fires_on_seeded_abba() {
    let fired = fired(ANYWHERE, "lock-order/bad.rs");
    assert_eq!(fired, vec![rules::LOCK_ORDER, rules::LOCK_ORDER], "one finding per direction");
}

#[test]
fn lock_order_passes_good_fixture() {
    // Consistent ordering plus a drop-then-reacquire that is only clean
    // because guard release is modeled.
    assert!(fired(ANYWHERE, "lock-order/good.rs").is_empty());
}

#[test]
fn lock_order_reconstructs_interprocedural_acquisition_paths() {
    // The seeded ABBA cycle in the cache/pool pair: each direction crosses
    // a call edge, and each finding carries its own acquisition path plus
    // the rendered cycle.
    let findings = fired_multi(&[
        ("crates/server/src/cache.rs", "transitive/abba_cache.rs"),
        ("crates/server/src/pool.rs", "transitive/abba_pool.rs"),
    ]);
    let cycles: Vec<_> = findings.iter().filter(|f| f.rule == rules::LOCK_ORDER).collect();
    assert_eq!(cycles.len(), 2, "one finding per direction: {findings:#?}");
    assert!(
        cycles.iter().any(|f| f.message.contains("Cache::lookup → Pool::reserve_worker")),
        "{cycles:#?}"
    );
    assert!(
        cycles.iter().any(|f| f.message.contains("Pool::shed → Cache::refresh")),
        "{cycles:#?}"
    );
    assert!(cycles.iter().all(|f| f.message.contains("cycle: ")), "{cycles:#?}");
}

#[test]
fn no_blocking_fires_on_bad_fixture() {
    let fired = fired(REQUEST_PATH, "no-blocking-while-locked/bad.rs");
    assert_eq!(
        fired,
        vec![rules::NO_BLOCKING, rules::NO_BLOCKING, rules::NO_BLOCKING],
        "second lock acquisition, recv, sleep"
    );
}

#[test]
fn no_blocking_is_scoped_to_the_request_path() {
    // Holding two independent locks without a cycle is legal off the
    // request path; only the request-path region demands lock-free waits.
    assert!(fired(ANYWHERE, "no-blocking-while-locked/bad.rs").is_empty());
}

#[test]
fn no_blocking_passes_good_fixture() {
    assert!(fired(REQUEST_PATH, "no-blocking-while-locked/good.rs").is_empty());
}

#[test]
fn guard_fault_fires_directly_and_transitively() {
    let fired = fired(ANYWHERE, "no-guard-across-fault-point/bad.rs");
    assert_eq!(
        fired,
        vec![rules::GUARD_FAULT, rules::GUARD_FAULT],
        "one direct fault point, one via a callee"
    );
}

#[test]
fn guard_fault_passes_good_fixture() {
    assert!(fired(ANYWHERE, "no-guard-across-fault-point/good.rs").is_empty());
}

const SERVER_FILE: &str = "crates/server/src/ingest.rs";

#[test]
fn wire_taint_fires_on_bad_fixture_with_provenance() {
    let findings =
        cqa_lint::check_source(SERVER_FILE, &fixture("wire-input-taint/bad.rs"), &registry());
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, rules::WIRE_TAINT);
    assert!(findings[0].message.contains("with_capacity"), "{}", findings[0].message);
    assert!(findings[0].message.contains("req_u64(\"rows\")"), "{}", findings[0].message);
}

#[test]
fn wire_taint_clamp_is_a_negative_control() {
    // `capped_u64` is in the fixture registry's VALIDATORS, so the clamped
    // read is sanitized and the identical sink stays silent.
    assert!(fired(SERVER_FILE, "wire-input-taint/good.rs").is_empty());
}

#[test]
fn wire_taint_is_scoped_to_server_files() {
    // The same source outside `crates/server/` has no wire sources.
    assert!(fired(ANYWHERE, "wire-input-taint/bad.rs").is_empty());
}

#[test]
fn wire_taint_reconstructs_multi_hop_interprocedural_path() {
    // Source in one module, sink in the same module, but the value makes a
    // round trip through the entry module: read_rows → handle → reserve.
    let findings = fired_multi(&[
        (SERVER_FILE, "wire-input-taint/entry.rs"),
        ("crates/server/src/limits.rs", "wire-input-taint/helper.rs"),
    ]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, rules::WIRE_TAINT);
    assert_eq!(findings[0].file, "crates/server/src/limits.rs");
    assert!(findings[0].message.contains("req_u64(\"rows\")"), "{}", findings[0].message);
    assert!(findings[0].message.contains("read_rows"), "{}", findings[0].message);
}

#[test]
fn estimator_intervals_fire_on_bad_fixture_with_ranges() {
    let findings =
        cqa_lint::check_source(ESTIMATOR, &fixture("estimator-intervals/bad.rs"), &registry());
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == rules::EST_INTERVALS));
    assert!(
        findings.iter().any(|f| f.message.contains("divisor") && f.message.contains("range")),
        "{findings:#?}"
    );
    assert!(findings.iter().any(|f| f.message.contains("escapes [0, 1]")), "{findings:#?}");
}

#[test]
fn estimator_intervals_pass_good_fixture() {
    assert!(fired(ESTIMATOR, "estimator-intervals/good.rs").is_empty());
}

#[test]
fn estimator_intervals_are_scoped_to_interval_files() {
    assert!(fired(ANYWHERE, "estimator-intervals/bad.rs").is_empty());
}

/// The real workspace must stay clean: this is the same check CI runs via
/// the CLI, embedded in the test suite so `cargo test --workspace` alone
/// catches regressions.
#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = cqa_lint::check_workspace(&root).expect("scan must succeed");
    assert!(findings.is_empty(), "workspace findings:\n{findings:#?}");
}
