//! Property tests for the dataflow engine's abstract domains
//! (`cqa_lint::domains`): the lattice laws the fixpoint engine's
//! soundness and termination rest on. Join must be a commutative,
//! monotone upper bound; widening must be an upper bound of both
//! arguments that stabilizes on every ascending chain — otherwise the
//! loop-head iteration in `dataflow.rs` could diverge or drop states.

use cqa_lint::domains::{Interval, Lattice, Provenance, Taint};
use proptest::prelude::*;

/// Interesting bounds: infinities, the strict-positivity sentinel, the
/// widening thresholds (0 and 1), and plain values on both sides.
const BOUNDS: [f64; 9] =
    [f64::NEG_INFINITY, -2.5, -1.0, 0.0, f64::MIN_POSITIVE, 0.5, 1.0, 3.75, f64::INFINITY];

/// Builds an interval from bound-pool indices. `i > j` yields bottom,
/// which is a legitimate lattice element and must obey the laws too.
fn iv(i: usize, j: usize, int: bool) -> Interval {
    Interval::new(BOUNDS[i], BOUNDS[j], int)
}

/// `a ⊑ b` in join-semilattice terms: joining `a` into `b` adds nothing.
fn leq(a: &Interval, b: &Interval) -> bool {
    b.join(a) == *b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn join_is_commutative(i in 0usize..9, j in 0usize..9, k in 0usize..9, l in 0usize..9) {
        let a = iv(i, j, i % 2 == 0);
        let b = iv(k, l, k % 2 == 0);
        prop_assert_eq!(a.join(&b), b.join(&a));
    }

    #[test]
    fn join_is_an_upper_bound(i in 0usize..9, j in 0usize..9, k in 0usize..9, l in 0usize..9) {
        let a = iv(i, j, true);
        let b = iv(k, l, false);
        let ab = a.join(&b);
        prop_assert!(leq(&a, &ab), "{a:?} ⋢ {ab:?}");
        prop_assert!(leq(&b, &ab), "{b:?} ⋢ {ab:?}");
    }

    #[test]
    fn join_is_monotone(
        i in 0usize..9, j in 0usize..9,
        k in 0usize..9, l in 0usize..9,
        m in 0usize..9, n in 0usize..9,
    ) {
        // a ⊑ a' (constructed as a' = a ⊔ c) implies a ⊔ b ⊑ a' ⊔ b.
        let a = iv(i, j, true);
        let b = iv(k, l, true);
        let bigger = a.join(&iv(m, n, true));
        prop_assert!(leq(&a.join(&b), &bigger.join(&b)));
    }

    #[test]
    fn widen_is_an_upper_bound(i in 0usize..9, j in 0usize..9, k in 0usize..9, l in 0usize..9) {
        let a = iv(i, j, true);
        let b = iv(k, l, true);
        let w = a.widen(&b);
        prop_assert!(leq(&a, &w), "{a:?} ⋢ widen {w:?}");
        prop_assert!(leq(&b, &w), "{b:?} ⋢ widen {w:?}");
    }

    #[test]
    fn widening_terminates_on_ascending_chains(
        picks in prop::collection::vec(0usize..9, 0..40),
    ) {
        // Feed an arbitrary interval stream through the loop-head update
        // w ← w.widen(w ⊔ x). Each bound can only move outward through
        // the finite threshold set {0, 1} before reaching ±∞, and the
        // int flag only falls, so the number of *changes* is bounded
        // regardless of stream length.
        let mut w = Interval::BOTTOM;
        let mut changes = 0;
        for (step, &p) in picks.iter().enumerate() {
            let x = iv(p, (p + step) % 9, step % 2 == 0);
            let next = w.widen(&w.join(&x));
            prop_assert!(leq(&w, &next), "widening must ascend: {w:?} → {next:?}");
            if next != w {
                changes += 1;
                w = next;
            }
        }
        prop_assert!(changes <= 7, "{changes} changes — widening chain too long, ends at {w:?}");
    }

    #[test]
    fn taint_join_is_commutative_and_absorbing(t1 in 0usize..2, t2 in 0usize..2) {
        let mk = |t: usize| if t == 0 {
            Taint::Clean
        } else {
            Taint::Tainted(Provenance::new("req_u64(\"n\")"))
        };
        let (a, b) = (mk(t1), mk(t2));
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&b).is_tainted(), a.is_tainted() || b.is_tainted());
        // Widening adds nothing on a two-point lattice.
        prop_assert_eq!(a.widen(&b), a.join(&b));
    }
}
