//! Offline shim for the [`crossbeam`](https://docs.rs/crossbeam) channel
//! API, backed by `std::sync::{Mutex, Condvar}`.
//!
//! The build container has no crates-io mirror, so the workspace vendors
//! the subset it uses: multi-producer multi-consumer channels, bounded and
//! unbounded, with blocking, non-blocking, and timed receives. Performance
//! is adequate for the workloads here (coarse work items, not per-message
//! microbenchmarks); semantics match crossbeam where exercised.

#![forbid(unsafe_code)]

pub mod channel;
