//! MPMC channels: `unbounded()` and `bounded(cap)`.
//!
//! A channel is a `Mutex<VecDeque>` plus two condvars (`not_empty`,
//! `not_full`) and live-endpoint counts. A send to a channel with no
//! receivers fails; a receive from an empty channel with no senders fails;
//! `try_send` on a full bounded channel fails immediately — the property
//! the server's admission control relies on.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

/// The sending half of a channel. Cloneable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The channel is disconnected (no receivers remain).
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Like upstream crossbeam, `Debug` does not require `T: Debug` (the
// payload may be an unprintable closure).
impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Why a `try_send` failed.
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity.
    Full(T),
    /// No receivers remain.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// The channel is empty and all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Why a `try_recv` failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Why a `recv_timeout` failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the channel still empty.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

/// An unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

/// A bounded MPMC channel holding at most `cap` messages.
///
/// Unlike crossbeam, `cap == 0` (rendezvous) is not supported by the shim.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "the crossbeam shim does not support zero-capacity channels");
    new_channel(Some(cap))
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued or all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.shared.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                _ => {
                    st.queue.push_back(value);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Enqueues without blocking; fails when full or disconnected.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.capacity {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap_or_else(PoisonError::into_inner).queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap_or_else(PoisonError::into_inner).queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator draining the channel until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap_or_else(PoisonError::into_inner).senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap_or_else(PoisonError::into_inner).receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Wake blocked receivers so they observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            // Wake blocked senders so they observe disconnection.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
        assert!(matches!(tx.try_send(6), Err(TrySendError::Disconnected(6))));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn multi_consumer_drains_everything_once() {
        let (tx, rx) = unbounded();
        for i in 0..1000u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut seen: Vec<u32> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn blocked_receivers_wake_on_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn iter_drains_until_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
