//! Soundness tests for the explorer itself: a known-racy toy **must** be
//! caught, and correctly synchronized equivalents **must** pass — so the
//! model checker's verdicts are themselves tested, not assumed.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The classic lost update: two threads increment a counter with separate
/// load and store (no synchronization between read and write). Some
/// interleaving interleaves the two read-modify-write sequences and loses
/// one increment; exhaustive exploration must find it.
#[test]
fn unsynchronized_counter_race_is_caught() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = loom::thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst); // read …
                c2.store(v + 1, Ordering::SeqCst); // … modify-write, divisibly
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        })
    }));
    let msg = match outcome {
        Ok(report) => panic!("racy counter not caught in {} interleavings", report.iterations),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".to_owned()),
    };
    assert!(msg.contains("lost update"), "unexpected failure message: {msg}");
}

/// The same counter with an indivisible `fetch_add` passes in every
/// interleaving — and more than one interleaving is actually explored.
#[test]
fn fetch_add_counter_passes() {
    let report = loom::model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = loom::thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        c.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
    // 2 threads × 1 op (+ join/load bookkeeping): several interleavings.
    assert!(report.iterations > 1, "explored only {} interleavings", report.iterations);
}

/// Mutex-protected read-modify-write also passes: the explorer models
/// lock blocking, so no interleaving can interleave the two criticals.
#[test]
fn mutex_counter_passes() {
    loom::model(|| {
        let c = Arc::new(Mutex::new(0u64));
        let c2 = Arc::clone(&c);
        let t = loom::thread::spawn(move || {
            let mut g = c2.lock();
            *g += 1;
        });
        {
            let mut g = c.lock();
            *g += 1;
        }
        t.join().unwrap();
        assert_eq!(*c.lock(), 2);
    });
}

/// Lock-order inversion: thread 1 takes A then B, thread 2 takes B then A.
/// Some interleaving deadlocks; the explorer must report it rather than
/// hang.
#[test]
fn abba_deadlock_is_caught() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let a = Arc::new(Mutex::new(0u64));
            let b = Arc::new(Mutex::new(0u64));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = loom::thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_ga, _gb));
            t.join().unwrap();
        });
    }));
    let msg = match outcome {
        Ok(_) => panic!("AB-BA deadlock not caught"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".to_owned()),
    };
    assert!(msg.contains("deadlock"), "unexpected failure message: {msg}");
}

/// The exploration is exhaustive and deterministic: for a fixed tiny
/// model, the interleaving count is the same on every run.
#[test]
fn exploration_is_deterministic() {
    let count = |()| {
        loom::model(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = loom::thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(2, Ordering::SeqCst);
            t.join().unwrap();
        })
        .iterations
    };
    let a = count(());
    let b = count(());
    assert_eq!(a, b);
    assert!(a >= 2);
}

/// An unbounded spin loop trips the per-execution choice bound instead of
/// hanging the test suite.
#[test]
fn unbounded_spin_is_reported() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        loom::Builder { max_iterations: 10, max_choices: 200 }.check(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let f2 = Arc::clone(&flag);
            let t = loom::thread::spawn(move || {
                f2.store(1, Ordering::SeqCst);
            });
            // Never-terminating under the schedule that starves `t`.
            while flag.load(Ordering::SeqCst) == 0 {}
            t.join().unwrap();
        });
    }));
    let msg = match outcome {
        Ok(_) => panic!("unbounded spin not reported"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".to_owned()),
    };
    assert!(msg.contains("scheduling points"), "unexpected failure message: {msg}");
}
