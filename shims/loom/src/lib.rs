#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # loom (offline mini-loom) — deterministic interleaving exploration
//!
//! The build container has no crates-io mirror, so this shim vendors the
//! small subset of [`loom`](https://docs.rs/loom)'s API the workspace uses
//! to model-check its concurrent kernels: the sharded synopsis cache and
//! the seqlock trace ring (see `docs/ANALYSIS.md`).
//!
//! [`model`] runs a closure under a cooperative scheduler that enumerates
//! **every sequentially-consistent interleaving** of the closure's shared
//! memory operations ([`sync::Mutex`], [`sync::atomic`], spawn/join), via
//! depth-first search over scheduling decisions. Assertions inside the
//! closure therefore hold for *all* interleavings, not just the ones a
//! lucky stress test happens to hit; a panic, a deadlock, or an unbounded
//! retry loop in any interleaving fails the model with the offending
//! schedule.
//!
//! Scope (honest limitations, same trade as documented in loom itself for
//! its default mode): exploration is at sequential-consistency level —
//! it finds interleaving races, lost updates, torn reads, and lock-order
//! deadlocks, but not reorderings only a weak memory model would allow.
//! Models must be deterministic (no wall clock, no OS randomness) and
//! must bound their retry loops.
//!
//! ```
//! use loom::sync::atomic::{AtomicU64, Ordering};
//! use loom::sync::Arc;
//!
//! let report = loom::model(|| {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let c2 = Arc::clone(&c);
//!     let t = loom::thread::spawn(move || c2.fetch_add(1, Ordering::SeqCst));
//!     c.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(c.load(Ordering::SeqCst), 2); // holds in EVERY interleaving
//! });
//! assert!(report.iterations > 1); // more than one interleaving explored
//! ```

mod sched;
pub mod sync;
pub mod thread;

use sched::{Abort, Choice};
use std::sync::{Mutex, OnceLock};

/// Outcome of an exhausted exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct executions (interleavings) explored.
    pub iterations: u64,
}

/// Tunable exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Cap on explored executions; exceeding it panics (the model is too
    /// large to check exhaustively — shrink it).
    pub max_iterations: u64,
    /// Cap on scheduling decisions within one execution; exceeding it
    /// panics (the model has an unbounded spin/retry loop).
    pub max_choices: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder { max_iterations: 100_000, max_choices: 20_000 }
    }
}

/// Serializes model runs process-wide: the scheduler state is global, and
/// cargo's test harness runs tests concurrently.
fn model_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Installs (once) a panic-hook filter that silences panics on model
/// worker threads: those panics are part of normal exploration (aborted
/// executions unwind via a sentinel) and are re-reported coherently by
/// [`Builder::check`]. Other threads keep the previous hook.
fn install_quiet_hook() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_worker =
                std::thread::current().name().is_some_and(|n| n.starts_with("loom-worker"));
            if !on_worker {
                prev(info);
            }
        }));
    });
}

/// The deepest schedule prefix with an untried alternative, or `None` when
/// the whole space has been explored.
fn next_prefix(mut schedule: Vec<Choice>) -> Option<Vec<Choice>> {
    while let Some(last) = schedule.last_mut() {
        if last.index + 1 < last.alts.len() {
            last.index += 1;
            return Some(schedule);
        }
        schedule.pop();
    }
    None
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Exhaustively explores every interleaving of `f`. Panics — with the
    /// failing thread's message and the iteration number — if any
    /// interleaving panics, deadlocks, or exceeds the bounds.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let _serial = match model_lock().lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        install_quiet_hook();
        let f = std::sync::Arc::new(f);
        let mut prefix: Vec<Choice> = Vec::new();
        let mut iterations: u64 = 0;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "loom: model not exhausted after {} executions — shrink the model",
                self.max_iterations
            );
            sched::begin_execution(prefix, self.max_choices);
            let f_run = std::sync::Arc::clone(&f);
            let root_result = std::sync::Arc::new(Mutex::new(None::<()>));
            let slot = std::sync::Arc::clone(&root_result);
            let root = std::thread::Builder::new()
                .name("loom-worker-0".to_owned())
                .spawn(move || thread::run_model_thread(0, &slot, move || f_run()))
                .expect("spawn loom root thread");
            let (schedule, abort, handles) = sched::wait_execution_done();
            let _ = root.join();
            for h in handles {
                let _ = h.join();
            }
            match abort {
                Some(Abort::Panic(msg)) => panic!(
                    "loom: interleaving {iterations} failed ({} scheduling points): {msg}",
                    schedule.len()
                ),
                Some(Abort::Deadlock(msg)) => {
                    panic!("loom: interleaving {iterations} deadlocked: {msg}")
                }
                Some(Abort::TooDeep(msg)) => panic!("loom: {msg}"),
                None => {}
            }
            match next_prefix(schedule) {
                Some(p) => prefix = p,
                None => break,
            }
        }
        Report { iterations }
    }
}

/// Explores every interleaving of `f` under the default bounds. See
/// [`Builder::check`].
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}
