//! The deterministic scheduler behind [`crate::model`].
//!
//! One execution runs the model closure and every thread it spawns on real
//! OS threads, but only ever lets **one** of them make progress at a time:
//! each shared-memory operation (atomic access, mutex acquire, spawn,
//! join) first calls [`yield_point`], which consults the current schedule
//! to decide which thread runs next and parks everyone else on a condvar.
//! Because every side effect on shared state sits behind such a point, the
//! set of schedules is exactly the set of sequentially-consistent
//! interleavings of those operations.
//!
//! Exploration is a depth-first search over schedules: the first execution
//! always picks the runnable thread with the smallest id; each subsequent
//! execution replays a recorded choice prefix, takes the next untried
//! alternative at the deepest incrementable choice point, and lets the
//! default rule finish the run. When no choice point has an untried
//! alternative left, the space is exhausted.
//!
//! Blocking (a held mutex, a join on a live thread) removes a thread from
//! the runnable set; if the runnable set ever empties while threads are
//! still blocked, the schedule found a deadlock and the run aborts with a
//! report. A panic on any model thread likewise aborts the run: the other
//! threads are woken, unwind via a sentinel panic at their next yield
//! point (dropping any lock guards on the way), and the original payload
//! is re-raised on the caller's thread.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// The panic payload used to unwind model threads when an execution
/// aborts. [`crate::thread::spawn`]'s wrapper swallows it.
pub(crate) const ABORT_SENTINEL: &str = "loom-model-abort";

/// Why an execution stopped exploring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Abort {
    /// A model thread panicked; the payload text is preserved.
    Panic(String),
    /// Every unfinished thread was blocked.
    Deadlock(String),
    /// One execution exceeded the choice-point bound (an unbounded
    /// spin/retry loop in the model).
    TooDeep(String),
}

/// Whether a logical thread can currently be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    Runnable,
    /// Waiting for the lock with this id to be released.
    BlockedLock(usize),
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    Finished,
}

/// One recorded scheduling decision: which runnable thread was picked out
/// of which alternatives. DFS backtracking advances `index` through
/// `alts`.
#[derive(Debug, Clone)]
pub(crate) struct Choice {
    pub(crate) index: usize,
    pub(crate) alts: Vec<usize>,
}

#[derive(Default)]
pub(crate) struct ExecState {
    /// Per-logical-thread run state; index = thread id.
    threads: Vec<Run>,
    /// The thread currently allowed to make progress.
    cur: usize,
    /// Recorded decisions: a replayed prefix plus fresh tail.
    pub(crate) schedule: Vec<Choice>,
    /// Next decision index (== number of decisions taken so far).
    pub(crate) pos: usize,
    /// Lock id → holding thread, for locks the model created this run.
    locks: HashMap<usize, Option<usize>>,
    next_lock_id: usize,
    pub(crate) abort: Option<Abort>,
    /// Real handles of spawned threads, joined by the controller.
    pub(crate) real_handles: Vec<std::thread::JoinHandle<()>>,
    /// Bound on decisions per execution (catches unbounded model loops).
    pub(crate) max_choices: usize,
    active: bool,
}

pub(crate) struct Exec {
    pub(crate) state: Mutex<ExecState>,
    pub(crate) cv: Condvar,
}

pub(crate) fn exec() -> &'static Exec {
    static EXEC: OnceLock<Exec> = OnceLock::new();
    EXEC.get_or_init(|| Exec { state: Mutex::new(ExecState::default()), cv: Condvar::new() })
}

thread_local! {
    /// The logical thread id of the current OS thread, when it belongs to
    /// the running model.
    static CUR_TID: Cell<Option<usize>> = const { Cell::new(None) };
}

pub(crate) fn set_tid(tid: Option<usize>) {
    CUR_TID.with(|c| c.set(tid));
}

/// The calling thread's logical id; panics outside a model run so misuse
/// of `loom` primitives from ordinary code fails loudly.
pub(crate) fn tid() -> usize {
    // cqa-lint: allow(no-panic-in-request-path): deliberate loud failure — loom primitives outside loom::model are a test-harness bug; production builds use the parking_lot shim
    CUR_TID.with(|c| c.get()).expect("loom primitive used outside loom::model")
}

fn lock_state() -> MutexGuard<'static, ExecState> {
    match exec().state.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Starts a fresh execution with `schedule` as the prescribed prefix.
pub(crate) fn begin_execution(schedule: Vec<Choice>, max_choices: usize) {
    let mut st = lock_state();
    *st = ExecState {
        threads: vec![Run::Runnable],
        cur: 0,
        schedule,
        pos: 0,
        locks: HashMap::new(),
        next_lock_id: 0,
        abort: None,
        real_handles: Vec::new(),
        max_choices,
        active: true,
    };
}

/// Blocks the controller until every model thread finished, then returns
/// the terminal state (schedule, abort, handles to join).
pub(crate) fn wait_execution_done() -> (Vec<Choice>, Option<Abort>, Vec<std::thread::JoinHandle<()>>)
{
    let mut st = lock_state();
    while !(st.active && st.threads.iter().all(|t| *t == Run::Finished)) {
        st = match exec().cv.wait(st) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
    }
    st.active = false;
    (std::mem::take(&mut st.schedule), st.abort.take(), std::mem::take(&mut st.real_handles))
}

/// Registers a new logical thread; returns its id. The spawner registers
/// *before* starting the real thread so the child's id is valid by the
/// time it first parks.
pub(crate) fn register_thread() -> usize {
    let mut st = lock_state();
    let tid = st.threads.len();
    st.threads.push(Run::Runnable);
    tid
}

/// Records the real handle of a spawned model thread so the controller
/// can join it after the execution.
pub(crate) fn store_handle(handle: std::thread::JoinHandle<()>) {
    lock_state().real_handles.push(handle);
}

/// Parks the calling OS thread until its logical thread is scheduled.
/// Called once by each spawned thread before running user code.
pub(crate) fn wait_until_scheduled(me: usize) {
    let mut st = lock_state();
    loop {
        if st.abort.is_some() {
            drop(st);
            abort_unwind();
        }
        if st.cur == me && st.threads[me] == Run::Runnable {
            return;
        }
        st = match exec().cv.wait(st) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
    }
}

fn abort_unwind() -> ! {
    std::panic::panic_any(ABORT_SENTINEL);
}

/// Picks the next thread to run (recording/replaying the decision) and
/// hands control to it. `st.cur` must be transferred while the state lock
/// is held.
fn schedule_next(st: &mut ExecState) {
    let alts: Vec<usize> = st
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| **t == Run::Runnable)
        .map(|(i, _)| i)
        .collect();
    if alts.is_empty() {
        let blocked: Vec<String> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t, Run::Finished))
            .map(|(i, t)| format!("thread {i}: {t:?}"))
            .collect();
        st.abort = Some(Abort::Deadlock(format!(
            "all unfinished threads are blocked ({})",
            blocked.join(", ")
        )));
        exec().cv.notify_all();
        return;
    }
    if st.pos >= st.max_choices {
        st.abort = Some(Abort::TooDeep(format!(
            "execution exceeded {} scheduling points — bound the model's retry loops",
            st.max_choices
        )));
        exec().cv.notify_all();
        return;
    }
    let index = if st.pos < st.schedule.len() {
        // Replay: the model must be deterministic for DFS to be sound.
        debug_assert_eq!(
            st.schedule[st.pos].alts, alts,
            "model is non-deterministic: runnable sets diverged on replay"
        );
        st.schedule[st.pos].index
    } else {
        st.schedule.push(Choice { index: 0, alts: alts.clone() });
        0
    };
    st.cur = st.schedule[st.pos].alts[index];
    st.pos += 1;
    exec().cv.notify_all();
}

/// A scheduling point: every modeled shared-memory operation calls this
/// *before* performing its effect.
pub(crate) fn yield_point() {
    let me = tid();
    let mut st = lock_state();
    if st.abort.is_some() {
        drop(st);
        abort_unwind();
    }
    debug_assert_eq!(st.cur, me, "only the scheduled thread may reach a yield point");
    schedule_next(&mut st);
    if st.abort.is_some() {
        // schedule_next itself raised the abort (deadlock / too deep);
        // don't perform the operation this yield point was guarding.
        drop(st);
        abort_unwind();
    }
    while st.cur != me || st.threads[me] != Run::Runnable {
        if st.abort.is_some() {
            drop(st);
            abort_unwind();
        }
        st = match exec().cv.wait(st) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
    }
}

/// Allocates a fresh lock id for a `loom` mutex created during this run.
pub(crate) fn new_lock_id() -> usize {
    let mut st = lock_state();
    let id = st.next_lock_id;
    st.next_lock_id += 1;
    st.locks.insert(id, None);
    id
}

/// Acquires the model lock `id`, blocking (in scheduler terms) while it is
/// held. The caller must already own a yield point for the acquire.
pub(crate) fn acquire_lock(id: usize) {
    let me = tid();
    let mut st = lock_state();
    loop {
        if st.abort.is_some() {
            drop(st);
            abort_unwind();
        }
        match st.locks.get(&id).copied().flatten() {
            None => {
                st.locks.insert(id, Some(me));
                return;
            }
            Some(holder) => {
                debug_assert_ne!(holder, me, "loom::sync::Mutex is not reentrant");
                st.threads[me] = Run::BlockedLock(id);
                schedule_next(&mut st);
                while !(st.cur == me && st.threads[me] == Run::Runnable) {
                    if st.abort.is_some() {
                        drop(st);
                        abort_unwind();
                    }
                    st = match exec().cv.wait(st) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
            }
        }
    }
}

/// Releases the model lock `id` and makes its waiters runnable. Not a
/// scheduling point: the next shared op of the releasing thread yields
/// first, so no interleaving is lost.
pub(crate) fn release_lock(id: usize) {
    let mut st = lock_state();
    st.locks.insert(id, None);
    for t in st.threads.iter_mut() {
        if *t == Run::BlockedLock(id) {
            *t = Run::Runnable;
        }
    }
    // No notify needed: woken threads only run once scheduled, and
    // scheduling happens at this thread's next yield point (or finish).
}

/// Marks the calling thread finished and schedules a successor. Joiners
/// become runnable.
pub(crate) fn finish_thread(panic_payload: Option<String>) {
    let me = tid();
    let mut st = lock_state();
    st.threads[me] = Run::Finished;
    for t in st.threads.iter_mut() {
        if *t == Run::BlockedJoin(me) {
            *t = Run::Runnable;
        }
    }
    if let Some(msg) = panic_payload {
        if st.abort.is_none() {
            st.abort = Some(Abort::Panic(msg));
        }
        exec().cv.notify_all();
        return;
    }
    if st.abort.is_some() || st.threads.iter().all(|t| *t == Run::Finished) {
        exec().cv.notify_all();
        return;
    }
    schedule_next(&mut st);
}

/// Blocks (in scheduler terms) until thread `target` finishes. The caller
/// must already own a yield point.
pub(crate) fn join_thread(target: usize) {
    let me = tid();
    let mut st = lock_state();
    if st.threads[target] == Run::Finished {
        return;
    }
    st.threads[me] = Run::BlockedJoin(target);
    schedule_next(&mut st);
    while !(st.cur == me && st.threads[me] == Run::Runnable) {
        if st.abort.is_some() {
            drop(st);
            abort_unwind();
        }
        st = match exec().cv.wait(st) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
    }
}
