//! Model threads: [`spawn`], [`JoinHandle`], and [`yield_now`].
//!
//! Each model thread is a real OS thread, but it only makes progress when
//! the scheduler in the private `sched` module picks it, so executions are fully
//! deterministic for a given schedule.

use crate::sched;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Handle to a model thread; [`JoinHandle::join`] is a blocking operation
/// in scheduler terms.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

/// Registers the calling OS thread as logical thread `tid`, waits to be
/// scheduled, runs `f`, and reports the outcome to the scheduler. Used for
/// both spawned threads and the model's root closure.
pub(crate) fn run_model_thread<T, F>(tid: usize, result: &Arc<Mutex<Option<T>>>, f: F)
where
    F: FnOnce() -> T,
{
    sched::set_tid(Some(tid));
    // The scheduling wait must sit inside the catch: it aborts (via the
    // sentinel panic) when the execution is torn down before this thread
    // ever ran, and the scheduler still needs the finish_thread below.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        sched::wait_until_scheduled(tid);
        f()
    }));
    match outcome {
        Ok(value) => {
            if let Ok(mut slot) = result.lock() {
                *slot = Some(value);
            }
            sched::finish_thread(None);
        }
        Err(payload) => {
            let is_abort =
                payload.downcast_ref::<&'static str>().is_some_and(|s| *s == sched::ABORT_SENTINEL);
            if is_abort {
                sched::finish_thread(None);
            } else {
                let msg = payload
                    .downcast_ref::<&'static str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "model thread panicked".to_owned());
                sched::finish_thread(Some(msg));
            }
        }
    }
    sched::set_tid(None);
}

/// Spawns a model thread. A scheduling point: the spawner yields right
/// after registration, so "child runs first" interleavings are explored.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let tid = sched::register_thread();
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let handle = std::thread::Builder::new()
        .name(format!("loom-worker-{tid}"))
        .spawn(move || run_model_thread(tid, &slot, f))
        .expect("spawn loom worker thread");
    sched::store_handle(handle);
    sched::yield_point();
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Waits (in scheduler terms) for the thread to finish and returns its
    /// result. A panic on the joined thread aborts the whole execution
    /// before a missing result could be observed.
    pub fn join(self) -> std::thread::Result<T> {
        sched::yield_point();
        sched::join_thread(self.tid);
        let value = self
            .result
            .lock()
            .ok()
            .and_then(|mut slot| slot.take())
            .expect("joined thread finished without a result (panic aborts first)");
        Ok(value)
    }
}

/// An explicit scheduling point, for models that want extra preemption
/// opportunities between operations.
pub fn yield_now() {
    sched::yield_point();
}
