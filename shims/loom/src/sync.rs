//! Model synchronization primitives: [`Mutex`] and the [`atomic`] types.
//!
//! Every operation on these types is a scheduling point (see the private
//! `sched` module), which is what lets the explorer enumerate
//! interleavings. Because the scheduler serializes model threads, the
//! actual storage can be plain `std` primitives; memory orderings are
//! accepted for API compatibility but the exploration is sequentially
//! consistent (it finds interleaving races, not weak-memory reorderings).

use crate::sched;

pub use std::sync::Arc;

/// A model mutex. Contention and the resulting blocking are visible to the
/// scheduler, so lock-based races and deadlocks are explored.
pub struct Mutex<T> {
    /// Scheduler-side identity; `None` until first used inside a model run
    /// (ids are per-execution, and the value is rebuilt each run anyway
    /// because models construct their state inside the closure).
    id: usize,
    inner: std::sync::Mutex<T>,
}

/// Guard for a [`Mutex`]; releases the model lock on drop.
pub struct MutexGuard<'a, T> {
    id: usize,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a model mutex. Must be called inside `loom::model`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { id: sched::new_lock_id(), inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the lock; a scheduling point that blocks while another
    /// model thread holds it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        sched::yield_point();
        sched::acquire_lock(self.id);
        // The scheduler already guarantees exclusivity; the std mutex only
        // stores the data. Poison can only arrive via an aborted run.
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { id: self.id, inner: Some(inner) }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        sched::release_lock(self.id);
    }
}

/// Model atomics: each access is a scheduling point.
pub mod atomic {
    use crate::sched;
    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $val:ty) => {
            /// A model atomic; every access is a scheduling point.
            #[derive(Debug, Default)]
            pub struct $name {
                cell: $std,
            }

            impl $name {
                /// Creates a model atomic. Usable inside `loom::model`.
                pub fn new(v: $val) -> Self {
                    Self { cell: <$std>::new(v) }
                }

                /// Atomic load (scheduling point).
                pub fn load(&self, _order: Ordering) -> $val {
                    sched::yield_point();
                    self.cell.load(Ordering::SeqCst)
                }

                /// Atomic store (scheduling point).
                pub fn store(&self, v: $val, _order: Ordering) {
                    sched::yield_point();
                    self.cell.store(v, Ordering::SeqCst)
                }

                /// Atomic fetch-add (one scheduling point: the read-modify-
                /// write is indivisible, as on hardware).
                pub fn fetch_add(&self, v: $val, _order: Ordering) -> $val {
                    sched::yield_point();
                    self.cell.fetch_add(v, Ordering::SeqCst)
                }

                /// Atomic compare-exchange (one scheduling point).
                pub fn compare_exchange(
                    &self,
                    current: $val,
                    new: $val,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$val, $val> {
                    sched::yield_point();
                    self.cell.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    /// A model atomic boolean; every access is a scheduling point.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        cell: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a model atomic. Usable inside `loom::model`.
        pub fn new(v: bool) -> Self {
            Self { cell: std::sync::atomic::AtomicBool::new(v) }
        }

        /// Atomic load (scheduling point).
        pub fn load(&self, _order: Ordering) -> bool {
            sched::yield_point();
            self.cell.load(Ordering::SeqCst)
        }

        /// Atomic store (scheduling point).
        pub fn store(&self, v: bool, _order: Ordering) {
            sched::yield_point();
            self.cell.store(v, Ordering::SeqCst)
        }
    }
}
