//! Offline shim for the [`parking_lot`](https://docs.rs/parking_lot)
//! lock API, backed by `std::sync`.
//!
//! The build container has no crates-io mirror, so the workspace vendors
//! the tiny subset of parking_lot it actually uses: `Mutex` and `RwLock`
//! whose lock methods return guards directly (no `LockResult`). Poisoning
//! is ignored, which matches parking_lot semantics: a panic while holding
//! the lock does not poison it for subsequent users.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader–writer lock whose lock methods never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_unlocks() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let mut l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        l.get_mut().clear();
        assert!(l.read().is_empty());
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // parking_lot semantics: still usable
    }
}
