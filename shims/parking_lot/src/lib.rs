#![forbid(unsafe_code)]

//! Offline shim for the [`parking_lot`](https://docs.rs/parking_lot)
//! lock API, backed by `std::sync`.
//!
//! The build container has no crates-io mirror, so the workspace vendors
//! the tiny subset of parking_lot it actually uses: `Mutex` and `RwLock`
//! whose lock methods return guards directly (no `LockResult`). Poisoning
//! is ignored, which matches parking_lot semantics: a panic while holding
//! the lock does not poison it for subsequent users.
//!
//! # Lock-order deadlock detection (debug builds)
//!
//! In builds with `debug_assertions` every blocking acquisition records a
//! "held → acquired" edge in a process-global lock-order graph, and
//! panics the moment an acquisition would close a cycle — i.e. the moment
//! two code paths have demonstrably used a pair (or chain) of locks in
//! opposite orders, whether or not the schedule actually deadlocked. This
//! turns a nondeterministic hang into a deterministic, attributable test
//! failure. See `docs/ANALYSIS.md` ("Lock-order graph").
//!
//! Design notes:
//! - Lock identities are lazily assigned, monotonically increasing, and
//!   never recycled, so edges from dropped locks can never be confused
//!   with live ones.
//! - The fast path for the common case (acquiring with no other lock
//!   held — all hot paths in this workspace) touches only a thread-local
//!   stack and never the global graph.
//! - Edges are recorded *before* blocking, so a genuine ABBA interleaving
//!   panics on the second thread instead of hanging the test suite.
//! - `try_lock`/`try_read` cannot block, so a successful try-acquisition
//!   imposes no ordering constraint; it only pushes the held stack so
//!   later blocking acquisitions see it as held.
//! - Re-acquiring the same lock id (recursive `read`) is not an order
//!   inversion and is ignored by the graph; it can still deadlock against
//!   a queued writer, which the model checker (`shims/loom`) covers.
//! - Release builds compile all of this out: guards carry no extra state
//!   and no `Drop` impl beyond the inner std guard.

use std::sync;

#[cfg(debug_assertions)]
mod order {
    //! The lock-order graph: nodes are lock ids, a directed edge `a → b`
    //! means "some thread blocked on `b` while holding `a`". A cycle
    //! means two orders coexist, i.e. a latent deadlock.

    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// Id source; starts at 1 so 0 can mean "not yet assigned".
    static NEXT_ID: AtomicUsize = AtomicUsize::new(1);

    /// Resolves (assigning on first use) the id stored in a lock's
    /// `order_id` cell.
    pub(crate) fn lock_id(cell: &AtomicUsize) -> usize {
        let id = cell.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match cell.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => fresh,
            Err(existing) => existing, // another thread won the race; ids stay unique
        }
    }

    fn graph() -> &'static Mutex<HashMap<usize, HashSet<usize>>> {
        static GRAPH: OnceLock<Mutex<HashMap<usize, HashSet<usize>>>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
    }

    thread_local! {
        /// Ids of locks the current thread holds, in acquisition order.
        static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    /// Is `to` reachable from `from` in the recorded graph?
    fn reachable(g: &HashMap<usize, HashSet<usize>>, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen: HashSet<usize> = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = g.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Called before a *blocking* acquisition of `id`: records edges from
    /// every currently-held lock and panics if one would close a cycle.
    pub(crate) fn before_blocking_acquire(id: usize) {
        HELD.with(|h| {
            let held = h.borrow();
            if held.is_empty() {
                return; // fast path: no ordering constraint, skip the global graph
            }
            let mut g = match graph().lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            for &prior in held.iter() {
                if prior == id {
                    continue; // recursive read of the same lock: not an inversion
                }
                if g.get(&prior).is_some_and(|s| s.contains(&id)) {
                    continue; // edge already known (and known acyclic)
                }
                if reachable(&g, id, prior) {
                    // cqa-lint: allow(no-panic-in-request-path): the deadlock detector is debug-assertions-only and a lock-order cycle must abort loudly, not limp on
                    panic!(
                        "parking_lot shim: lock-order cycle — this thread is acquiring \
                         lock #{id} while holding lock #{prior}, but the opposite order \
                         #{id} → … → #{prior} was already recorded on some code path; \
                         these paths can deadlock under an adverse schedule"
                    );
                }
                g.entry(prior).or_default().insert(id);
            }
        });
    }

    /// Called after any successful acquisition (blocking or try).
    pub(crate) fn on_acquired(id: usize) {
        HELD.with(|h| h.borrow_mut().push(id));
    }

    /// Called from guard drops.
    pub(crate) fn on_released(id: usize) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&x| x == id) {
                held.remove(pos);
            }
        });
    }
}

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    order_id: std::sync::atomic::AtomicUsize,
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`]; unlocks on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    order_id: usize,
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            #[cfg(debug_assertions)]
            order_id: std::sync::atomic::AtomicUsize::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let id = order::lock_id(&self.order_id);
        #[cfg(debug_assertions)]
        order::before_blocking_acquire(id);
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        #[cfg(debug_assertions)]
        order::on_acquired(id);
        MutexGuard {
            #[cfg(debug_assertions)]
            order_id: id,
            inner,
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        let id = order::lock_id(&self.order_id);
        #[cfg(debug_assertions)]
        order::on_acquired(id);
        Some(MutexGuard {
            #[cfg(debug_assertions)]
            order_id: id,
            inner,
        })
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        order::on_released(self.order_id);
    }
}

/// A reader–writer lock whose lock methods never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    order_id: std::sync::atomic::AtomicUsize,
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`]; unlocks on drop.
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    order_id: usize,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`]; unlocks on drop.
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    order_id: usize,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            #[cfg(debug_assertions)]
            order_id: std::sync::atomic::AtomicUsize::new(0),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let id = order::lock_id(&self.order_id);
        #[cfg(debug_assertions)]
        order::before_blocking_acquire(id);
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        #[cfg(debug_assertions)]
        order::on_acquired(id);
        RwLockReadGuard {
            #[cfg(debug_assertions)]
            order_id: id,
            inner,
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let id = order::lock_id(&self.order_id);
        #[cfg(debug_assertions)]
        order::before_blocking_acquire(id);
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        #[cfg(debug_assertions)]
        order::on_acquired(id);
        RwLockWriteGuard {
            #[cfg(debug_assertions)]
            order_id: id,
            inner,
        }
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        let id = order::lock_id(&self.order_id);
        #[cfg(debug_assertions)]
        order::on_acquired(id);
        Some(RwLockReadGuard {
            #[cfg(debug_assertions)]
            order_id: id,
            inner,
        })
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        order::on_released(self.order_id);
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        order::on_released(self.order_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_unlocks() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let mut l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        l.get_mut().clear();
        assert!(l.read().is_empty());
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // parking_lot semantics: still usable
    }

    #[cfg(debug_assertions)]
    mod lock_order {
        use super::super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        #[test]
        fn consistent_order_is_fine() {
            let a = Mutex::new(0);
            let b = Mutex::new(0);
            for _ in 0..3 {
                let _ga = a.lock();
                let _gb = b.lock();
            }
        }

        #[test]
        fn inverted_order_panics() {
            let a = Mutex::new(0);
            let b = Mutex::new(0);
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            // No thread is blocked — the *order inversion itself* is caught.
            let r = catch_unwind(AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.lock();
            }));
            let msg = match r {
                Ok(()) => panic!("inverted acquisition order not detected"),
                Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
            };
            assert!(msg.contains("lock-order cycle"), "unexpected message: {msg}");
        }

        #[test]
        fn transitive_cycle_panics() {
            let a = RwLock::new(0);
            let b = Mutex::new(0);
            let c = RwLock::new(0);
            {
                let _ga = a.write();
                let _gb = b.lock();
            }
            {
                let _gb = b.lock();
                let _gc = c.read();
            }
            // a → b → c recorded; c → a closes a cycle through b.
            let r = catch_unwind(AssertUnwindSafe(|| {
                let _gc = c.write();
                let _ga = a.read();
            }));
            let msg = match r {
                Ok(()) => panic!("transitive inversion not detected"),
                Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
            };
            assert!(msg.contains("lock-order cycle"), "unexpected message: {msg}");
        }

        #[test]
        fn try_lock_imposes_no_order() {
            let a = Mutex::new(0);
            let b = Mutex::new(0);
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            // Opposite order, but via try_lock: cannot block, so no edge.
            let _gb = b.lock();
            let _ga = a.try_lock().expect("uncontended");
        }
    }
}
