//! Offline shim for the [`proptest`](https://docs.rs/proptest) API subset
//! this workspace uses.
//!
//! The build container has no crates-io mirror, so the workspace vendors a
//! minimal property-testing core: the [`proptest!`] macro, the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, integer/float
//! ranges, `Just`, booleans, options, vectors, 2-tuples, and a tiny
//! character-class string generator. Differences from real proptest:
//!
//! * **No shrinking.** A failing case reports its deterministic seed; fix
//!   the bug or replay with `PROPTEST_SEED`.
//! * Case seeds are derived from the test name and case index, so runs
//!   are reproducible by construction.
//! * `PROPTEST_CASES` overrides the configured case count.

#![forbid(unsafe_code)]

use std::fmt;

mod rng;
mod strategies;

pub use rng::TestRng;
pub use strategies::{BoolAny, FlatMap, IntAny, Just, Map, OptionStrategy, SizeRange, VecStrategy};

/// A value generator: the core abstraction of property testing.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed property assertion (carried out of the case body).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic seed of one test case, overridable via
/// `PROPTEST_SEED` for replay.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    if let Ok(v) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = v.parse() {
            return seed;
        }
    }
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15)
}

/// Runs properties: `proptest! { #![proptest_config(cfg)] fn name(x in strategy, ...) { body } ... }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; ) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = $crate::ProptestConfig::resolved_cases(&$cfg);
            for case in 0..cases {
                let seed = $crate::seed_for(stringify!($name), case);
                let mut rng = $crate::TestRng::new(seed);
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {case} (replay with PROPTEST_SEED={seed}): {e}",
                        stringify!($name),
                    );
                }
            }
        }
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
}

/// Asserts within a property body; failure fails the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
}

/// Strategies for booleans.
pub mod bool {
    /// Generates `true` or `false` uniformly.
    pub const ANY: crate::BoolAny = crate::BoolAny;
}

/// Strategies for numeric types, named like real proptest's modules.
pub mod num {
    /// Strategies for `u64`.
    pub mod u64 {
        /// Any `u64`, uniformly.
        pub const ANY: crate::IntAny<u64> = crate::IntAny(std::marker::PhantomData);
    }
    /// Strategies for `u32`.
    pub mod u32 {
        /// Any `u32`, uniformly.
        pub const ANY: crate::IntAny<u32> = crate::IntAny(std::marker::PhantomData);
    }
    /// Strategies for `i64`.
    pub mod i64 {
        /// Any `i64`, uniformly.
        pub const ANY: crate::IntAny<i64> = crate::IntAny(std::marker::PhantomData);
    }
}

/// Collection strategies.
pub mod collection {
    use crate::{SizeRange, Strategy, VecStrategy};

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

/// Option strategies.
pub mod option {
    use crate::{OptionStrategy, Strategy};

    /// `Some` from `inner` about three quarters of the time, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        assert_eq!(crate::seed_for("a", 0), crate::seed_for("a", 0));
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("a", 1));
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("b", 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..=7, y in -5i64..5, z in 1e-3f64..1e3) {
            prop_assert!((3..=7).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((1e-3..1e3).contains(&z));
        }

        #[test]
        fn combinators_compose(v in prop::collection::vec((0i64..3, 0i64..3), 1..8),
                               opt in prop::option::of(1usize..=4),
                               flag in prop::bool::ANY,
                               s in "[a-c\\t]{0,6}") {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (a, b) in &v {
                prop_assert!((0..3).contains(a) && (0..3).contains(b));
            }
            if let Some(k) = opt {
                prop_assert!((1..=4).contains(&k));
            }
            let _ = flag;
            prop_assert!(s.len() <= 6);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c) || c == '\t'));
        }

        #[test]
        fn map_and_flat_map(n in (1usize..4).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0u32..10, n))
        }).prop_map(|(n, v)| (n, v))) {
            let (n, v) = n;
            prop_assert_eq!(v.len(), n);
        }
    }
}
