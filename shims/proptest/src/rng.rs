//! The shim's internal PRNG: SplitMix64, seeded per test case.

/// A small, fast, deterministic generator for test-case values.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` for `n > 0` (rejection-free; the modulo bias is
    /// negligible for test-generation purposes).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(1);
        for n in [1u64, 2, 3, 10, 1 << 40] {
            for _ in 0..50 {
                assert!(rng.below(n) < n);
            }
        }
    }

    #[test]
    fn f64_unit_in_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let x = rng.f64_unit();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
