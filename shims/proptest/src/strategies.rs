//! The strategy implementations: ranges, `Just`, booleans, options,
//! vectors, tuples, combinators, and a character-class string generator.

use crate::{Strategy, TestRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Strategy yielding any value of an integer type (see [`crate::num`]).
#[derive(Debug, Clone, Copy)]
pub struct IntAny<T>(pub PhantomData<T>);

/// Strategy yielding `true`/`false` uniformly (see [`crate::bool::ANY`]).
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty strategy range");
                let width = (e as i128 - s as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (s as i128 + rng.below(width as u64) as i128) as $t
            }
        }
        impl Strategy for IntAny<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A length specification for [`crate::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length, inclusive.
    pub min: usize,
    /// Maximum length, inclusive.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// The result of [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) elem: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// The result of [`crate::option::of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) < 3 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// String patterns: a `&str` is a strategy generating strings matching a
/// small regex subset — concatenations of literal characters, escapes
/// (`\t`, `\n`, `\r`, `\\`), and character classes `[...]` (with ranges
/// and the same escapes), each optionally repeated `{m,n}` or `{m}`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

enum PatternItem {
    Literal(char),
    Class(Vec<(char, char)>),
}

fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars>,
    pattern: &str,
) -> Vec<(char, char)> {
    let mut out = Vec::new();
    loop {
        let c = match chars.next() {
            Some(']') => break,
            Some('\\') => unescape(chars.next(), pattern),
            Some(c) => c,
            None => panic!("unterminated '[' in pattern '{pattern}'"),
        };
        if chars.peek() == Some(&'-') {
            chars.next();
            let hi = match chars.next() {
                Some('\\') => unescape(chars.next(), pattern),
                Some(']') => panic!("dangling '-' in class in pattern '{pattern}'"),
                Some(hi) => hi,
                None => panic!("unterminated '[' in pattern '{pattern}'"),
            };
            out.push((c, hi));
        } else {
            out.push((c, c));
        }
    }
    assert!(!out.is_empty(), "empty character class in pattern '{pattern}'");
    out
}

fn unescape(c: Option<char>, pattern: &str) -> char {
    match c {
        Some('t') => '\t',
        Some('n') => '\n',
        Some('r') => '\r',
        Some('\\') => '\\',
        Some(c) => c,
        None => panic!("dangling escape in pattern '{pattern}'"),
    }
}

fn parse_repetition(
    chars: &mut std::iter::Peekable<std::str::Chars>,
    pattern: &str,
) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (lo, hi) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().unwrap_or_else(|_| panic!("bad repetition in '{pattern}'")),
                    hi.parse().unwrap_or_else(|_| panic!("bad repetition in '{pattern}'")),
                ),
                None => {
                    let n =
                        spec.parse().unwrap_or_else(|_| panic!("bad repetition in '{pattern}'"));
                    (n, n)
                }
            };
            assert!(lo <= hi, "bad repetition bounds in '{pattern}'");
            return (lo, hi);
        }
        spec.push(c);
    }
    panic!("unterminated '{{' in pattern '{pattern}'");
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let item = match c {
            '[' => PatternItem::Class(parse_class(&mut chars, pattern)),
            '\\' => PatternItem::Literal(unescape(chars.next(), pattern)),
            c => PatternItem::Literal(c),
        };
        let (lo, hi) = parse_repetition(&mut chars, pattern);
        let count = lo + rng.below((hi - lo) as u64 + 1) as usize;
        for _ in 0..count {
            match &item {
                PatternItem::Literal(c) => out.push(*c),
                PatternItem::Class(ranges) => {
                    let (a, b) = ranges[rng.below(ranges.len() as u64) as usize];
                    let span = b as u32 - a as u32 + 1;
                    let code = a as u32 + rng.below(span as u64) as u32;
                    out.push(char::from_u32(code).expect("valid class character"));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_their_bounds() {
        let mut rng = TestRng::new(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert((1u32..=4).generate(&mut rng));
        }
        assert_eq!(seen, (1..=4).collect());
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = TestRng::new(4);
        for _ in 0..50 {
            let v = (1u64..=u64::MAX).generate(&mut rng);
            assert!(v >= 1);
        }
    }

    #[test]
    fn negative_int_ranges_work() {
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            let v = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn vec_sizes_respect_spec() {
        let mut rng = TestRng::new(6);
        for _ in 0..50 {
            let v = crate::collection::vec(0u32..10, 2..=5).generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            let exact = crate::collection::vec(0u32..10, 3).generate(&mut rng);
            assert_eq!(exact.len(), 3);
        }
    }

    #[test]
    fn string_patterns_match_their_class() {
        let mut rng = TestRng::new(7);
        for _ in 0..100 {
            let s = "[a-z\\t\\\\]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '\t' || c == '\\'));
        }
    }

    #[test]
    fn literal_patterns_and_exact_repeats() {
        let mut rng = TestRng::new(8);
        assert_eq!("abc".generate(&mut rng), "abc");
        assert_eq!("x{3}".generate(&mut rng), "xxx");
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = TestRng::new(9);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match crate::option::of(0u32..10).generate(&mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
