#![warn(missing_docs)]

//! `cqa` — approximate consistent query answering under primary keys.
//!
//! A from-scratch Rust reproduction of *Benchmarking Approximate
//! Consistent Query Answering* (Calautti, Console, Pieris — PODS 2021):
//! the four randomized approximation schemes for the **relative
//! frequency** of a query answer over the repairs of an inconsistent
//! database, together with the complete benchmark infrastructure the
//! paper built around them (data generator, query-aware noise generator,
//! static/dynamic query generators, and the scenario families of §6–§7).
//!
//! # Quick start
//!
//! ```
//! use cqa::prelude::*;
//!
//! // The paper's Example 1.1: an Employee relation keyed on id.
//! let schema = Schema::builder()
//!     .relation(
//!         "employee",
//!         &[("id", ColumnType::Int), ("name", ColumnType::Str), ("dept", ColumnType::Str)],
//!         Some(1),
//!     )
//!     .build();
//! let mut db = Database::new(schema);
//! for (id, name, dept) in
//!     [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT")]
//! {
//!     db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])
//!         .unwrap();
//! }
//!
//! // "Do employees 1 and 2 work in the same department?"
//! let q = parse(db.schema(), "Q() :- employee(1, n1, d), employee(2, n2, d)").unwrap();
//!
//! // Approximate the relative frequency with ε = 0.1, δ = 0.25.
//! let mut rng = Mt64::new(42);
//! let res = apx_cqa(&db, &q, Scheme::Natural, 0.1, 0.25, &Budget::unbounded(), &mut rng)
//!     .unwrap();
//! let freq = res.answers[0].frequency;
//! assert!((freq - 0.5).abs() < 0.1); // true in 2 of the 4 repairs
//! ```
//!
//! # Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`common`] | `cqa-common` | MT19937-64, alias sampling, log-space numbers |
//! | [`storage`] | `cqa-storage` | schemas, tables, blocks, the database |
//! | [`query`] | `cqa-query` | CQ AST, parser, homomorphism enumeration |
//! | [`repair`] | `cqa-repair` | repair counting/enumeration/sampling, exact CQA |
//! | [`synopsis`] | `cqa-synopsis` | `(Σ,Q)`-synopses, exact `R(H,B)` baselines |
//! | [`core`] | `cqa-core` | the four approximation schemes + `ApxCQA` |
//! | [`tpch`], [`tpcds`] | generators | TPC-H/TPC-DS-like schemas, data, workloads |
//! | [`noise`] | `cqa-noise` | the query-aware noise generator |
//! | [`qgen`] | `cqa-qgen` | static + dynamic query generators |
//! | [`scenarios`] | `cqa-scenarios` | scenario families and figure pipelines |
//! | [`server`] | `cqa-server` | TCP daemon: synopsis cache, worker pool, metrics |
//! | [`obs`] | `cqa-obs` | span tracing, flight recorder, metrics registry |
//! | [`perf`] | `cqa-perf` | continuous benchmarking: suites, `BENCH_<pr>.json`, gates |
//! | [`chaos`] | `cqa-chaos` | deterministic fault injection for the request path |

pub use cqa_chaos as chaos;
pub use cqa_common as common;
pub use cqa_core as core;
pub use cqa_noise as noise;
pub use cqa_obs as obs;
pub use cqa_perf as perf;
pub use cqa_qgen as qgen;
pub use cqa_query as query;
pub use cqa_repair as repair;
pub use cqa_scenarios as scenarios;
pub use cqa_server as server;
pub use cqa_storage as storage;
pub use cqa_synopsis as synopsis;
pub use cqa_tpcds as tpcds;
pub use cqa_tpch as tpch;

/// The names most programs need, in one import.
pub mod prelude {
    pub use cqa_common::{CqaError, LogNum, Mt64, Result};
    pub use cqa_core::{approx_relative_frequency, apx_cqa, Budget, Scheme, ALL_SCHEMES};
    pub use cqa_query::{answers, parse, ConjunctiveQuery};
    pub use cqa_repair::{consistent_answers_exact, relative_frequency_exact};
    pub use cqa_server::{Client, QueryRequest, Server, ServerConfig};
    pub use cqa_storage::{is_consistent, ColumnType, Database, Datum, Schema, Value};
    pub use cqa_synopsis::{build_synopses, BuildOptions, SynopsisStats};
}
