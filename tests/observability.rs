//! Cross-crate observability tests: a traced scenario run must export a
//! valid, non-empty Chrome trace covering synopsis builds and every
//! scheme's sampling loop, and the server's `stats` command must render
//! the same metrics registry consistently as JSON and Prometheus text.

use cqa::common::Json;
use cqa::prelude::*;
use cqa::scenarios::{figures, BenchConfig, Pool};
use cqa::server::Response;
use cqa_noise::{add_query_aware_noise, NoiseSpec};

/// Walks a parsed Chrome trace array and collects the event names.
fn event_names(trace: &Json) -> Vec<String> {
    let Json::Arr(events) = trace else { panic!("chrome trace must be a JSON array") };
    events
        .iter()
        .map(|e| {
            let Json::Obj(fields) = e else { panic!("trace event must be an object") };
            match fields.get("name") {
                Some(Json::Str(name)) => name.clone(),
                other => panic!("trace event needs a string name, got {other:?}"),
            }
        })
        .collect()
}

fn get_num(obj: &Json, key: &str) -> f64 {
    let Json::Obj(fields) = obj else { panic!("expected a JSON object") };
    match fields.get(key) {
        Some(Json::Num(n)) => *n,
        other => panic!("expected number at {key:?}, got {other:?}"),
    }
}

#[test]
fn traced_scenario_run_exports_a_complete_chrome_trace() {
    cqa::obs::trace::clear();
    cqa::obs::set_enabled(true);
    let pool = Pool::build(BenchConfig::smoke()).unwrap();
    let figs = figures::fig1_noise(&pool, &[(0.0, 1)]);
    cqa::obs::set_enabled(false);
    assert!(!figs.is_empty(), "smoke scenario must produce a figure");

    let text = cqa::obs::chrome_trace_string();
    let trace = Json::parse(&text).expect("exported trace must be valid JSON");
    let names = event_names(&trace);
    assert!(!names.is_empty(), "trace must be non-empty");
    assert!(
        names.iter().any(|n| n == "synopsis/build"),
        "trace must cover synopsis construction; saw {names:?}"
    );
    for scheme in ["Natural", "KL", "KLM", "Cover"] {
        assert!(
            names.iter().any(|n| n == &format!("scheme/{scheme}")),
            "trace must cover the {scheme} sampling loop; saw {names:?}"
        );
    }
    assert!(
        names.iter().any(|n| n == "scenario/run_pair"),
        "trace must cover the scenario driver; saw {names:?}"
    );
}

#[test]
fn server_stats_agree_between_json_registry_and_prometheus_text() {
    let base = cqa_tpch::generate(cqa_tpch::TpchConfig { scale: 0.0003, seed: 23 });
    let q = parse(base.schema(), "Q(rn) :- region(rk, rn)").unwrap();
    let mut rng = Mt64::new(23);
    let (db, _) =
        add_query_aware_noise(&base, &q, NoiseSpec { p: 1.0, lmin: 2, umax: 3 }, &mut rng).unwrap();

    let handle = Server::bind(
        db,
        ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServerConfig::default() },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let queries = 3u64;
    for seed in 0..queries {
        let resp = client
            .query(QueryRequest {
                query: "Q(rn) :- region(rk, rn)".into(),
                eps: 0.2,
                delta: 0.25,
                seed,
                ..QueryRequest::default()
            })
            .unwrap();
        assert!(matches!(resp, Response::Answers { .. }), "expected answers, got {resp:?}");
    }

    let stats = client.stats_json().unwrap();
    assert_eq!(get_num(&stats, "queries_ok") as u64, queries);
    let Json::Obj(fields) = &stats else { panic!("stats must be a JSON object") };
    let registry = fields.get("registry").expect("stats must nest the metrics registry");
    assert_eq!(get_num(registry, "server_queries_ok_total") as u64, queries);
    assert_eq!(get_num(registry, "server_requests_total"), get_num(&stats, "requests"));
    assert_eq!(get_num(registry, "server_cache_hits_total"), get_num(&stats, "cache_hits"));
    let latency = {
        let Json::Obj(reg) = registry else { panic!("registry must be a JSON object") };
        reg.get("server_query_latency").expect("registry must carry the latency histogram")
    };
    assert_eq!(get_num(latency, "count") as u64, queries);

    let text = client.stats_prometheus().unwrap();
    assert!(
        text.contains(&format!("server_queries_ok_total {queries}")),
        "prometheus text must report the query count:\n{text}"
    );
    assert!(text.contains("# TYPE server_query_latency histogram"), "missing histogram:\n{text}");
    assert!(
        text.contains(&format!("server_query_latency_count {queries}")),
        "histogram count must match:\n{text}"
    );
    assert!(text.contains("le=\"+Inf\""), "histogram must close with +Inf:\n{text}");

    // The trace command always answers with a (possibly empty) event array.
    let trace = client.trace().unwrap();
    assert!(matches!(trace, Json::Arr(_)), "trace response must be a JSON array");
}

#[test]
fn flight_recorder_attributes_requests_end_to_end() {
    let base = cqa_tpch::generate(cqa_tpch::TpchConfig { scale: 0.0003, seed: 29 });
    let q = parse(base.schema(), "Q(rn) :- region(rk, rn)").unwrap();
    let mut rng = Mt64::new(29);
    let (db, _) =
        add_query_aware_noise(&base, &q, NoiseSpec { p: 1.0, lmin: 2, umax: 3 }, &mut rng).unwrap();

    // Threshold 0: every request overruns it, so each one lands in the
    // slow/error log with its span tree — the "injected slow request"
    // without an actual sleep.
    let handle = Server::bind(
        db,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            slow_threshold_ms: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let run = |client: &mut Client, query: &str, id: &str, seed: u64| {
        client
            .query(QueryRequest {
                query: query.into(),
                eps: 0.2,
                delta: 0.25,
                seed,
                request_id: Some(id.into()),
                ..QueryRequest::default()
            })
            .unwrap()
    };
    let miss_resp = run(&mut client, "Q(rn) :- region(rk, rn)", "it-flight-miss", 1);
    assert!(matches!(miss_resp, Response::Answers { cached: false, .. }), "{miss_resp:?}");
    let hit_resp = run(&mut client, "Q(rn) :- region(rk, rn)", "it-flight-hit", 2);
    assert!(matches!(hit_resp, Response::Answers { cached: true, .. }), "{hit_resp:?}");
    let err_resp = run(&mut client, "Q() :- no_such_relation(x)", "it-flight-err", 3);
    assert!(matches!(err_resp, Response::Error { .. }), "{err_resp:?}");
    // A request without a client id gets a server-generated `srv-…` one.
    let anon = client
        .query(QueryRequest {
            query: "Q(rn) :- region(rk, rn)".into(),
            eps: 0.2,
            delta: 0.25,
            seed: 4,
            ..QueryRequest::default()
        })
        .unwrap();
    assert!(matches!(anon, Response::Answers { .. }), "{anon:?}");

    // The recorder is process-global (other tests may also have recorded),
    // so look digests up by our unique client-supplied ids.
    let (digests, _dropped) = client.debug_flight().unwrap();
    let find = |id: &str| {
        digests
            .iter()
            .find(|d| d.request_id == id)
            .unwrap_or_else(|| panic!("digest for {id} missing; got {digests:?}"))
    };
    let miss = find("it-flight-miss");
    assert!(!miss.cache_hit);
    assert_eq!(miss.scheme, "KLM");
    assert_eq!(miss.error, None);
    assert!(miss.samples > 0, "convergence telemetry must count samples: {miss:?}");
    assert!(miss.ci_half_width > 0.0, "terminal CI half-width must export: {miss:?}");
    assert!(miss.variance > 0.0, "running variance must export: {miss:?}");
    assert!(miss.queue_wait_us <= miss.total_us);
    assert!(miss.scheme_us <= miss.total_us);
    assert_ne!(miss.query_fp, format!("{:016x}", 0u64), "parsed queries carry a fingerprint");
    let hit = find("it-flight-hit");
    assert!(hit.cache_hit);
    assert_eq!(hit.preprocess_us, 0, "cache hits skip preprocessing");
    assert_eq!(hit.query_fp, miss.query_fp, "same canonical query, same fingerprint");
    let err = find("it-flight-err");
    assert_eq!(err.error.as_deref(), Some("bad_request"));
    assert!(
        digests.iter().any(|d| d.request_id.starts_with("srv-")),
        "id-less requests get server-generated ids; got {digests:?}"
    );

    // Every request overran the zero threshold: the slow/error log carries
    // the full span tree of the slow request and of the failed one.
    let slowlog = client.debug_slowlog().unwrap();
    let slow = slowlog
        .iter()
        .find(|e| e.request_id == "it-flight-miss")
        .unwrap_or_else(|| panic!("slow request missing from slowlog: {slowlog:?}"));
    let Json::Arr(spans) = &slow.spans else { panic!("spans must be a JSON array") };
    assert!(!spans.is_empty(), "slowlog entries must carry the captured span tree");
    let span_names: Vec<String> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str).map(str::to_owned))
        .collect();
    for expected in ["server/request", "server/synopsis_build", "server/sampling"] {
        assert!(
            span_names.iter().any(|n| n == expected),
            "span tree must include {expected}; saw {span_names:?}"
        );
    }
    assert!(slowlog.iter().any(|e| e.request_id == "it-flight-err"), "errors tail-sample too");

    // The stats payload mirrors the per-request gauges.
    let stats = client.stats_json().unwrap();
    assert!(get_num(&stats, "slow_requests") >= 4.0);
    assert!(get_num(&stats, "last_request_samples") > 0.0);
    assert!(get_num(&stats, "slowlog_entries") > 0.0);
}
