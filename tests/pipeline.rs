//! Cross-crate integration: the full benchmark pipeline on a small TPC-H
//! instance — data generation → SQG → query-aware noise → DQG →
//! preprocessing → all four schemes → comparison against exact CQA where
//! the instance permits.

use cqa::noise::{add_query_aware_noise, NoiseSpec};
use cqa::prelude::*;
use cqa::qgen::{dqg, sqg, SqgSpec};
use cqa::tpch::{generate, TpchConfig};

#[test]
fn full_pipeline_runs_and_agrees_with_ground_truth() {
    let base = generate(TpchConfig { scale: 0.0005, seed: 77 });
    assert!(is_consistent(&base));
    let mut rng = Mt64::new(99);

    // A 1-join query, retried until non-empty, as the pool builder does.
    let q = loop {
        let Ok(q) = sqg(&base, SqgSpec { joins: 1, constants: 2, proj_fraction: 1.0 }, &mut rng)
        else {
            continue;
        };
        if q.join_count() == 1 && !answers(&base, &q).unwrap().is_empty() {
            break q;
        }
    };

    // Inject a mild amount of noise so exact repair enumeration stays
    // feasible on the query-relevant part.
    let (noisy, report) =
        add_query_aware_noise(&base, &q, NoiseSpec { p: 0.2, lmin: 2, umax: 3 }, &mut rng)
            .expect("noise");
    assert!(report.total_added > 0);
    assert!(!is_consistent(&noisy));

    let syn = build_synopses(&noisy, &q, BuildOptions::default()).expect("synopses");
    assert!(syn.output_size() > 0);

    // Exact per-tuple frequencies on the synopsis (small enough), compared
    // with what each scheme reports.
    for entry in syn.entries.iter().take(5) {
        let exact =
            cqa::synopsis::exact_ratio_enumerate(&entry.pair, 10_000_000).expect("small pair");
        for scheme in ALL_SCHEMES {
            let mut srng = Mt64::new(5);
            let out = approx_relative_frequency(
                &entry.pair,
                scheme,
                0.1,
                0.25,
                &Budget::unbounded(),
                &mut srng,
            )
            .expect("approximation");
            assert!(
                (out.estimate - exact).abs() <= 0.2 * exact + 1e-9,
                "{scheme} estimated {} vs exact {exact}",
                out.estimate
            );
        }
    }
}

#[test]
fn dqg_balances_transfer_to_apx_cqa() {
    let base = generate(TpchConfig { scale: 0.0005, seed: 31 });
    let mut rng = Mt64::new(13);
    let q = loop {
        let Ok(q) = sqg(&base, SqgSpec { joins: 2, constants: 2, proj_fraction: 1.0 }, &mut rng)
        else {
            continue;
        };
        if q.join_count() == 2 && !answers(&base, &q).unwrap().is_empty() {
            break q;
        }
    };
    let (noisy, _) =
        add_query_aware_noise(&base, &q, NoiseSpec::with_p(0.4), &mut rng).expect("noise");
    let results = dqg(&noisy, &q, &[0.5, 1.0], 100, &mut rng).expect("dqg");
    for r in &results {
        // The projected query must run through the full ApxCQA driver.
        let res = apx_cqa(&noisy, &r.query, Scheme::Klm, 0.1, 0.25, &Budget::unbounded(), &mut rng)
            .expect("apx cqa");
        assert!(!res.answers.is_empty());
        for te in &res.answers {
            assert!((0.0..=1.0).contains(&te.frequency));
        }
    }
}

#[test]
fn boolean_and_projected_queries_share_candidate_answers() {
    // The Boolean version of a query is entailed (R > 0) iff the original
    // has some answer — Lemma 4.1(4) seen through the driver.
    let base = generate(TpchConfig { scale: 0.0005, seed: 55 });
    let mut rng = Mt64::new(3);
    let q = parse(base.schema(), "Q(nn) :- supplier(sk, sn, nk, bal), nation(nk, nn, rk)").unwrap();
    let (noisy, _) =
        add_query_aware_noise(&base, &q, NoiseSpec::with_p(0.5), &mut rng).expect("noise");
    let syn_q = build_synopses(&noisy, &q, BuildOptions::default()).unwrap();
    let syn_bool = build_synopses(&noisy, &q.boolean(), BuildOptions::default()).unwrap();
    assert_eq!(syn_bool.output_size(), 1);
    assert_eq!(syn_q.hom_size, syn_bool.hom_size);
    // The Boolean synopsis merges every image into one admissible pair.
    assert_eq!(syn_bool.entries[0].pair.num_images(), syn_bool.hom_size);
}

#[test]
fn validation_queries_flow_through_the_driver() {
    let db = cqa::tpch::generate(TpchConfig { scale: 0.001, seed: 8 });
    let queries = cqa::tpch::validation_queries(db.schema()).unwrap();
    let mut rng = Mt64::new(21);
    // Q1H is non-empty at this scale and single-atom, so fast.
    let (_, q1) = queries.iter().find(|(n, _)| n == "Q1H").unwrap();
    let (noisy, _) =
        add_query_aware_noise(&db, q1, NoiseSpec::with_p(0.3), &mut rng).expect("noise");
    let res = apx_cqa(&noisy, q1, Scheme::Natural, 0.1, 0.25, &Budget::unbounded(), &mut rng)
        .expect("runs");
    assert!(!res.answers.is_empty());
}
