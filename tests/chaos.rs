//! Chaos-suite integration tests: seeded fault plans replayed against a
//! real in-process server, asserting the reliability invariants from
//! `docs/RELIABILITY.md` — no abort, every request resolves, answers stay
//! bit-identical to the offline driver, failures leave a flight-recorder
//! trace.
//!
//! Fault injection is process-global state, so every test here holds
//! `CHAOS_LOCK` for its full body; other test binaries are other
//! processes and never see these plans.

use cqa::chaos::{FaultKind, FaultPlan, FaultRule, Trigger};
use cqa::prelude::*;
use cqa::server::{run_chaos, ChaosSpec};
use cqa_noise::{add_query_aware_noise, NoiseSpec};
use std::sync::Mutex;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

const QUERY: &str = "Q(rn) :- region(rk, rn)";

/// A small inconsistent TPC-H-like instance; deterministic in `seed`.
fn noisy_db(seed: u64) -> Database {
    let base = cqa_tpch::generate(cqa_tpch::TpchConfig { scale: 0.0003, seed });
    let q = parse(base.schema(), QUERY).unwrap();
    let mut rng = Mt64::new(seed);
    let (noisy, _) =
        add_query_aware_noise(&base, &q, NoiseSpec { p: 1.0, lmin: 2, umax: 3 }, &mut rng).unwrap();
    noisy
}

fn spec(plan: FaultPlan, clients: usize, requests: usize) -> ChaosSpec {
    let mut spec = ChaosSpec::new(QUERY, plan);
    spec.clients = clients;
    spec.requests = requests;
    spec
}

/// The ISSUE's acceptance run: every fault point erroring at once, and
/// every invariant still holding.
#[test]
fn all_points_error_plan_keeps_every_invariant() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = FaultPlan::preset("all-points-error", 42).unwrap();
    let report = run_chaos(noisy_db(7), &spec(plan, 2, 8)).unwrap();
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert!(report.injections() > 0, "the plan must actually inject: {:#?}", report.points);
    assert_eq!(
        report.answers_ok + report.structured_errors,
        report.total_requests,
        "every request resolves to an answer or a documented structured error"
    );
    // Errors were injected server-side, so the flight recorder must have
    // captured failures even though clients retried them away.
    assert!(report.flight_error_digests > 0, "flight recorder saw no failure");
}

/// Injected delays slow requests down but never change outcomes.
#[test]
fn all_points_delay_plan_only_costs_latency() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = FaultPlan::preset("all-points-delay", 11).unwrap();
    let report = run_chaos(noisy_db(7), &spec(plan, 2, 6)).unwrap();
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert!(report.injections() > 0);
    assert_eq!(report.answers_ok, report.total_requests, "delays must not fail requests");
}

/// A worker panic is contained by the pool: the client sees a structured
/// `internal` error (retryable) and the server keeps serving.
#[test]
fn worker_panic_is_contained_and_retried() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = FaultPlan::preset("worker-panic", 42).unwrap();
    // One client: the pool sees a deterministic job sequence, so the
    // nth-hit trigger fires on a fixed schedule.
    let report = run_chaos(noisy_db(7), &spec(plan, 1, 12)).unwrap();
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert!(report.injections() > 0, "nth-hit panics must fire: {:#?}", report.points);
    assert!(report.retries > 0, "panicked requests come back as retryable internal errors");
    assert!(report.server.retried_requests > 0, "the server must see stamped retries");
}

/// Torn writes produce unparseable half-lines; the client reconnects and
/// retries until it gets a whole answer.
#[test]
fn short_writes_force_reconnects_not_failures() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = FaultPlan::preset("short-write", 42).unwrap();
    let report = run_chaos(noisy_db(7), &spec(plan, 1, 12)).unwrap();
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert!(report.injections() > 0, "short writes must fire: {:#?}", report.points);
    assert!(report.reconnects > 0, "a torn line must tear down the connection");
    assert_eq!(report.answers_ok, report.total_requests, "retries absorb every torn write");
}

/// The one fault point outside the serving path: a dump-load fault
/// surfaces as a structured parse error, and clears with the plan.
#[test]
fn dump_load_fault_is_a_structured_error() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("cqa_chaos_dump_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.dump");
    cqa_storage::dump_to_file(&noisy_db(3), &path).unwrap();
    let plan = FaultPlan {
        seed: 1,
        rules: vec![FaultRule {
            point: "storage/dump_load".to_owned(),
            kind: FaultKind::Error,
            trigger: Trigger::NthHit(1),
        }],
    };
    cqa::chaos::arm(&plan).unwrap();
    let err = cqa_storage::load_from_file(&path).unwrap_err();
    cqa::chaos::disarm();
    assert!(
        err.to_string().contains("injected fault at storage/dump_load"),
        "unexpected error: {err}"
    );
    let db = cqa_storage::load_from_file(&path).unwrap();
    assert!(db.fact_count() > 0, "disarmed loads must succeed");
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();
}
