//! Property-based tests over the core data structures and invariants.

use cqa::common::{AliasTable, LogNum, Mt64};
use cqa::prelude::*;
use cqa::synopsis::{exact_ratio_enumerate, exact_ratio_inclusion_exclusion, AdmissiblePair};
use proptest::prelude::*;

/// Strategy: a random admissible pair with small blocks.
fn admissible_pair() -> impl Strategy<Value = AdmissiblePair> {
    // Block sizes 1..=4, 1..=5 blocks; 1..=5 images of 1..=3 atoms.
    (prop::collection::vec(1u32..=4, 1..=5), proptest::num::u64::ANY).prop_map(|(sizes, seed)| {
        let mut rng = Mt64::new(seed);
        let nblocks = sizes.len();
        let nimages = 1 + rng.index(5);
        let images: Vec<Vec<(u32, u32)>> = (0..nimages)
            .map(|_| {
                let natoms = 1 + rng.index(nblocks.min(3));
                rng.sample_indices(nblocks, natoms)
                    .into_iter()
                    .map(|b| (b as u32, rng.below(sizes[b] as u64) as u32))
                    .collect()
            })
            .collect();
        AdmissiblePair::new(images, sizes).expect("construction is valid by design")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The two independent exact algorithms agree on any admissible pair.
    #[test]
    fn exact_algorithms_agree(pair in admissible_pair()) {
        let a = exact_ratio_enumerate(&pair, 10_000_000).unwrap();
        let b = exact_ratio_inclusion_exclusion(&pair).unwrap();
        prop_assert!((a - b).abs() < 1e-9, "enumerate {a} vs incl-excl {b}");
    }

    /// R(H,B) obeys the Lemma 4.3 lower bound and never exceeds 1.
    #[test]
    fn ratio_bounds(pair in admissible_pair()) {
        let r = exact_ratio_enumerate(&pair, 10_000_000).unwrap();
        prop_assert!(r <= 1.0 + 1e-12);
        prop_assert!(r >= pair.ratio_lower_bound() - 1e-12);
        // And the union bound from above: R ≤ Σ 1/|db(B_{H_i})| = s_ratio.
        prop_assert!(r <= pair.s_ratio() + 1e-12);
    }

    /// Every scheme's estimate lands in [0,1] and within a loose band of
    /// the exact ratio (the tight ε-band is checked statistically in the
    /// core crate; here we assert sanity across arbitrary shapes).
    #[test]
    fn schemes_are_sane_on_arbitrary_pairs(pair in admissible_pair(), seed in 0u64..1000) {
        let exact = exact_ratio_enumerate(&pair, 10_000_000).unwrap();
        for scheme in ALL_SCHEMES {
            let mut rng = Mt64::new(seed);
            let out = approx_relative_frequency(
                &pair, scheme, 0.2, 0.25, &Budget::unbounded(), &mut rng,
            ).unwrap();
            prop_assert!((0.0..=1.0).contains(&out.estimate));
            prop_assert!(
                (out.estimate - exact).abs() <= 0.5 * exact + 1e-9,
                "{scheme}: {} vs exact {exact}", out.estimate
            );
        }
    }

    /// Log-space arithmetic matches plain arithmetic in the range where
    /// plain arithmetic works.
    #[test]
    fn lognum_matches_f64(a in 1e-3f64..1e3, b in 1e-3f64..1e3) {
        let (la, lb) = (LogNum::from_value(a), LogNum::from_value(b));
        prop_assert!(((la * lb).value() - a * b).abs() / (a * b) < 1e-12);
        prop_assert!(((la / lb).value() - a / b).abs() / (a / b) < 1e-12);
        prop_assert!((la.add(lb).value() - (a + b)).abs() / (a + b) < 1e-12);
        prop_assert!((la.ratio(lb) - a / b).abs() / (a / b) < 1e-12);
    }

    /// `Mt64::below` stays in range for arbitrary moduli.
    #[test]
    fn mt_below_in_range(seed in proptest::num::u64::ANY, n in 1u64..=u64::MAX) {
        let mut rng = Mt64::new(seed);
        for _ in 0..16 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Alias tables never emit a zero-weight category.
    #[test]
    fn alias_respects_support(seed in proptest::num::u64::ANY,
                              mask in 1u8..15) {
        let weights: Vec<f64> =
            (0..4).map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 }).collect();
        let table = AliasTable::new(&weights);
        let mut rng = Mt64::new(seed);
        for _ in 0..64 {
            let k = table.sample(&mut rng);
            prop_assert!(weights[k] > 0.0, "sampled zero-weight category {k}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random small databases: blocks partition the rows of each relation,
    /// and the repair count is the product of block sizes.
    #[test]
    fn blocks_partition_and_count(rows in prop::collection::vec((0i64..4, 0i64..4), 1..12)) {
        let schema = Schema::builder()
            .relation("r", &[("k", ColumnType::Int), ("v", ColumnType::Int)], Some(1))
            .build();
        let mut db = Database::new(schema);
        for (k, v) in rows {
            db.insert_named("r", &[Value::Int(k), Value::Int(v)]).unwrap();
        }
        let rel = db.schema().rel_id("r").unwrap();
        let blocks = db.blocks(rel);
        let n = db.table(rel).len();
        // Partition: every row appears in exactly one block.
        let mut seen = vec![false; n];
        for (_, rows) in blocks.iter() {
            for &row in rows {
                prop_assert!(!seen[row as usize], "row {row} in two blocks");
                seen[row as usize] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        // Count: product of block sizes.
        let product: f64 = blocks.iter().map(|(_, r)| r.len() as f64).product();
        prop_assert!((db.repair_count().value() - product).abs() < 1e-9);
    }

    /// The synopsis-based exact frequency equals the repair-enumeration
    /// frequency on random small databases (Lemma 4.1(3), property form).
    #[test]
    fn lemma_41_randomized(rows_r in prop::collection::vec((0i64..3, 0i64..3), 1..8),
                           rows_s in prop::collection::vec((0i64..3, 0i64..3), 1..8)) {
        let schema = Schema::builder()
            .relation("r", &[("k", ColumnType::Int), ("a", ColumnType::Int)], Some(1))
            .relation("s", &[("k", ColumnType::Int), ("b", ColumnType::Int)], Some(1))
            .build();
        let mut db = Database::new(schema);
        for (k, a) in rows_r {
            db.insert_named("r", &[Value::Int(k), Value::Int(a)]).unwrap();
        }
        for (k, b) in rows_s {
            db.insert_named("s", &[Value::Int(k), Value::Int(b)]).unwrap();
        }
        let q = parse(db.schema(), "Q(a) :- r(k, a), s(a, b)").unwrap();
        let syn = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        let exact = consistent_answers_exact(&db, &q, 2_000_000).unwrap();
        prop_assert_eq!(syn.output_size(), exact.len());
        for (t, f) in &exact {
            let entry = syn.get(t).expect("tuple has a synopsis");
            let r = exact_ratio_enumerate(&entry.pair, 10_000_000).unwrap();
            prop_assert!((r - f).abs() < 1e-9, "synopsis {r} vs repairs {f}");
        }
    }
}

/// An α-renaming plus atom shuffle of `q`: semantically the same CQ,
/// structurally rearranged.
fn alpha_variant(q: &ConjunctiveQuery, rng: &mut Mt64) -> ConjunctiveQuery {
    use cqa::query::{Atom, Term, VarId};
    let n = q.num_vars();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut perm);
    let map = |v: VarId| VarId(perm[v.idx()]);
    let mut atoms: Vec<Atom> = q
        .atoms
        .iter()
        .map(|a| Atom {
            rel: a.rel,
            terms: a
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(map(*v)),
                    Term::Const(c) => Term::Const(c.clone()),
                })
                .collect(),
        })
        .collect();
    rng.shuffle(&mut atoms);
    let head = q.head.iter().map(|&v| map(v)).collect();
    // Fresh display names (they are not part of the canonical form).
    let names = (0..n).map(|i| format!("w{i}_{}", rng.below(100))).collect();
    ConjunctiveQuery::new("Q_variant", head, atoms, names).expect("renaming preserves safety")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Canonicalization is invariant under variable renaming and atom
    /// reordering, both at the AST level and through the text permuter.
    #[test]
    fn canonical_form_is_alpha_invariant(
        joins in 0usize..=3,
        constants in 0usize..=2,
        seed in proptest::num::u64::ANY,
    ) {
        let db = cqa::tpch::generate(cqa::tpch::TpchConfig::tiny());
        let mut rng = Mt64::new(seed);
        let spec = cqa::qgen::SqgSpec { joins, constants, proj_fraction: 1.0 };
        let Ok(q) = cqa::qgen::sqg(&db, spec, &mut rng) else {
            return Ok(()); // this draw had no valid query; other cases cover it
        };
        let form = q.canonical_form();
        for _ in 0..4 {
            let variant = alpha_variant(&q, &mut rng);
            prop_assert_eq!(variant.canonical_form(), form.clone());
            prop_assert_eq!(variant.canonical_fingerprint(), form.fingerprint());
        }
        // The text-level permuter (what `bench-serve --permute-queries`
        // issues) round-trips to the same fingerprint.
        let text = q.display(db.schema()).to_string();
        let permuted = cqa::query::permute_query_text(&text, &mut rng).unwrap();
        let reparsed = parse(db.schema(), &permuted).unwrap();
        prop_assert_eq!(reparsed.canonical_fingerprint(), form.fingerprint());
    }
}

/// No spurious fingerprint collisions across a corpus of SQG queries:
/// equal fingerprints always mean equal canonical forms.
#[test]
fn canonical_fingerprints_are_injective_on_an_sqg_corpus() {
    use std::collections::hash_map::Entry;
    use std::collections::HashMap;
    let db = cqa::tpch::generate(cqa::tpch::TpchConfig::tiny());
    let mut rng = Mt64::new(20210621);
    let mut by_fp: HashMap<u64, cqa::query::CanonicalQuery> = HashMap::new();
    let mut corpus = 0usize;
    for joins in 0..=3usize {
        for constants in 0..=2usize {
            for _ in 0..30 {
                let spec = cqa::qgen::SqgSpec { joins, constants, proj_fraction: 1.0 };
                let Ok(q) = cqa::qgen::sqg(&db, spec, &mut rng) else { continue };
                corpus += 1;
                let form = q.canonical_form();
                match by_fp.entry(form.fingerprint()) {
                    Entry::Occupied(e) => assert_eq!(
                        e.get(),
                        &form,
                        "fingerprint {:#x} collides across distinct canonical forms:\n  {}\n  {}",
                        form.fingerprint(),
                        e.get().text(),
                        form.text(),
                    ),
                    Entry::Vacant(e) => {
                        e.insert(form);
                    }
                }
            }
        }
    }
    assert!(corpus >= 200, "corpus too small: {corpus}");
    assert!(by_fp.len() >= 50, "too few distinct shapes: {}", by_fp.len());
}
