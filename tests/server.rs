//! Cross-crate integration tests for the `cqa-server` daemon: a real
//! TCP round-trip on a loopback port, checked against the offline driver.

use cqa::prelude::*;
use cqa::server::{ErrorKind, Response};
use cqa_noise::{add_query_aware_noise, NoiseSpec};

const QUERY: &str = "Q(rn) :- region(rk, rn)";

/// A small inconsistent TPC-H-like instance; deterministic in `seed`.
fn noisy_db(seed: u64) -> Database {
    let base = cqa_tpch::generate(cqa_tpch::TpchConfig { scale: 0.0003, seed });
    let q = parse(base.schema(), QUERY).unwrap();
    let mut rng = Mt64::new(seed);
    let (noisy, _) =
        add_query_aware_noise(&base, &q, NoiseSpec { p: 1.0, lmin: 2, umax: 3 }, &mut rng).unwrap();
    noisy
}

/// The offline driver's answers for one (scheme, seed), with tuples
/// resolved to concrete values for comparison against the wire format.
fn offline_answers(db: &Database, scheme: Scheme, seed: u64) -> Vec<(Vec<Value>, f64, u64)> {
    let q = parse(db.schema(), QUERY).unwrap();
    let mut rng = Mt64::new(seed);
    let res = apx_cqa(db, &q, scheme, 0.2, 0.25, &Budget::unbounded(), &mut rng).unwrap();
    res.answers
        .iter()
        .map(|te| (te.tuple.iter().map(|&d| db.resolve(d)).collect(), te.frequency, te.samples))
        .collect()
}

fn spawn_server(db: Database, workers: usize) -> cqa::server::ServerHandle {
    Server::bind(
        db,
        ServerConfig { addr: "127.0.0.1:0".into(), workers, ..ServerConfig::default() },
    )
    .unwrap()
    .spawn()
    .unwrap()
}

fn query_with_seed(client: &mut Client, seed: u64) -> Response {
    client
        .query(QueryRequest {
            query: QUERY.into(),
            eps: 0.2,
            delta: 0.25,
            seed,
            ..QueryRequest::default()
        })
        .unwrap()
}

#[test]
fn concurrent_clients_match_the_offline_driver() {
    let db = noisy_db(7);
    let expected: Vec<_> = (0..4u64).map(|s| offline_answers(&db, Scheme::Klm, s)).collect();
    assert!(
        expected[0].iter().any(|(_, f, _)| *f < 0.999),
        "noise should make some answers uncertain"
    );
    let handle = spawn_server(db, 3);
    let addr = handle.addr();
    std::thread::scope(|scope| {
        for (seed, want) in expected.iter().enumerate() {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                match query_with_seed(&mut client, seed as u64) {
                    Response::Answers { answers, .. } => {
                        assert_eq!(answers.len(), want.len());
                        for (got, (tuple, freq, samples)) in answers.iter().zip(want) {
                            assert_eq!(&got.tuple, tuple);
                            assert_eq!(got.frequency, *freq, "bitwise-equal frequencies");
                            assert_eq!(got.samples, *samples);
                        }
                    }
                    other => panic!("expected answers, got {other:?}"),
                }
            });
        }
    });
}

#[test]
fn answers_are_independent_of_worker_pool_size() {
    let collect = |workers: usize| -> Vec<(Vec<Value>, f64)> {
        let handle = spawn_server(noisy_db(11), workers);
        let mut client = Client::connect(handle.addr()).unwrap();
        match query_with_seed(&mut client, 99) {
            Response::Answers { answers, .. } => {
                answers.into_iter().map(|a| (a.tuple, a.frequency)).collect()
            }
            other => panic!("expected answers, got {other:?}"),
        }
    };
    assert_eq!(collect(1), collect(4));
}

#[test]
fn repeat_query_hits_the_synopsis_cache() {
    let handle = spawn_server(noisy_db(13), 2);
    let mut client = Client::connect(handle.addr()).unwrap();
    match query_with_seed(&mut client, 1) {
        Response::Answers { cached, .. } => assert!(!cached, "first query must build"),
        other => panic!("expected answers, got {other:?}"),
    }
    match query_with_seed(&mut client, 2) {
        Response::Answers { cached, preprocess_ms, .. } => {
            assert!(cached, "second identical query must hit the cache");
            assert_eq!(preprocess_ms, 0.0);
        }
        other => panic!("expected answers, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_canonical_rekeys, 0, "same literal text is not a rekey");
    assert_eq!(stats.cache_entries, 1);
    assert_eq!(stats.queries_ok, 2);
    assert!(stats.latency_p50_ms > 0.0);
}

#[test]
fn alpha_equivalent_spellings_share_one_cache_entry() {
    let handle = spawn_server(noisy_db(23), 2);
    let mut client = Client::connect(handle.addr()).unwrap();
    // Three spellings of QUERY: renamed variables, and (for the third) the
    // same atom written twice — all one canonical form.
    let spellings = [QUERY, "P(name) :- region(key, name)", "Q(b) :- region(a, b), region(a, b)"];
    let mut answers = Vec::new();
    for (i, text) in spellings.iter().enumerate() {
        let response = client
            .query(QueryRequest {
                query: (*text).into(),
                eps: 0.2,
                delta: 0.25,
                seed: 5,
                ..QueryRequest::default()
            })
            .unwrap();
        match response {
            Response::Answers { cached, answers: a, .. } => {
                assert_eq!(cached, i > 0, "only the first spelling builds: {text}");
                answers.push(a.into_iter().map(|w| (w.tuple, w.frequency)).collect::<Vec<_>>());
            }
            other => panic!("expected answers for {text}, got {other:?}"),
        }
    }
    assert_eq!(answers[0], answers[1], "same seed + same canonical query = same answers");
    assert_eq!(answers[0], answers[2]);
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_misses, 1, "one synopsis build serves all spellings");
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.cache_canonical_rekeys, 2, "both re-spelled hits were rekeys");
    assert_eq!(stats.cache_entries, 1);
}

#[test]
fn tiny_deadline_yields_a_structured_error() {
    let handle = spawn_server(noisy_db(17), 2);
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client
        .query(QueryRequest { query: QUERY.into(), timeout_ms: Some(0), ..QueryRequest::default() })
        .unwrap();
    match response {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::DeadlineExceeded),
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.rejected_deadline, 1);
}

#[test]
fn malformed_requests_get_bad_request_not_a_hangup() {
    let handle = spawn_server(noisy_db(19), 1);
    let mut client = Client::connect(handle.addr()).unwrap();
    let resp = client
        .query(QueryRequest { query: "Q() :- no_such_relation(x)".into(), ..Default::default() })
        .unwrap();
    match resp {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
        other => panic!("expected bad_request, got {other:?}"),
    }
    // The connection survives and the server still answers.
    assert_eq!(client.ping().unwrap(), cqa::server::PROTOCOL_VERSION);
}
