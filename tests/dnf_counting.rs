//! The Block-DNF correspondence end to end: all four CQA approximation
//! schemes running on DNF-counting inputs (footnote 6 / §7.2 of the
//! paper — the problem family the schemes were originally designed for).

use cqa::common::Mt64;
use cqa::prelude::*;
use cqa::synopsis::BlockDnf;

#[test]
fn all_schemes_count_block_dnf_formulas() {
    // Variables 0..9 partitioned into three blocks; three clauses.
    let dnf = BlockDnf::new(
        vec![vec![0, 1, 2], vec![3, 4], vec![5, 6, 7, 8]],
        vec![vec![0, 3], vec![1], vec![3, 5]],
    );
    let pair = dnf.to_admissible().unwrap();
    let exact = dnf.satisfying_fraction();
    assert!(exact > 0.0 && exact < 1.0);
    for scheme in ALL_SCHEMES {
        let mut rng = Mt64::new(17);
        let out =
            approx_relative_frequency(&pair, scheme, 0.1, 0.25, &Budget::unbounded(), &mut rng)
                .unwrap();
        assert!(
            (out.estimate - exact).abs() <= 0.15 * exact,
            "{scheme}: {} vs exact {exact}",
            out.estimate
        );
    }
}

#[test]
fn random_formulas_agree_with_brute_force() {
    let mut rng = Mt64::new(31415);
    for _ in 0..10 {
        // Random block partition and clauses.
        let nblocks = 2 + rng.index(3);
        let mut blocks = Vec::new();
        let mut next = 0u32;
        for _ in 0..nblocks {
            let size = 2 + rng.below(3) as u32;
            blocks.push((next..next + size).collect::<Vec<_>>());
            next += size;
        }
        let nclauses = 1 + rng.index(4);
        let clauses: Vec<Vec<u32>> = (0..nclauses)
            .map(|_| {
                let k = 1 + rng.index(nblocks.min(2));
                rng.sample_indices(nblocks, k)
                    .into_iter()
                    .map(|b| blocks[b][rng.index(blocks[b].len())])
                    .collect()
            })
            .collect();
        let dnf = BlockDnf::new(blocks, clauses);
        let pair = dnf.to_admissible().unwrap();
        let exact = dnf.satisfying_fraction();
        let mut srng = Mt64::new(rng.next_u64());
        let out = approx_relative_frequency(
            &pair,
            Scheme::Klm,
            0.1,
            0.25,
            &Budget::unbounded(),
            &mut srng,
        )
        .unwrap();
        assert!(
            (out.estimate - exact).abs() <= 0.2 * exact + 1e-9,
            "KLM on random formula: {} vs {exact}",
            out.estimate
        );
    }
}

#[test]
fn certain_answers_match_frequency_one() {
    // cqa::synopsis::certain on a database with certain and uncertain
    // tuples — checked against the approximate frequencies.
    let schema = Schema::builder()
        .relation("r", &[("k", ColumnType::Int), ("v", ColumnType::Int)], Some(1))
        .build();
    let mut db = Database::new(schema);
    // Key 1 is clean (certain value 10); key 2 conflicted.
    db.insert_named("r", &[Value::Int(1), Value::Int(10)]).unwrap();
    db.insert_named("r", &[Value::Int(2), Value::Int(20)]).unwrap();
    db.insert_named("r", &[Value::Int(2), Value::Int(30)]).unwrap();
    let q = parse(db.schema(), "Q(v) :- r(k, v)").unwrap();
    let certain = cqa::synopsis::certain_answers(&db, &q).unwrap();
    assert_eq!(certain, vec![vec![Datum::Int(10)]]);
    let mut rng = Mt64::new(5);
    let res = apx_cqa(&db, &q, Scheme::Natural, 0.05, 0.1, &Budget::unbounded(), &mut rng).unwrap();
    for te in &res.answers {
        let is_certain = certain.contains(&te.tuple);
        if is_certain {
            assert!(te.frequency > 0.9);
        } else {
            assert!(te.frequency < 0.7);
        }
    }
}
