//! Checks of concrete numeric claims made in the paper's text.

use cqa::prelude::*;
use cqa::synopsis::exact_ratio_enumerate;

/// §1 / Example 1.1: "The relative frequency of the empty tuple is 50%
/// since, out of four repairs in total, only two satisfy the query."
#[test]
fn example_1_1_fifty_percent() {
    let schema = Schema::builder()
        .relation(
            "employee",
            &[("id", ColumnType::Int), ("name", ColumnType::Str), ("dept", ColumnType::Str)],
            Some(1),
        )
        .build();
    let mut db = Database::new(schema);
    for (id, name, dept) in
        [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT")]
    {
        db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)]).unwrap();
    }
    assert!((db.repair_count().value() - 4.0).abs() < 1e-12, "four repairs in total");
    let q = parse(db.schema(), "Q() :- employee(1, n1, d), employee(2, n2, d)").unwrap();
    let f = relative_frequency_exact(&db, &q, &[], 100).unwrap();
    assert!((f - 0.5).abs() < 1e-12, "true in exactly two repairs");
}

/// §4.2 footnote 5: `E[SampleKL] = E[SampleKLM] ≥ 1/|H|` — the bound that
/// lets the symbolic schemes terminate quickly.
#[test]
fn symbolic_expectation_lower_bound() {
    use cqa::common::Mt64;
    use cqa::core::{KlSampler, Sampler};
    use cqa::synopsis::AdmissiblePair;
    let mut master = Mt64::new(404);
    for _ in 0..20 {
        let mut rng = master.fork();
        let nblocks = 2 + rng.index(3);
        let sizes: Vec<u32> = (0..nblocks).map(|_| 2 + rng.below(3) as u32).collect();
        let nimages = 1 + rng.index(5);
        let images: Vec<Vec<(u32, u32)>> = (0..nimages)
            .map(|_| {
                let natoms = 1 + rng.index(2);
                rng.sample_indices(nblocks, natoms)
                    .into_iter()
                    .map(|b| (b as u32, rng.below(sizes[b] as u64) as u32))
                    .collect()
            })
            .collect();
        let pair = AdmissiblePair::new(images, sizes).unwrap();
        let n = pair.num_images() as f64;
        // E[SampleKL] = R(H,B) / s_ratio ≥ 1/n.
        let r = exact_ratio_enumerate(&pair, 1_000_000).unwrap();
        let expectation = r / pair.s_ratio();
        assert!(
            expectation >= 1.0 / n - 1e-9,
            "E[SampleKL] = {expectation} below 1/|H| = {}",
            1.0 / n
        );
        // And the sampler's empirical mean agrees.
        let mut s = KlSampler::new(&pair);
        let mut sum = 0.0;
        let m = 50_000;
        for _ in 0..m {
            sum += s.sample(&mut rng);
        }
        assert!((sum / m as f64 - expectation).abs() < 0.02);
    }
}

/// §4.3 / Algorithm 6: the deterministic iteration budget formula
/// `N = ⌈8(1+ε)|H|ln(3/δ) / ((1−ε²/8)ε²)⌉` and its linearity in `|H|` —
/// the reason Cover is slow on Boolean inputs.
#[test]
fn coverage_budget_formula() {
    use cqa::core::coverage_iterations;
    let eps = 0.1;
    let delta = 0.25;
    // Hand-computed value for |H| = 100:
    let expect = (8.0 * 1.1 * 100.0 * (12.0f64).ln() / ((1.0 - 0.00125) * 0.01)).ceil() as u64;
    assert_eq!(coverage_iterations(100, eps, delta), expect);
    // With the paper's ε = 0.1, δ = 0.25 the constant factor exceeds 2000
    // iterations per image — "the factor that is multiplied by |H| … can
    // become very large, even for not very small values of ε and δ" (§7.1).
    assert!(coverage_iterations(1, eps, delta) > 2000);
}

/// §2: checking `R_{D,Σ,Q}(t̄) > 0` is polynomial — via the synopsis:
/// positive iff a consistent homomorphic image exists (Lemma 4.1(4)).
#[test]
fn positivity_check_via_synopsis() {
    let schema = Schema::builder()
        .relation("r", &[("k", ColumnType::Int), ("v", ColumnType::Int)], Some(1))
        .build();
    let mut db = Database::new(schema);
    db.insert_named("r", &[Value::Int(1), Value::Int(10)]).unwrap();
    db.insert_named("r", &[Value::Int(1), Value::Int(20)]).unwrap();
    let q = parse(db.schema(), "Q(v) :- r(k, v)").unwrap();
    let syn = build_synopses(&db, &q, BuildOptions::default()).unwrap();
    // Both 10 and 20 are answers in *some* repair → both have synopses.
    assert_eq!(syn.output_size(), 2);
    let exact = consistent_answers_exact(&db, &q, 100).unwrap();
    assert_eq!(exact.len(), 2);
    for (_, f) in exact {
        assert!((f - 0.5).abs() < 1e-12);
    }
}

/// §6.3: the experiments fix δ = 0.25 and ε = 0.1 — "75% confidence and
/// 10% error". Statistical check at exactly those parameters.
#[test]
fn paper_epsilon_delta_guarantee() {
    use cqa::common::Mt64;
    use cqa::synopsis::AdmissiblePair;
    let pair = AdmissiblePair::new(
        vec![vec![(0, 0)], vec![(0, 1), (1, 0)], vec![(1, 2), (2, 1)]],
        vec![3, 3, 2],
    )
    .unwrap();
    let exact = exact_ratio_enumerate(&pair, 1_000_000).unwrap();
    let (eps, delta) = (0.1, 0.25);
    for scheme in ALL_SCHEMES {
        let mut failures = 0;
        let runs = 24;
        for seed in 0..runs {
            let mut rng = Mt64::new(7_000 + seed);
            let out = approx_relative_frequency(
                &pair,
                scheme,
                eps,
                delta,
                &Budget::unbounded(),
                &mut rng,
            )
            .unwrap();
            if (out.estimate - exact).abs() > eps * exact {
                failures += 1;
            }
        }
        assert!(
            failures as f64 / runs as f64 <= delta + 0.05,
            "{scheme}: {failures}/{runs} outside the ε-band"
        );
    }
}
