//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * **alias vs linear weighted choice** for the image index draw — the
//!   symbolic samplers draw the index on every sample, so this choice
//!   multiplies into every `KL`/`KLM`/`Cover` iteration.
//! * **optimal (DKLR) vs naive iteration planning** — the naive plan is
//!   the Hoeffding-style `N = ⌈ln(2/δ)/(2(εµ̂)²)⌉` bound on the same rough
//!   mean; DKLR's variance step is what makes the paper's "optimal
//!   estimator" claims matter.
//! * **parallel vs sequential ApxCQA** — the paper's suggested extension
//!   (Appendix E).

use cqa_common::{AliasTable, Mt64};
use cqa_core::{
    apx_cqa_on_synopses, apx_cqa_parallel, monte_carlo, Budget, NaturalSampler, Sampler, Scheme,
};
use cqa_query::parse;
use cqa_storage::ColumnType::*;
use cqa_storage::{Database, Schema, Value};
use cqa_synopsis::{build_synopses, AdmissiblePair, BuildOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Linear-scan weighted sampling, the textbook alternative to the alias
/// table.
struct LinearChoice {
    cumulative: Vec<f64>,
}

impl LinearChoice {
    fn new(weights: &[f64]) -> Self {
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        LinearChoice { cumulative }
    }
    fn sample(&self, rng: &mut Mt64) -> usize {
        let x = rng.next_f64();
        self.cumulative.iter().position(|&c| x < c).unwrap_or(self.cumulative.len() - 1)
    }
}

fn bench_weighted_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_weighted_choice");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in [16usize, 256, 4096] {
        let weights: Vec<f64> = (1..=n).map(|i| 1.0 / i as f64).collect();
        group.bench_with_input(BenchmarkId::new("alias", n), &weights, |b, w| {
            let table = AliasTable::new(w);
            let mut rng = Mt64::new(1);
            b.iter(|| table.sample(&mut rng));
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &weights, |b, w| {
            let lin = LinearChoice::new(w);
            let mut rng = Mt64::new(1);
            b.iter(|| lin.sample(&mut rng));
        });
    }
    group.finish();
}

/// Naive Monte Carlo with a Hoeffding-style plan: stopping rule for a rough
/// mean, then `N = ln(2/δ) / (2(εµ̂)²)` — ignores the variance, so it
/// overshoots badly when the sampler's variance is far below µ̂².
fn naive_monte_carlo<S: Sampler>(sampler: &mut S, eps: f64, delta: f64, rng: &mut Mt64) -> f64 {
    let budget = Budget::unbounded();
    let mut count = 0;
    let rough = cqa_core::stopping_rule(sampler, 0.5, delta / 2.0, &budget, rng, &mut count)
        .expect("unbounded");
    let n = ((2.0f64 / delta).ln() / (2.0 * (eps * rough.mu).powi(2))).ceil() as u64;
    let mut s = 0.0;
    for _ in 0..n {
        s += sampler.sample(rng);
    }
    s / n as f64
}

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_iteration_planning");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    // A moderate-frequency pair where the DKLR variance step pays off.
    let pair =
        AdmissiblePair::new(vec![vec![(0, 0)], vec![(0, 1)], vec![(1, 0), (2, 0)]], vec![3, 2, 2])
            .expect("valid");
    group.bench_function("dklr_optimal", |b| {
        b.iter(|| {
            let mut s = NaturalSampler::new(&pair);
            let mut rng = Mt64::new(5);
            monte_carlo(&mut s, 0.1, 0.25, &Budget::unbounded(), &mut rng).expect("unbounded")
        })
    });
    group.bench_function("naive_hoeffding", |b| {
        b.iter(|| {
            let mut s = NaturalSampler::new(&pair);
            let mut rng = Mt64::new(5);
            naive_monte_carlo(&mut s, 0.1, 0.25, &mut rng)
        })
    });
    group.finish();
}

fn wide_database() -> Database {
    let schema = Schema::builder().relation("r", &[("k", Int), ("v", Int)], Some(1)).build();
    let mut db = Database::new(schema);
    let mut rng = Mt64::new(3);
    for k in 0..200 {
        for _ in 0..3 {
            db.insert_named("r", &[Value::Int(k), Value::Int(rng.below(8) as i64)]).unwrap();
        }
    }
    db
}

fn bench_parallel_driver(c: &mut Criterion) {
    let db = wide_database();
    let q = parse(db.schema(), "Q(k, v) :- r(k, v)").expect("parses");
    let syn = build_synopses(&db, &q, BuildOptions::default()).expect("builds");
    let mut group = c.benchmark_group("ablation_parallel_driver");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut rng = Mt64::new(11);
            apx_cqa_on_synopses(&syn, Scheme::Klm, 0.1, 0.25, &Budget::unbounded(), &mut rng)
                .expect("runs")
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &threads| {
            b.iter(|| {
                apx_cqa_parallel(&syn, Scheme::Klm, 0.1, 0.25, &Budget::unbounded(), 11, threads)
                    .expect("runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_weighted_choice, bench_planning, bench_parallel_driver);
criterion_main!(benches);
