//! Benchmarks of the Dagum–Karp–Luby–Ross estimator: how the cost of the
//! stopping rule and the full iteration plan scales with the (unknown)
//! mean — the inverse dependence that explains every trend in Figures 1–2.

use cqa_common::Mt64;
use cqa_core::{plan_iterations, stopping_rule, Budget, NaturalSampler};
use cqa_synopsis::AdmissiblePair;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A single-image pair whose ratio is `4^{-depth}`.
fn pair_with_ratio(depth: usize) -> AdmissiblePair {
    let sizes = vec![4u32; depth];
    let image: Vec<(u32, u32)> = (0..depth).map(|b| (b as u32, 0)).collect();
    AdmissiblePair::new(vec![image], sizes).expect("valid")
}

fn bench_optestimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("optestimate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for &depth in &[1usize, 2, 3] {
        let pair = pair_with_ratio(depth);
        group.bench_with_input(
            BenchmarkId::new("stopping_rule", format!("R=4^-{depth}")),
            &pair,
            |b, pair| {
                b.iter(|| {
                    let mut s = NaturalSampler::new(pair);
                    let mut rng = Mt64::new(7);
                    let mut count = 0;
                    stopping_rule(&mut s, 0.2, 0.25, &Budget::unbounded(), &mut rng, &mut count)
                        .expect("no budget")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("plan_iterations", format!("R=4^-{depth}")),
            &pair,
            |b, pair| {
                b.iter(|| {
                    let mut s = NaturalSampler::new(pair);
                    let mut rng = Mt64::new(8);
                    let mut count = 0;
                    plan_iterations(&mut s, 0.2, 0.25, &Budget::unbounded(), &mut rng, &mut count)
                        .expect("no budget")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_optestimate);
criterion_main!(benches);
