//! One Criterion bench per paper figure: each runs a single down-scaled
//! scenario cell of the corresponding figure pipeline, so `cargo bench`
//! exercises every experiment end to end. The full sweeps (paper-sized
//! series and CSV output) live in the `fig1_noise` … `fig5_validation`
//! and `run_all` binaries.

use cqa_scenarios::{figures, BenchConfig, Pool};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut cfg = BenchConfig::smoke();
        cfg.timeout_secs = 1.0;
        Pool::build(cfg).expect("smoke pool")
    })
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.bench_function("fig1_noise_cell", |b| b.iter(|| figures::fig1_noise(pool(), &[(0.0, 1)])));
    g.bench_function("fig2_balance_cell", |b| {
        b.iter(|| figures::fig2_balance(pool(), &[(0.3, 1)]))
    });
    g.bench_function("fig3_preprocessing", |b| b.iter(|| figures::fig3_preprocessing(pool())));
    g.bench_function("fig4_joins_cell", |b| b.iter(|| figures::fig4_joins(pool(), &[(0.3, 0.5)])));
    g.bench_function("fig5_validation", |b| {
        // Validation queries in the low-balance regime time out by design;
        // keep the per-scheme budget tiny so one iteration stays bounded.
        let mut cfg = BenchConfig::smoke();
        cfg.timeout_secs = 0.2;
        b.iter(|| figures::fig5_validation(&cfg).expect("validation"))
    });
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
