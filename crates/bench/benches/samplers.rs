//! Micro-benchmarks of the three samplers (§4.2).
//!
//! Confirms the cost model the paper's analysis relies on: `SampleNatural`
//! pays O(|B| + Σ|Hᵢ|) per sample, `SampleKL` pays for the prefix scan
//! (cheap when the drawn index is small), and `SampleKLM` always scans
//! every image — the reason KL catches up with KLM at many joins.

use cqa_common::Mt64;
use cqa_core::{KlSampler, KlmSampler, NaturalSampler, Sampler};
use cqa_synopsis::AdmissiblePair;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A synthetic pair with `n` images over `n + span` blocks of size 4,
/// each image covering `span` consecutive blocks (overlapping chains).
fn chain_pair(n: usize, span: usize) -> AdmissiblePair {
    let nblocks = n + span;
    let sizes = vec![4u32; nblocks];
    let images: Vec<Vec<(u32, u32)>> = (0..n)
        .map(|i| (0..span).map(|k| ((i + k) as u32, ((i + k) % 4) as u32)).collect())
        .collect();
    AdmissiblePair::new(images, sizes).expect("valid synthetic pair")
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for &(n, span) in &[(8usize, 2usize), (64, 3), (256, 3)] {
        let pair = chain_pair(n, span);
        group.bench_with_input(
            BenchmarkId::new("natural", format!("H{n}_span{span}")),
            &pair,
            |b, pair| {
                let mut s = NaturalSampler::new(pair);
                let mut rng = Mt64::new(1);
                b.iter(|| s.sample(&mut rng));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("kl", format!("H{n}_span{span}")),
            &pair,
            |b, pair| {
                let mut s = KlSampler::new(pair);
                let mut rng = Mt64::new(2);
                b.iter(|| s.sample(&mut rng));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("klm", format!("H{n}_span{span}")),
            &pair,
            |b, pair| {
                let mut s = KlmSampler::new(pair);
                let mut rng = Mt64::new(3);
                b.iter(|| s.sample(&mut rng));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
