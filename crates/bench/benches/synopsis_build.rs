//! Benchmarks of the preprocessing step (Figure 3's metric): synopsis
//! construction over TPC-H-like data for queries of increasing join count
//! on increasingly noisy databases.

use cqa_common::Mt64;
use cqa_noise::{add_query_aware_noise, NoiseSpec};
use cqa_qgen::{sqg, SqgSpec};
use cqa_query::answers;
use cqa_storage::Database;
use cqa_synopsis::{build_synopses, BuildOptions};
use cqa_tpch::{generate, TpchConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn workload() -> Vec<(String, Database, cqa_query::ConjunctiveQuery)> {
    let base = generate(TpchConfig { scale: 0.0005, seed: 99 });
    let mut rng = Mt64::new(17);
    let mut out = Vec::new();
    for joins in [1usize, 3, 5] {
        // Draw until non-empty, as the pool builder does.
        let q = loop {
            let Ok(q) = sqg(&base, SqgSpec { joins, constants: 2, proj_fraction: 1.0 }, &mut rng)
            else {
                continue;
            };
            if q.join_count() == joins && !answers(&base, &q).unwrap_or_default().is_empty() {
                break q;
            }
        };
        let (noisy, _) =
            add_query_aware_noise(&base, &q, NoiseSpec::with_p(0.5), &mut rng).expect("noise");
        out.push((format!("j{joins}_p50"), noisy, q));
    }
    out
}

fn bench_build(c: &mut Criterion) {
    let cases = workload();
    let mut group = c.benchmark_group("preprocessing");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (name, db, q) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(db, q), |b, (db, q)| {
            b.iter(|| build_synopses(db, q, BuildOptions::default()).expect("builds"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
