//! Benchmarks of the four full schemes on the two synopsis regimes the
//! paper contrasts (§7.2):
//!
//! * a **Boolean-like** pair — one synopsis with many images and a ratio
//!   close to 1 (Natural should dominate);
//! * a **balanced** pair — a single image and a small ratio (the symbolic
//!   schemes should dominate).

use cqa_common::Mt64;
use cqa_core::{approx_relative_frequency, Budget, ALL_SCHEMES};
use cqa_synopsis::AdmissiblePair;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Many single-atom images covering most of one block: R close to 1.
fn boolean_like() -> AdmissiblePair {
    let sizes = vec![4u32; 16];
    let mut images = Vec::new();
    for b in 0..16u32 {
        for t in 0..3u32 {
            images.push(vec![(b, t)]);
        }
    }
    AdmissiblePair::new(images, sizes).expect("valid")
}

/// One image over four blocks of size 4: R = 1/256.
fn balanced_like() -> AdmissiblePair {
    AdmissiblePair::new(vec![vec![(0, 0), (1, 0), (2, 0), (3, 0)]], vec![4, 4, 4, 4])
        .expect("valid")
}

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("schemes");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (regime, pair) in [("boolean_like", boolean_like()), ("balanced_like", balanced_like())] {
        for scheme in ALL_SCHEMES {
            group.bench_with_input(BenchmarkId::new(scheme.name(), regime), &pair, |b, pair| {
                b.iter(|| {
                    let mut rng = Mt64::new(42);
                    approx_relative_frequency(
                        pair,
                        scheme,
                        0.1,
                        0.25,
                        &Budget::unbounded(),
                        &mut rng,
                    )
                    .expect("no budget")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
