//! Shared plumbing for the figure binaries.
//!
//! Each binary regenerates one figure family of the paper: it builds the
//! scenario pool from [`cqa_scenarios::BenchConfig::from_env`], runs the
//! corresponding pipeline, prints the ASCII tables, and writes CSVs under
//! `results/`.

#![forbid(unsafe_code)]

use cqa_common::{CqaError, Result};
use cqa_scenarios::{BenchConfig, Figure};
use std::path::PathBuf;

/// Where the CSV output goes (override with `CQA_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var("CQA_RESULTS_DIR").map(PathBuf::from).unwrap_or_else(|_| "results".into())
}

/// Prints figures and writes their CSVs. A CSV write failure is an error:
/// a figure run whose results never reached disk must exit nonzero, not
/// scroll a warning past the terminal.
pub fn emit(figures: &[Figure]) -> Result<()> {
    let dir = results_dir();
    for fig in figures {
        println!("{fig}");
        if std::env::var("CQA_PLOT").map(|v| v == "1").unwrap_or(false) {
            println!("{}", fig.plot());
        }
        let path = fig
            .write_csv(&dir)
            .map_err(|e| CqaError::Parse(format!("csv write under {}: {e}", dir.display())))?;
        println!("   csv: {}\n", path.display());
    }
    Ok(())
}

/// True when the appendix-sized grids were requested (`CQA_APPENDIX=1`).
pub fn appendix_mode() -> bool {
    std::env::var("CQA_APPENDIX").map(|v| v == "1").unwrap_or(false)
}

/// The representative `(balance, joins)` selections of the paper's
/// Figure 1, intersected with the configured grids; appendix mode takes
/// the full cross product (Figures 6–7).
pub fn fig1_selections(cfg: &BenchConfig) -> Vec<(f64, usize)> {
    let balances: Vec<f64> = if appendix_mode() {
        cfg.balance_levels.clone()
    } else {
        pick_near(&cfg.balance_levels, &[0.0, 0.3, 0.5])
    };
    let joins: Vec<usize> =
        if appendix_mode() { cfg.joins.clone() } else { pick_joins(&cfg.joins, &[1, 3, 5]) };
    cross(&balances, &joins)
}

/// Figure 2's `(noise, joins)` selections (appendix: Figures 8–9).
pub fn fig2_selections(cfg: &BenchConfig) -> Vec<(f64, usize)> {
    let noises: Vec<f64> = if appendix_mode() {
        cfg.noise_levels.clone()
    } else {
        pick_near(&cfg.noise_levels, &[0.2, 0.4, 0.6])
    };
    let joins: Vec<usize> =
        if appendix_mode() { cfg.joins.clone() } else { pick_joins(&cfg.joins, &[1, 3, 5]) };
    cross(&noises, &joins)
}

/// Figure 4's `(noise, balance)` selections (appendix: Figures 10–13).
pub fn fig4_selections(cfg: &BenchConfig) -> Vec<(f64, f64)> {
    let noises: Vec<f64> = if appendix_mode() {
        cfg.noise_levels.clone()
    } else {
        pick_near(&cfg.noise_levels, &[0.2, 0.4, 0.6])
    };
    let balances: Vec<f64> = if appendix_mode() {
        cfg.balance_levels.clone()
    } else {
        pick_near(&cfg.balance_levels, &[0.0, 0.3, 0.5])
    };
    noises.iter().flat_map(|&p| balances.iter().map(move |&q| (p, q))).collect()
}

fn pick_near(grid: &[f64], wanted: &[f64]) -> Vec<f64> {
    let mut out: Vec<f64> = wanted
        .iter()
        .map(|&w| {
            *grid
                .iter()
                .min_by(|a, b| (*a - w).abs().partial_cmp(&(*b - w).abs()).expect("finite"))
                .expect("non-empty grid")
        })
        .collect();
    out.dedup();
    out
}

fn pick_joins(grid: &[usize], wanted: &[usize]) -> Vec<usize> {
    let mut out: Vec<usize> = wanted.iter().filter(|j| grid.contains(j)).copied().collect();
    if out.is_empty() {
        out = grid.to_vec();
    }
    out
}

fn cross<A: Copy, B: Copy>(xs: &[A], ys: &[B]) -> Vec<(A, B)> {
    xs.iter().flat_map(|&x| ys.iter().map(move |&y| (x, y))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selections_use_grid_values() {
        let cfg = BenchConfig::quick();
        for (q, j) in fig1_selections(&cfg) {
            assert!(cfg.balance_levels.contains(&q));
            assert!(cfg.joins.contains(&j));
        }
        for (p, j) in fig2_selections(&cfg) {
            assert!(cfg.noise_levels.contains(&p));
            assert!(cfg.joins.contains(&j));
        }
        for (p, q) in fig4_selections(&cfg) {
            assert!(cfg.noise_levels.contains(&p));
            assert!(cfg.balance_levels.contains(&q));
        }
    }

    #[test]
    fn emit_propagates_csv_write_failures() {
        // Point the results dir *under a regular file* so create_dir_all
        // fails, and check the error reaches the caller instead of being
        // swallowed into a warning.
        let blocker = std::env::temp_dir().join("cqa-bench-emit-blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();
        std::env::set_var("CQA_RESULTS_DIR", blocker.join("sub"));
        let fig = Figure {
            id: "emit_test".into(),
            title: "emit test".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![],
        };
        let err = emit(std::slice::from_ref(&fig));
        std::env::remove_var("CQA_RESULTS_DIR");
        std::fs::remove_file(&blocker).ok();
        assert!(err.is_err(), "emit must fail when the CSV cannot be written");
    }

    #[test]
    fn quick_selection_counts_match_the_paper_layout() {
        let cfg = BenchConfig::quick();
        // Nine representative plots per figure, as in Figures 1, 2, 4.
        assert_eq!(fig1_selections(&cfg).len(), 9);
        assert_eq!(fig2_selections(&cfg).len(), 9);
        assert_eq!(fig4_selections(&cfg).len(), 9);
    }
}
