//! Regenerates Figure 1 (noise scenarios `Noise[balance, joins]`) — and,
//! with `CQA_APPENDIX=1`, the full grids of appendix Figures 6–7.

#![forbid(unsafe_code)]

use cqa_bench::{emit, fig1_selections};
use cqa_scenarios::{figures, BenchConfig, Pool};

fn main() {
    let cfg = BenchConfig::from_env();
    let selections = fig1_selections(&cfg);
    eprintln!(
        "[fig1] {} Noise[q, j] plots over grids {:?} × {:?}",
        selections.len(),
        cfg.balance_levels,
        cfg.joins
    );
    let pool = Pool::build(cfg).expect("pool build");
    let figs = figures::fig1_noise(&pool, &selections);
    emit(&figs).expect("figure CSVs written");
    for (id, winner) in figures::winners(&figs) {
        println!("winner[{id}] = {winner}");
    }
}
