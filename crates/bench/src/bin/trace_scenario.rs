//! Runs one tiny noise scenario end to end with tracing enabled and
//! exports the result: a Chrome `trace_event` JSON file (open it in
//! chrome://tracing or Perfetto) plus a flat per-span profile on stdout.
//!
//! Usage: `trace_scenario [TRACE_PATH]` (default `results/trace.json`).
//! The scenario size follows `CQA_PROFILE`/`CQA_*` like the figure
//! binaries, defaulting to the smoke profile so a run takes seconds.

#![forbid(unsafe_code)]

use cqa_scenarios::{figures, BenchConfig, Pool};
use std::path::PathBuf;

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| cqa_bench::results_dir().join("trace.json"));

    let cfg = match std::env::var_os("CQA_PROFILE") {
        Some(_) => BenchConfig::from_env(),
        None => BenchConfig::smoke(),
    };
    cqa_obs::set_enabled(true);
    let pool = Pool::build(cfg).expect("pool build");
    let figs = figures::fig1_noise(&pool, &[(0.0, 1)]);
    cqa_obs::set_enabled(false);
    for fig in &figs {
        println!("{fig}");
    }

    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create trace output directory");
    }
    let events = cqa_obs::write_chrome_trace(&out).expect("write trace file");
    println!("{}", cqa_obs::flat_profile_string());
    println!("trace: {events} events -> {}", out.display());
}
