//! Runs every experiment of the paper in sequence and prints the
//! take-home verdict table (§7.2):
//!
//! 1. Boolean CQs → `Natural` should win regardless of noise and joins.
//! 2. Non-Boolean CQs → `KLM` (with `KL` close) should win; `Natural`
//!    worst.
//! 3. Feasibility: preprocessing concentrated, best-scheme times modest.

#![forbid(unsafe_code)]

use cqa_bench::{emit, fig1_selections, fig2_selections, fig4_selections};
use cqa_scenarios::{figures, BenchConfig, Figure, Pool};

fn main() {
    let cfg = BenchConfig::from_env();
    eprintln!(
        "[run_all] profile: scale={} timeout={}s threads={}",
        cfg.scale, cfg.timeout_secs, cfg.threads
    );
    let pool = Pool::build(cfg.clone()).expect("pool build");

    println!("════════ Figure 1: noise scenarios ════════");
    let fig1 = figures::fig1_noise(&pool, &fig1_selections(&cfg));
    emit(&fig1).expect("figure CSVs written");

    println!("════════ Figure 2: balance scenarios ════════");
    let fig2 = figures::fig2_balance(&pool, &fig2_selections(&cfg));
    emit(&fig2).expect("figure CSVs written");

    println!("════════ Figure 3: preprocessing distribution ════════");
    let (fig3, summary) = figures::fig3_preprocessing(&pool);
    emit(std::slice::from_ref(&fig3)).expect("figure CSVs written");
    println!("{summary}");

    println!("════════ Figure 4: join scenarios ════════");
    let fig4 = figures::fig4_joins(&pool, &fig4_selections(&cfg));
    emit(&fig4).expect("figure CSVs written");

    println!("════════ Figure 5: validation scenarios ════════");
    let (fig5, notes) = figures::fig5_validation(&cfg).expect("validation");
    emit(&fig5).expect("figure CSVs written");
    for note in &notes {
        println!("note: {note}");
    }

    println!("════════ Take-home verdicts (§7.2) ════════");
    verdicts(&fig1, &fig2);
}

fn verdicts(fig1: &[Figure], fig2: &[Figure]) {
    let mut boolean_wins: std::collections::BTreeMap<String, usize> = Default::default();
    let mut nonbool_wins: std::collections::BTreeMap<String, usize> = Default::default();
    // Noise figures are Boolean iff their balance target is 0; balance
    // figures mix regimes along the x axis, so their x = 0 column counts
    // toward the Boolean verdict and the rest toward the non-Boolean one.
    let winner_over = |fig: &Figure, keep: &dyn Fn(f64) -> bool| -> Option<String> {
        fig.series
            .iter()
            .min_by(|a, b| {
                let t = |s: &cqa_scenarios::Series| -> f64 {
                    s.points.iter().filter(|p| keep(p.x)).map(|p| p.y).sum()
                };
                t(a).partial_cmp(&t(b)).expect("finite")
            })
            .map(|s| s.label.clone())
    };
    for fig in fig1 {
        let Some(winner) = winner_over(fig, &|_| true) else { continue };
        if fig.id.starts_with("noise_q00") {
            *boolean_wins.entry(winner).or_default() += 1;
        } else {
            *nonbool_wins.entry(winner).or_default() += 1;
        }
    }
    for fig in fig2 {
        if let Some(winner) = winner_over(fig, &|x| x == 0.0) {
            *boolean_wins.entry(winner).or_default() += 1;
        }
        if let Some(winner) = winner_over(fig, &|x| x > 0.0) {
            *nonbool_wins.entry(winner).or_default() += 1;
        }
    }
    println!("Boolean scenarios won by:     {boolean_wins:?} (paper: Natural sweeps)");
    println!("Non-Boolean scenarios won by: {nonbool_wins:?} (paper: KLM, with KL close)");
    let boolean_ok = boolean_wins.keys().all(|k| k == "Natural");
    let nonbool_ok = nonbool_wins
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(k, _)| k == "KLM" || k == "KL")
        .unwrap_or(false);
    println!(
        "take-home (1) Boolean → Natural: {}",
        if boolean_ok { "REPRODUCED" } else { "CHECK MANUALLY" }
    );
    println!(
        "take-home (2) non-Boolean → KL(M): {}",
        if nonbool_ok { "REPRODUCED" } else { "CHECK MANUALLY" }
    );
}
