//! Accuracy validation: the (ε, δ) contract on real benchmark synopses.
//!
//! The paper fixes ε = 0.1 and δ = 0.25 (§6.3) and takes the guarantee
//! `Pr[|est − R| ≤ ε·R] ≥ 1 − δ` from theory. This binary verifies it
//! empirically on the synopses that actually arise in the scenario pool:
//! for every pool pair whose exact ratio is computable (by `db(B)`
//! enumeration or inclusion–exclusion), each scheme runs repeatedly and
//! the observed relative errors are compared against ε and δ.

#![forbid(unsafe_code)]

use cqa_common::Mt64;
use cqa_core::{approx_relative_frequency, Budget, ALL_SCHEMES};
use cqa_scenarios::{BenchConfig, Pool};
use cqa_synopsis::{exact_ratio_enumerate, exact_ratio_inclusion_exclusion, AdmissiblePair};

const REPS: usize = 12;

fn exact(pair: &AdmissiblePair) -> Option<f64> {
    exact_ratio_enumerate(pair, 1_000_000).or_else(|_| exact_ratio_inclusion_exclusion(pair)).ok()
}

fn main() {
    let mut cfg = BenchConfig::from_env();
    cfg.timeout_secs = cfg.timeout_secs.max(5.0);
    let eps = cfg.eps;
    let delta = cfg.delta;
    let pool = Pool::build(cfg.clone()).expect("pool");

    // Collect measurable synopses across the pool.
    let mut cases: Vec<(AdmissiblePair, f64)> = Vec::new();
    for qi in 0..pool.queries.len() {
        for pi in 0..cfg.noise_levels.len() {
            for bi in 0..cfg.balance_levels.len() {
                let (db, q) = pool.pair(qi, pi, bi);
                let Ok(syn) =
                    cqa_synopsis::build_synopses(db, q, cqa_synopsis::BuildOptions::default())
                else {
                    continue;
                };
                for entry in syn.entries.into_iter().take(2) {
                    if let Some(r) = exact(&entry.pair) {
                        cases.push((entry.pair, r));
                    }
                }
                if cases.len() >= 60 {
                    break;
                }
            }
        }
    }
    println!("measurable synopses: {}", cases.len());
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "scheme", "med err", "p90 err", "max err", "fail rate", "allowed δ"
    );
    for scheme in ALL_SCHEMES {
        let mut errors: Vec<f64> = Vec::new();
        let mut failures = 0usize;
        let mut total = 0usize;
        for (ci, (pair, r)) in cases.iter().enumerate() {
            for rep in 0..REPS {
                let mut rng = Mt64::from_key(&[ci as u64, rep as u64, scheme as u64]);
                let Ok(out) = approx_relative_frequency(
                    pair,
                    scheme,
                    eps,
                    delta,
                    &Budget::with_timeout_secs(cfg.timeout_secs),
                    &mut rng,
                ) else {
                    continue; // timeout: accuracy undefined, not a failure
                };
                let rel_err = (out.estimate - r).abs() / r;
                errors.push(rel_err);
                total += 1;
                if rel_err > eps {
                    failures += 1;
                }
            }
        }
        errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q = |p: f64| cqa_common::percentile(&errors, p);
        println!(
            "{:>8} {:>10.4} {:>10.4} {:>10.4} {:>11.1}% {:>9.0}%",
            scheme.name(),
            q(50.0),
            q(90.0),
            q(100.0),
            failures as f64 / total.max(1) as f64 * 100.0,
            delta * 100.0
        );
    }
}
