//! Ablation: query-aware vs query-oblivious noise (§6.1's motivation,
//! measured).
//!
//! For each noise level, both generators run at the same `p` on the same
//! base database; we report how many facts each injected and how much
//! the *query's* homomorphic size grew — the quantity that actually
//! stresses the approximation schemes. The paper's argument is that the
//! oblivious baseline wastes its injections on facts the query never
//! reads; the table makes that quantitative.

#![forbid(unsafe_code)]

use cqa_common::Mt64;
use cqa_noise::{add_oblivious_noise, add_query_aware_noise, NoiseSpec};
use cqa_query::parse;
use cqa_scenarios::BenchConfig;
use cqa_synopsis::{build_synopses, BuildOptions};
use cqa_tpch::{generate, TpchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let db = generate(TpchConfig { scale: cfg.scale, seed: cfg.seed });
    let q = parse(
        db.schema(),
        "Q(cn, pr) :- customer(ck, cn, nk, 'BUILDING', bal), \
         orders(ok, ck, st, tp, od, pr, cl)",
    )
    .expect("query parses");
    let base_homs = build_synopses(&db, &q, BuildOptions::default()).expect("builds").hom_size;
    println!("base: {} facts, query homomorphic size {base_homs}\n", db.fact_count());
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "noise", "aware+facts", "obliv+facts", "aware+homs", "obliv+homs", "aware adv."
    );
    for &p in &cfg.noise_levels {
        let mut ra = Mt64::new(cfg.seed ^ 1);
        let (aware, arep) =
            add_query_aware_noise(&db, &q, NoiseSpec::with_p(p), &mut ra).expect("aware");
        let mut ro = Mt64::new(cfg.seed ^ 1);
        let (obliv, orep) =
            add_oblivious_noise(&db, NoiseSpec::with_p(p), &mut ro).expect("oblivious");
        let ah = build_synopses(&aware, &q, BuildOptions::default()).expect("builds").hom_size;
        let oh = build_synopses(&obliv, &q, BuildOptions::default()).expect("builds").hom_size;
        let aware_gain = (ah - base_homs) as f64 / arep.total_added.max(1) as f64;
        let obliv_gain = (oh - base_homs) as f64 / orep.total_added.max(1) as f64;
        println!(
            "{:>7.0}% {:>12} {:>12} {:>14} {:>14} {:>11.1}x",
            p * 100.0,
            arep.total_added,
            orep.total_added,
            ah - base_homs,
            oh - base_homs,
            aware_gain / obliv_gain.max(1e-9)
        );
    }
    println!(
        "\n(+homs = growth of the query's homomorphic size; 'aware adv.' = \
         per-injected-fact impact ratio — the §6.1 argument, quantified)"
    );
}
