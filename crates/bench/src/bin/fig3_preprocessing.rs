//! Regenerates Figure 3: the distribution of the preprocessing step's
//! running time over every database–query pair of `P_H`, plus the CDF
//! claims of §7.1.

#![forbid(unsafe_code)]

use cqa_bench::emit;
use cqa_scenarios::{figures, BenchConfig, Pool};

fn main() {
    let cfg = BenchConfig::from_env();
    let pool = Pool::build(cfg).expect("pool build");
    let (fig, summary) = figures::fig3_preprocessing(&pool);
    emit(std::slice::from_ref(&fig)).expect("figure CSVs written");
    println!("{summary}");
}
