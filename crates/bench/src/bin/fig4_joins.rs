//! Regenerates Figure 4 (join scenarios `Joins[noise, balance]`, share of
//! running time per scheme) — and, with `CQA_APPENDIX=1`, the full grids
//! of appendix Figures 10–13.

#![forbid(unsafe_code)]

use cqa_bench::{emit, fig4_selections};
use cqa_scenarios::{figures, BenchConfig, Pool};

fn main() {
    let cfg = BenchConfig::from_env();
    let selections = fig4_selections(&cfg);
    eprintln!("[fig4] {} Joins[p, q] plots", selections.len());
    let pool = Pool::build(cfg).expect("pool build");
    let figs = figures::fig4_joins(&pool, &selections);
    emit(&figs).expect("figure CSVs written");
}
