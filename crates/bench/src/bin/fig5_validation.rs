//! Regenerates Figure 5 and appendix Figures 14–15: the validation
//! scenarios on the TPC-H and TPC-DS workload queries, execution time vs
//! noise with measured balance statistics.

#![forbid(unsafe_code)]

use cqa_bench::emit;
use cqa_scenarios::{figures, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let (figs, notes) = figures::fig5_validation(&cfg).expect("validation scenarios");
    emit(&figs).expect("figure CSVs written");
    for note in notes {
        println!("note: {note}");
    }
    for (id, winner) in figures::winners(&figs) {
        println!("winner[{id}] = {winner}");
    }
}
