//! Regenerates Figure 2 (balance scenarios `Balance[noise, joins]`) — and,
//! with `CQA_APPENDIX=1`, the full grids of appendix Figures 8–9.

#![forbid(unsafe_code)]

use cqa_bench::{emit, fig2_selections};
use cqa_scenarios::{figures, BenchConfig, Pool};

fn main() {
    let cfg = BenchConfig::from_env();
    let selections = fig2_selections(&cfg);
    eprintln!("[fig2] {} Balance[p, j] plots", selections.len());
    let pool = Pool::build(cfg).expect("pool build");
    let figs = figures::fig2_balance(&pool, &selections);
    emit(&figs).expect("figure CSVs written");
    for (id, winner) in figures::winners(&figs) {
        println!("winner[{id}] = {winner}");
    }
}
