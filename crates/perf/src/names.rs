//! The central registry of benchmark series names.
//!
//! Every series recorded into a `BENCH_<pr>.json` must be declared here,
//! mirroring the span/metric registry in `crates/obs/src/names.rs`. The
//! trajectory — and the dashboard built from it — keys on these strings
//! across PRs, so a silent rename would orphan a series' history. The
//! `bench-name-registry` lint rule flags any `bench_series(...)` call
//! whose name literal is missing from [`SERIES`], and
//! [`crate::schema::bench_series`] rejects unregistered names at runtime
//! as a second line of defense.
//!
//! Naming scheme: `area/detail_unit`, where the trailing `_unit` segment
//! (`_ns`, `_ms`, `_rps`, `_rate`) both documents the unit and fixes the
//! gate's direction — `_rps` series are higher-is-better, everything else
//! (latencies, error rates) is lower-is-better.

/// Every benchmark series the suites may record, sorted.
pub const SERIES: &[&str] = &[
    "figure/fig3_preprocessing_ns",
    "lint/check_ms",
    "sampler/kl/sample_ns",
    "sampler/klm/sample_ns",
    "sampler/natural/sample_ns",
    "scheme/cover/answer_ns",
    "scheme/kl/answer_ns",
    "scheme/klm/answer_ns",
    "scheme/natural/answer_ns",
    "server/chaos_on_error_rate",
    "server/flight_off_throughput_rps",
    "server/flight_on_throughput_rps",
    "server/latency_p50_ms",
    "server/latency_p999_ms",
    "server/latency_p99_ms",
    "server/throughput_rps",
    "synopsis/build_j1_ns",
    "synopsis/build_j3_ns",
];

/// True when `name` is a registered series name.
pub fn is_registered(name: &str) -> bool {
    SERIES.contains(&name)
}

/// The unit a series name's trailing segment implies.
pub fn unit_of(name: &str) -> &'static str {
    if name.ends_with("_rps") {
        "req/s"
    } else if name.ends_with("_rate") {
        "fraction"
    } else if name.ends_with("_ms") {
        "ms"
    } else {
        "ns/iter"
    }
}

/// True when larger values of this series are better (throughput); false
/// for latencies. The regression gate flips its comparison on this.
pub fn higher_is_better(name: &str) -> bool {
    name.ends_with("_rps")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_duplicate_free() {
        for w in SERIES.windows(2) {
            assert!(w[0] < w[1], "SERIES must be sorted and unique: {:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn names_follow_the_scheme() {
        for name in SERIES {
            assert!(
                name.ends_with("_ns")
                    || name.ends_with("_ms")
                    || name.ends_with("_rps")
                    || name.ends_with("_rate"),
                "series {name:?} must end in a unit segment (_ns, _ms, _rps, _rate)"
            );
            assert!(name.contains('/'), "series {name:?} must be namespaced area/detail");
            assert!(
                name.bytes().all(|b| b.is_ascii_lowercase()
                    || b.is_ascii_digit()
                    || b == b'_'
                    || b == b'/'),
                "series {name:?} must be lower_snake with / separators"
            );
        }
    }

    #[test]
    fn direction_and_unit_agree_with_suffixes() {
        assert!(higher_is_better("server/throughput_rps"));
        assert!(!higher_is_better("server/latency_p99_ms"));
        assert_eq!(unit_of("sampler/kl/sample_ns"), "ns/iter");
        assert_eq!(unit_of("server/latency_p999_ms"), "ms");
        assert_eq!(unit_of("server/throughput_rps"), "req/s");
        assert!(!higher_is_better("server/chaos_on_error_rate"));
        assert_eq!(unit_of("server/chaos_on_error_rate"), "fraction");
    }

    #[test]
    fn expected_coverage_is_present() {
        // The acceptance bar: scheme sampling latency, synopsis build
        // time, and server throughput/tail latency, ≥ 12 series total.
        assert!(SERIES.len() >= 12);
        assert!(SERIES.iter().any(|s| s.starts_with("sampler/")));
        assert!(SERIES.iter().any(|s| s.starts_with("scheme/")));
        assert!(SERIES.iter().any(|s| s.starts_with("synopsis/")));
        assert!(SERIES.iter().any(|s| s.starts_with("server/")));
    }
}
