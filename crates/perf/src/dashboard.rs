//! Dashboard export: `dev/bench/data.js` + a static `index.html`.
//!
//! The trajectory is published the same way github-action-benchmark does
//! it — a `data.js` that assigns `window.BENCHMARK_DATA = {…}` with one
//! entry per PR, so the page works from `file://` and GitHub Pages alike
//! and third-party benchmark viewers understand the format. Each export
//! *appends* the new report to the existing file (replacing any previous
//! entry for the same PR, so re-runs update in place).

use crate::schema::BenchReport;
use cqa_common::{CqaError, Json, Result};
use std::path::Path;

/// The entries key: github-action-benchmark groups entries under a tool
/// name; ours is the suite family.
const ENTRIES_KEY: &str = "cqa-perf";

const DATA_PREFIX: &str = "window.BENCHMARK_DATA = ";

/// Converts a report into one dashboard entry.
fn entry_of(report: &BenchReport) -> Json {
    let benches: Vec<Json> = report
        .series
        .iter()
        .map(|s| {
            Json::obj([
                ("name", Json::from(s.name.as_str())),
                ("value", Json::from(s.value)),
                ("range", Json::from(format!("± {}", s.spread))),
                ("unit", Json::from(s.unit.as_str())),
            ])
        })
        .collect();
    Json::obj([
        (
            "commit",
            Json::obj([
                ("id", Json::from(report.env.commit.as_str())),
                ("message", Json::from(format!("PR {}", report.pr))),
                ("url", Json::from("")),
            ]),
        ),
        ("pr", Json::from(report.pr)),
        ("date", Json::from(report.created_unix.saturating_mul(1000))),
        ("tool", Json::from("cargo")),
        ("benches", Json::from(benches)),
    ])
}

/// Parses an existing `data.js` payload (the JSON after the assignment).
fn parse_data_js(text: &str) -> Result<Json> {
    let payload = text
        .trim_start()
        .strip_prefix(DATA_PREFIX)
        .ok_or_else(|| {
            CqaError::Parse("data.js does not start with the expected assignment".into())
        })?
        .trim_end()
        .trim_end_matches(';');
    Json::parse(payload)
}

/// Appends `report` to the dashboard under `dir`, creating `data.js` and
/// `index.html` as needed. Existing entries for the same PR are replaced;
/// entries are kept sorted by PR so the x-axis is the PR sequence.
pub fn export(dir: &Path, report: &BenchReport) -> Result<()> {
    std::fs::create_dir_all(dir)
        .map_err(|e| CqaError::Parse(format!("creating {}: {e}", dir.display())))?;
    let data_path = dir.join("data.js");

    let mut entries: Vec<Json> = match std::fs::read_to_string(&data_path) {
        Ok(text) => parse_data_js(&text)?
            .get("entries")
            .and_then(|e| e.get(ENTRIES_KEY))
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default(),
        Err(_) => Vec::new(),
    };
    let pr = report.pr;
    entries.retain(|e| e.get("pr").and_then(Json::as_u64) != Some(pr));
    entries.push(entry_of(report));
    entries.sort_by_key(|e| e.get("pr").and_then(Json::as_u64).unwrap_or(0));

    let doc = Json::obj([
        ("lastUpdate", Json::from(report.created_unix.saturating_mul(1000))),
        ("repoUrl", Json::from("")),
        ("entries", Json::obj([(ENTRIES_KEY, Json::from(entries))])),
    ]);
    let text = format!("{DATA_PREFIX}{};\n", doc.to_string_compact());
    std::fs::write(&data_path, text)
        .map_err(|e| CqaError::Parse(format!("cannot write {}: {e}", data_path.display())))?;

    let html_path = dir.join("index.html");
    std::fs::write(&html_path, INDEX_HTML)
        .map_err(|e| CqaError::Parse(format!("cannot write {}: {e}", html_path.display())))?;
    Ok(())
}

/// Reads the PR numbers currently in a dashboard (test + CLI listing aid).
pub fn prs_in(dir: &Path) -> Result<Vec<u64>> {
    let text = std::fs::read_to_string(dir.join("data.js")).map_err(|e| {
        CqaError::Parse(format!("cannot read {}: {e}", dir.join("data.js").display()))
    })?;
    let doc = parse_data_js(&text)?;
    Ok(doc
        .get("entries")
        .and_then(|e| e.get(ENTRIES_KEY))
        .and_then(Json::as_arr)
        .map(|arr| arr.iter().filter_map(|e| e.get("pr").and_then(Json::as_u64)).collect())
        .unwrap_or_default())
}

/// The static dashboard page: renders one small-multiple line chart per
/// series from `data.js`, grouped by area. Self-contained (no CDN), works
/// from `file://`.
const INDEX_HTML: &str = r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>cqa-perf trajectory</title>
<style>
  :root { --ink:#1a1a2e; --muted:#667; --grid:#e3e3ec; --line:#2563eb; --dot:#1d4ed8; }
  body { font:14px/1.5 system-ui,sans-serif; color:var(--ink); margin:2rem auto; max-width:1100px; padding:0 1rem; }
  h1 { font-size:1.4rem; } h2 { font-size:1.05rem; margin:1.8rem 0 .4rem; color:var(--muted);
       text-transform:uppercase; letter-spacing:.06em; }
  .meta { color:var(--muted); margin-bottom:1rem; }
  .grid { display:grid; grid-template-columns:repeat(auto-fill,minmax(320px,1fr)); gap:1rem; }
  .card { border:1px solid var(--grid); border-radius:8px; padding:.7rem .9rem .4rem; }
  .card .name { font-weight:600; font-size:.92rem; overflow-wrap:anywhere; }
  .card .last { color:var(--muted); font-size:.85rem; margin-bottom:.2rem; }
  svg { width:100%; height:120px; display:block; }
  .axis { stroke:var(--grid); stroke-width:1; }
  .series-line { fill:none; stroke:var(--line); stroke-width:2; }
  .pt { fill:var(--dot); }
  .tick { fill:var(--muted); font-size:10px; }
</style>
</head>
<body>
<h1>cqa-perf trajectory</h1>
<p class="meta" id="meta">loading data.js…</p>
<div id="charts"></div>
<script src="data.js"></script>
<script>
(function () {
  var data = window.BENCHMARK_DATA;
  var meta = document.getElementById('meta');
  if (!data || !data.entries) { meta.textContent = 'no data.js found next to this page'; return; }
  var entries = (data.entries['cqa-perf'] || []).slice()
    .sort(function (a, b) { return (a.pr || 0) - (b.pr || 0); });
  meta.textContent = entries.length + ' recording(s); last update ' +
    (data.lastUpdate ? new Date(data.lastUpdate).toISOString() : 'unknown');

  // name -> [{pr, value, range, unit}]
  var seriesMap = {};
  entries.forEach(function (e) {
    (e.benches || []).forEach(function (b) {
      (seriesMap[b.name] = seriesMap[b.name] || []).push(
        { pr: e.pr, value: b.value, range: b.range, unit: b.unit, commit: e.commit && e.commit.id });
    });
  });

  function fmt(v) {
    if (v >= 1e9) return (v / 1e9).toFixed(2) + 'G';
    if (v >= 1e6) return (v / 1e6).toFixed(2) + 'M';
    if (v >= 1e3) return (v / 1e3).toFixed(2) + 'k';
    return v >= 100 ? v.toFixed(0) : v.toPrecision(3);
  }

  function chart(name, pts) {
    var W = 320, H = 120, L = 44, R = 8, T = 8, B = 18;
    var values = pts.map(function (p) { return p.value; });
    var lo = Math.min.apply(null, values), hi = Math.max.apply(null, values);
    if (lo === hi) { lo = lo * 0.9; hi = hi * 1.1 || 1; }
    var pad = (hi - lo) * 0.1; lo -= pad; hi += pad; if (lo < 0) lo = 0;
    function x(i) { return pts.length === 1 ? (L + W - R) / 2 : L + (W - L - R) * i / (pts.length - 1); }
    function y(v) { return T + (H - T - B) * (1 - (v - lo) / (hi - lo)); }
    var path = pts.map(function (p, i) { return (i ? 'L' : 'M') + x(i).toFixed(1) + ',' + y(p.value).toFixed(1); }).join(' ');
    var dots = pts.map(function (p, i) {
      return '<circle class="pt" r="3" cx="' + x(i).toFixed(1) + '" cy="' + y(p.value).toFixed(1) +
        '"><title>PR ' + p.pr + (p.commit ? ' (' + p.commit + ')' : '') + ': ' + p.value + ' ' + p.unit +
        (p.range ? ' ' + p.range : '') + '</title></circle>';
    }).join('');
    var ticks = pts.map(function (p, i) {
      return '<text class="tick" text-anchor="middle" x="' + x(i).toFixed(1) + '" y="' + (H - 4) + '">#' + p.pr + '</text>';
    }).join('');
    return '<svg viewBox="0 0 ' + W + ' ' + H + '">' +
      '<line class="axis" x1="' + L + '" y1="' + T + '" x2="' + L + '" y2="' + (H - B) + '"/>' +
      '<line class="axis" x1="' + L + '" y1="' + (H - B) + '" x2="' + (W - R) + '" y2="' + (H - B) + '"/>' +
      '<text class="tick" x="2" y="' + (T + 8) + '">' + fmt(hi) + '</text>' +
      '<text class="tick" x="2" y="' + (H - B) + '">' + fmt(lo) + '</text>' +
      '<path class="series-line" d="' + path + '"/>' + dots + ticks + '</svg>';
  }

  var names = Object.keys(seriesMap).sort();
  var areas = {};
  names.forEach(function (n) {
    var area = n.split('/')[0];
    (areas[area] = areas[area] || []).push(n);
  });
  var root = document.getElementById('charts');
  Object.keys(areas).sort().forEach(function (area) {
    var h = document.createElement('h2'); h.textContent = area; root.appendChild(h);
    var grid = document.createElement('div'); grid.className = 'grid'; root.appendChild(grid);
    areas[area].forEach(function (name) {
      var pts = seriesMap[name];
      var last = pts[pts.length - 1];
      var card = document.createElement('div'); card.className = 'card';
      card.innerHTML = '<div class="name">' + name + '</div>' +
        '<div class="last">latest: ' + fmt(last.value) + ' ' + last.unit + '</div>' + chart(name, pts);
      grid.appendChild(card);
    });
  });
})();
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{bench_series, BenchReport, EnvFingerprint};
    use crate::stats::Summary;

    fn report(pr: u64, value: f64) -> BenchReport {
        let mut r = BenchReport::new(pr, 1_700_000_000, EnvFingerprint::default());
        let s = Summary::from_samples(&[value, value, value]);
        r.push(bench_series("sampler/natural/sample_ns", &s).unwrap()).unwrap();
        r
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cqa-perf-dash-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn export_appends_and_replaces_per_pr() {
        let dir = temp_dir("append");
        export(&dir, &report(5, 100.0)).unwrap();
        export(&dir, &report(6, 110.0)).unwrap();
        assert_eq!(prs_in(&dir).unwrap(), vec![5, 6]);
        // Re-running PR 6 replaces its entry instead of duplicating it.
        export(&dir, &report(6, 120.0)).unwrap();
        assert_eq!(prs_in(&dir).unwrap(), vec![5, 6]);
        assert!(dir.join("index.html").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn data_js_is_the_assignment_format() {
        let dir = temp_dir("format");
        export(&dir, &report(6, 100.0)).unwrap();
        let text = std::fs::read_to_string(dir.join("data.js")).unwrap();
        assert!(text.starts_with(DATA_PREFIX));
        let doc = parse_data_js(&text).unwrap();
        let entry = &doc.get("entries").unwrap().get(ENTRIES_KEY).unwrap().as_arr().unwrap()[0];
        assert_eq!(entry.get("tool").and_then(Json::as_str), Some("cargo"));
        let bench = &entry.get("benches").unwrap().as_arr().unwrap()[0];
        assert_eq!(bench.get("name").and_then(Json::as_str), Some("sampler/natural/sample_ns"));
        assert_eq!(bench.get("unit").and_then(Json::as_str), Some("ns/iter"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
