//! The versioned `BENCH_<pr>.json` schema (serde-free, via
//! [`cqa_common::Json`]).
//!
//! One file per PR at the repo root is the perf trajectory: a
//! [`BenchReport`] records the environment fingerprint the numbers were
//! taken under plus one [`Series`] per registered benchmark. The schema
//! carries a `schema` version string so future readers can stay lenient
//! about fields they don't know and strict about the ones they do.

use crate::names;
use crate::stats::Summary;
use cqa_common::{CqaError, Json, Result};
use std::collections::BTreeMap;
use std::path::Path;

/// Schema identifier written into every report.
pub const SCHEMA: &str = "cqa-perf/1";

/// One recorded benchmark series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Registered series name (see [`crate::names::SERIES`]).
    pub name: String,
    /// Unit of `value` (display only; the gate works on ratios).
    pub unit: String,
    /// Gated value: the *best* observed repeat (min for latency series,
    /// max for throughput). On shared CI hardware whole runs land in a
    /// throttled or boosted machine state, so run medians swing ~2×
    /// between identical re-runs while the best case stays stable — the
    /// same reason pyperf and benchstat gate on min-of-N.
    pub value: f64,
    /// Robust spread (MAD of the repeats, same unit as `value`).
    pub spread: f64,
    /// Repeats that survived outlier rejection.
    pub repeats: u64,
}

impl Series {
    /// True when larger values of this series are better.
    pub fn higher_is_better(&self) -> bool {
        names::higher_is_better(&self.name)
    }

    /// Relative spread (MAD / value), 0 when the value is 0.
    pub fn rel_spread(&self) -> f64 {
        if self.value > 0.0 {
            self.spread / self.value
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("unit", Json::from(self.unit.as_str())),
            ("value", Json::from(self.value)),
            ("spread", Json::from(self.spread)),
            ("repeats", Json::from(self.repeats)),
        ])
    }

    fn from_json(j: &Json) -> Result<Series> {
        Ok(Series {
            name: j.req_str("name")?.to_owned(),
            unit: j.req_str("unit")?.to_owned(),
            value: j.req_f64("value")?,
            spread: j.req_f64("spread")?,
            repeats: j.get("repeats").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

/// Records a series from a measurement summary, converting seconds-based
/// summaries at the call site. The `name` must be registered in
/// [`crate::names::SERIES`] — the `bench-name-registry` lint enforces the
/// literal, and this constructor re-checks at runtime so a computed name
/// cannot slip an unregistered series into the trajectory.
pub fn bench_series(name: &str, summary: &Summary) -> Result<Series> {
    if !names::is_registered(name) {
        return Err(CqaError::InvalidParameter(format!(
            "benchmark series {name:?} is not in crates/perf/src/names.rs::SERIES"
        )));
    }
    let value = if names::higher_is_better(name) { summary.max } else { summary.min };
    Ok(Series {
        name: name.to_owned(),
        unit: names::unit_of(name).to_owned(),
        value,
        spread: summary.mad,
        repeats: summary.count,
    })
}

/// The environment fingerprint a report's numbers were taken under.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnvFingerprint {
    /// Git commit hash (or "unknown").
    pub commit: String,
    /// `rustc -V` output (or "unknown").
    pub rustc: String,
    /// CPU model name (or "unknown").
    pub cpu: String,
    /// Logical core count visible to the run.
    pub cores: u64,
    /// Operating system family (`std::env::consts::OS`).
    pub os: String,
    /// TPC-H scale factor the suites ran at.
    pub scale: f64,
    /// Root RNG seed the suites ran with.
    pub seed: u64,
    /// Profile name ("ci" or "full").
    pub profile: String,
}

impl EnvFingerprint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("commit", Json::from(self.commit.as_str())),
            ("rustc", Json::from(self.rustc.as_str())),
            ("cpu", Json::from(self.cpu.as_str())),
            ("cores", Json::from(self.cores)),
            ("os", Json::from(self.os.as_str())),
            ("scale", Json::from(self.scale)),
            ("seed", Json::from(self.seed)),
            ("profile", Json::from(self.profile.as_str())),
        ])
    }

    fn from_json(j: &Json) -> Result<EnvFingerprint> {
        Ok(EnvFingerprint {
            commit: j.req_str("commit")?.to_owned(),
            rustc: j.req_str("rustc")?.to_owned(),
            cpu: j.req_str("cpu")?.to_owned(),
            cores: j.get("cores").and_then(Json::as_u64).unwrap_or(0),
            os: j.req_str("os")?.to_owned(),
            scale: j.req_f64("scale")?,
            seed: j.get("seed").and_then(Json::as_u64).unwrap_or(0),
            profile: j.req_str("profile")?.to_owned(),
        })
    }
}

/// One PR's perf recording: fingerprint + series.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// PR number this recording belongs to (names the file `BENCH_<pr>.json`).
    pub pr: u64,
    /// Unix timestamp (seconds) of the run; 0 in deterministic tests.
    pub created_unix: u64,
    /// Environment fingerprint.
    pub env: EnvFingerprint,
    /// Recorded series, kept sorted by name.
    pub series: Vec<Series>,
}

impl BenchReport {
    /// A new empty report; series are inserted via [`BenchReport::push`].
    pub fn new(pr: u64, created_unix: u64, env: EnvFingerprint) -> BenchReport {
        BenchReport { pr, created_unix, env, series: Vec::new() }
    }

    /// Inserts a series, keeping the list sorted and rejecting duplicates.
    pub fn push(&mut self, s: Series) -> Result<()> {
        match self.series.binary_search_by(|x| x.name.cmp(&s.name)) {
            Ok(_) => {
                Err(CqaError::InvalidParameter(format!("duplicate series {:?} in report", s.name)))
            }
            Err(at) => {
                self.series.insert(at, s);
                Ok(())
            }
        }
    }

    /// Looks a series up by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Serializes to the versioned JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(SCHEMA)),
            ("pr", Json::from(self.pr)),
            ("created_unix", Json::from(self.created_unix)),
            ("env", self.env.to_json()),
            ("series", Json::from(self.series.iter().map(Series::to_json).collect::<Vec<_>>())),
        ])
    }

    /// Parses a report, enforcing the schema version.
    pub fn from_json(j: &Json) -> Result<BenchReport> {
        let schema = j.req_str("schema")?;
        if schema != SCHEMA {
            return Err(CqaError::Parse(format!(
                "unsupported bench schema {schema:?} (this build reads {SCHEMA:?})"
            )));
        }
        let mut series = Vec::new();
        if let Some(arr) = j.get("series").and_then(Json::as_arr) {
            for s in arr {
                series.push(Series::from_json(s)?);
            }
        }
        series.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(BenchReport {
            pr: j.get("pr").and_then(Json::as_u64).unwrap_or(0),
            created_unix: j.get("created_unix").and_then(Json::as_u64).unwrap_or(0),
            env: EnvFingerprint::from_json(
                j.get("env").ok_or_else(|| CqaError::Parse("report missing \"env\"".into()))?,
            )?,
            series,
        })
    }

    /// Pretty-prints the document with one series per line — stable diffs
    /// in git, still a single valid JSON value.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        let push_field = |out: &mut String, key: &str, val: &Json, trailing: bool| {
            out.push_str(&format!(
                "  \"{key}\": {}{}\n",
                val.to_string_compact(),
                if trailing { "," } else { "" }
            ));
        };
        push_field(&mut out, "schema", &Json::from(SCHEMA), true);
        push_field(&mut out, "pr", &Json::from(self.pr), true);
        push_field(&mut out, "created_unix", &Json::from(self.created_unix), true);
        push_field(&mut out, "env", &self.env.to_json(), true);
        out.push_str("  \"series\": [\n");
        for (i, s) in self.series.iter().enumerate() {
            let comma = if i + 1 < self.series.len() { "," } else { "" };
            out.push_str(&format!("    {}{comma}\n", s.to_json().to_string_compact()));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `path` (pretty form).
    pub fn write_to(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.render())
            .map_err(|e| CqaError::Parse(format!("cannot write {}: {e}", path.display())))
    }

    /// Reads and parses a report file.
    pub fn read_from(path: &Path) -> Result<BenchReport> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CqaError::Parse(format!("cannot read {}: {e}", path.display())))?;
        let j = Json::parse(&text)
            .map_err(|e| CqaError::Parse(format!("cannot parse {}: {e}", path.display())))?;
        BenchReport::from_json(&j)
    }

    /// Series as a name → series map (diff convenience).
    pub fn by_name(&self) -> BTreeMap<&str, &Series> {
        self.series.iter().map(|s| (s.name.as_str(), s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    fn sample_report() -> BenchReport {
        let env = EnvFingerprint {
            commit: "abc123".into(),
            rustc: "rustc 1.99.0".into(),
            cpu: "Test CPU".into(),
            cores: 8,
            os: "linux".into(),
            scale: 0.0005,
            seed: 20210620,
            profile: "ci".into(),
        };
        let mut r = BenchReport::new(6, 0, env);
        let s = Summary::from_samples(&[10.0, 11.0, 9.0]);
        r.push(bench_series("sampler/natural/sample_ns", &s).unwrap()).unwrap();
        r.push(bench_series("server/throughput_rps", &s).unwrap()).unwrap();
        r
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample_report();
        let parsed =
            BenchReport::from_json(&Json::parse(&r.to_json().to_string_compact()).unwrap())
                .unwrap();
        assert_eq!(r, parsed);
        // The pretty form parses to the same report too.
        let pretty = BenchReport::from_json(&Json::parse(&r.render()).unwrap()).unwrap();
        assert_eq!(r, pretty);
    }

    #[test]
    fn unregistered_series_is_rejected() {
        let s = Summary::from_samples(&[1.0]);
        assert!(bench_series("sampler/typo/sample_ns", &s).is_err());
    }

    #[test]
    fn duplicate_series_is_rejected_and_order_is_sorted() {
        let mut r = sample_report();
        let s = Summary::from_samples(&[1.0]);
        assert!(r.push(bench_series("sampler/natural/sample_ns", &s).unwrap()).is_err());
        let names: Vec<&str> = r.series.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn wrong_schema_version_is_refused() {
        let mut j = sample_report().to_json();
        if let Json::Obj(map) = &mut j {
            map.insert("schema".into(), Json::from("cqa-perf/999"));
        }
        assert!(BenchReport::from_json(&j).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("cqa-perf-schema-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let r = sample_report();
        r.write_to(&path).unwrap();
        assert_eq!(BenchReport::read_from(&path).unwrap(), r);
        std::fs::remove_file(&path).ok();
    }
}
