#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `cqa-perf` — the continuous benchmarking subsystem.
//!
//! The paper this workspace reproduces is itself a benchmark, so the repo
//! holds itself to a machine-readable perf contract: every PR records a
//! `BENCH_<pr>.json` at the repo root, and CI gates on the trajectory.
//!
//! * [`names`] — the central registry of series names (the
//!   `bench-name-registry` lint keys on it).
//! * [`stats`] — warmup/repeat measurement with median + MAD outlier
//!   rejection; the core the vendored `criterion` shim delegates to.
//! * [`schema`] — the versioned, serde-free `BENCH_<pr>.json` schema.
//! * [`envinfo`] — commit/rustc/CPU fingerprinting.
//! * [`suites`] — the suite registry: samplers, schemes, synopsis
//!   construction, figure pipeline, server throughput/tail latency.
//! * [`mod@diff`] — the noise-aware regression gate.
//! * [`dashboard`] — `dev/bench/data.js` + static HTML export.
//! * [`cli`] — argument parsing/dispatch shared by the `cqa-perf` binary
//!   and `cqa-cli perf`.
//!
//! See `docs/BENCHMARKING.md` for the operational story.

pub mod cli;
pub mod dashboard;
pub mod diff;
pub mod envinfo;
pub mod names;
pub mod schema;
pub mod stats;
pub mod suites;

pub use diff::{diff, DiffOptions, DiffReport, Verdict};
pub use schema::{bench_series, BenchReport, EnvFingerprint, Series};
pub use stats::{MeasureOpts, Summary};
pub use suites::Profile;
