//! The `cqa-perf` command-line surface, shared by the standalone binary
//! and the `cqa-cli perf` subcommand.
//!
//! ```text
//! cqa-perf run  [--profile ci|full] [--pr N] [--out FILE] [--dashboard DIR]
//! cqa-perf diff --against FILE --current FILE [--tolerance F] [--allow-missing]
//! cqa-perf export --report FILE [--dashboard DIR]
//! ```

use crate::diff::{diff, DiffOptions};
use crate::schema::BenchReport;
use crate::suites::{run_all, Profile};
use crate::{dashboard, envinfo};
use cqa_common::{CqaError, Result};
use std::io::Write;
use std::path::PathBuf;

/// Usage text for `cqa-perf help` and argument errors.
pub const USAGE: &str = "\
USAGE: cqa-perf <command> [options]

  run   [--profile ci|full] [--pr N] [--out FILE] [--dashboard DIR]
        Run the suite registry and write BENCH_<pr>.json
        (default --profile ci, --pr 0, --out BENCH_<pr>.json).
        With --dashboard, also append the recording to DIR/data.js.

  diff  --against FILE --current FILE [--tolerance F] [--allow-missing]
        Gate a recording against a baseline. Exits nonzero when any
        series regresses beyond its noise envelope.

  export --report FILE [--dashboard DIR]
        Append an existing recording to the dashboard (default dev/bench).

  help  Show this message.
";

fn parse_flags(args: &[String]) -> Result<std::collections::BTreeMap<String, String>> {
    let mut flags = std::collections::BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(name) = a.strip_prefix("--") else {
            return Err(CqaError::InvalidParameter(format!("unexpected argument '{a}'")));
        };
        if name == "allow-missing" {
            flags.insert(name.to_owned(), "1".to_owned());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return Err(CqaError::InvalidParameter(format!("--{name} needs a value")));
        };
        flags.insert(name.to_owned(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn run_cmd(args: &[String], out: &mut dyn Write) -> Result<()> {
    let flags = parse_flags(args)?;
    let profile_name = flags.get("profile").map(String::as_str).unwrap_or("ci");
    let profile = Profile::by_name(profile_name).ok_or_else(|| {
        CqaError::InvalidParameter(format!("unknown profile '{profile_name}' (ci or full)"))
    })?;
    let pr: u64 = match flags.get("pr") {
        Some(v) => v
            .parse()
            .map_err(|_| CqaError::InvalidParameter(format!("--pr wants an integer, got '{v}'")))?,
        None => 0,
    };
    let out_path = flags
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("BENCH_{pr}.json")));

    let env = envinfo::fingerprint(profile.scale, profile.seed, profile.name);
    let mut report = BenchReport::new(pr, envinfo::unix_now(), env);
    for s in run_all(&profile)? {
        report.push(s)?;
    }
    report.write_to(&out_path)?;
    writeln!(
        out,
        "wrote {} ({} series, profile {})",
        out_path.display(),
        report.series.len(),
        profile.name
    )
    .map_err(|e| CqaError::InvalidParameter(format!("write output: {e}")))?;
    if let Some(dir) = flags.get("dashboard") {
        dashboard::export(&PathBuf::from(dir), &report)?;
        writeln!(out, "dashboard updated under {dir}")
            .map_err(|e| CqaError::InvalidParameter(format!("write output: {e}")))?;
    }
    Ok(())
}

fn diff_cmd(args: &[String], out: &mut dyn Write) -> Result<bool> {
    let flags = parse_flags(args)?;
    let against = flags
        .get("against")
        .ok_or_else(|| CqaError::InvalidParameter("diff needs --against FILE".into()))?;
    let current = flags
        .get("current")
        .ok_or_else(|| CqaError::InvalidParameter("diff needs --current FILE".into()))?;
    let baseline = BenchReport::read_from(&PathBuf::from(against))?;
    let candidate = BenchReport::read_from(&PathBuf::from(current))?;
    let mut opts = DiffOptions::default();
    if let Some(t) = flags.get("tolerance") {
        opts.tolerance = t.parse().map_err(|_| {
            CqaError::InvalidParameter(format!("--tolerance wants a float, got '{t}'"))
        })?;
    }
    if flags.contains_key("allow-missing") {
        opts.require_all_baseline_series = false;
    }
    let report = diff(&baseline, &candidate, &opts);
    write!(out, "{report}")
        .map_err(|e| CqaError::InvalidParameter(format!("write output: {e}")))?;
    Ok(report.passed())
}

fn export_cmd(args: &[String], out: &mut dyn Write) -> Result<()> {
    let flags = parse_flags(args)?;
    let path = flags
        .get("report")
        .ok_or_else(|| CqaError::InvalidParameter("export needs --report FILE".into()))?;
    let dir = flags.get("dashboard").map(String::as_str).unwrap_or("dev/bench");
    let report = BenchReport::read_from(&PathBuf::from(path))?;
    dashboard::export(&PathBuf::from(dir), &report)?;
    writeln!(out, "dashboard updated under {dir} (PR {})", report.pr)
        .map_err(|e| CqaError::InvalidParameter(format!("write output: {e}")))?;
    Ok(())
}

/// Dispatches a `cqa-perf` invocation. Returns the process exit code:
/// 0 success / gate passed, 1 gate failed, 2 usage or runtime error
/// (errors are written to `out` by the caller via the `Err`).
pub fn dispatch(args: &[String], out: &mut dyn Write) -> Result<i32> {
    match args.first().map(String::as_str) {
        Some("run") => {
            run_cmd(&args[1..], out)?;
            Ok(0)
        }
        Some("diff") => {
            if diff_cmd(&args[1..], out)? {
                Ok(0)
            } else {
                Ok(1)
            }
        }
        Some("export") => {
            export_cmd(&args[1..], out)?;
            Ok(0)
        }
        Some("help") | None => {
            write!(out, "{USAGE}")
                .map_err(|e| CqaError::InvalidParameter(format!("write output: {e}")))?;
            Ok(0)
        }
        Some(other) => {
            Err(CqaError::InvalidParameter(format!("unknown cqa-perf command '{other}'\n{USAGE}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{bench_series, EnvFingerprint};
    use crate::stats::Summary;

    fn report(pr: u64, value: f64) -> BenchReport {
        let mut r = BenchReport::new(pr, 0, EnvFingerprint::default());
        let s = Summary::from_samples(&[value, value * 1.01, value * 0.99]);
        r.push(bench_series("scheme/kl/answer_ns", &s).unwrap()).unwrap();
        r
    }

    fn dispatch_str(args: &[&str]) -> (Result<i32>, String) {
        let mut buf = Vec::new();
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let code = dispatch(&owned, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn help_and_unknown_commands() {
        let (code, out) = dispatch_str(&["help"]);
        assert_eq!(code.unwrap(), 0);
        assert!(out.contains("USAGE"));
        let (code, _) = dispatch_str(&["frobnicate"]);
        assert!(code.is_err());
    }

    #[test]
    fn diff_exit_codes_follow_the_gate() {
        let dir = std::env::temp_dir().join("cqa-perf-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("BENCH_5.json");
        let same = dir.join("BENCH_6.json");
        let slow = dir.join("BENCH_7.json");
        report(5, 1.0e6).write_to(&base).unwrap();
        report(6, 1.0e6).write_to(&same).unwrap();
        report(7, 2.1e6).write_to(&slow).unwrap();

        let (code, out) = dispatch_str(&[
            "diff",
            "--against",
            base.to_str().unwrap(),
            "--current",
            same.to_str().unwrap(),
        ]);
        assert_eq!(code.unwrap(), 0, "{out}");
        assert!(out.contains("PASS"), "{out}");

        let (code, out) = dispatch_str(&[
            "diff",
            "--against",
            base.to_str().unwrap(),
            "--current",
            slow.to_str().unwrap(),
        ]);
        assert_eq!(code.unwrap(), 1, "{out}");
        assert!(out.contains("REGRESSED"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flag_errors_are_clean() {
        assert!(dispatch_str(&["diff"]).0.is_err());
        assert!(dispatch_str(&["run", "--profile", "warp"]).0.is_err());
        assert!(dispatch_str(&["run", "--pr"]).0.is_err());
        assert!(dispatch_str(&["export"]).0.is_err());
    }
}
