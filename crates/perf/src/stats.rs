//! The measurement core: warmup + repeats + robust summaries.
//!
//! Wall-clock benchmark samples are contaminated by one-sided noise
//! (scheduler preemption, cache cold starts, page faults): the minimum and
//! median are stable, the mean is not. Every suite therefore reports the
//! **median** of its repeats with the **MAD** (median absolute deviation)
//! as the spread, after rejecting gross outliers — the same robust pair
//! the regression gate in [`mod@crate::diff`] builds its noise envelope from.
//!
//! All summary math is deterministic on a fixed sample vector, so the gate
//! logic is unit-testable without touching a clock.

use cqa_common::Stopwatch;
use std::time::Duration;

/// Samples whose distance from the median exceeds `OUTLIER_K` MADs are
/// rejected before summarizing. 5 is loose on purpose: with ~10 repeats a
/// legitimate sample is essentially never 5 scaled MADs out, while a
/// preempted run easily is.
pub const OUTLIER_K: f64 = 5.0;

/// Consistency factor making the MAD comparable to a standard deviation
/// under normality (1 / Φ⁻¹(3/4)); used only for outlier scaling.
const MAD_SCALE: f64 = 1.4826;

/// How a suite runs its measurement loop.
#[derive(Debug, Clone, Copy)]
pub struct MeasureOpts {
    /// Untimed warmup batches before the timed repeats.
    pub warmup: u32,
    /// Timed repeats (each contributes one sample).
    pub repeats: u32,
    /// Soft wall-clock budget: once spent, stop early — but never with
    /// fewer than `min_repeats` samples.
    pub budget: Duration,
    /// Lower bound on samples even when over budget.
    pub min_repeats: u32,
}

impl MeasureOpts {
    /// The CI profile: ~1.5 s of samples per series. The span matters as
    /// much as the count — shared hardware sits in throttled or boosted
    /// states for whole fractions of a second, and a run must straddle
    /// them for its best-case sample to be comparable across runs.
    pub fn ci() -> MeasureOpts {
        MeasureOpts { warmup: 3, repeats: 150, budget: Duration::from_secs(2), min_repeats: 7 }
    }

    /// The full profile: more repeats, bigger budget.
    pub fn full() -> MeasureOpts {
        MeasureOpts { warmup: 5, repeats: 300, budget: Duration::from_secs(10), min_repeats: 11 }
    }
}

/// Robust summary of a sample vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Median of the surviving samples.
    pub median: f64,
    /// Median absolute deviation of the surviving samples (unscaled).
    pub mad: f64,
    /// Minimum surviving sample.
    pub min: f64,
    /// Maximum surviving sample.
    pub max: f64,
    /// Surviving sample count.
    pub count: u64,
    /// Samples rejected as outliers.
    pub rejected: u64,
}

impl Summary {
    /// Summarizes `samples` with median/MAD outlier rejection. Empty
    /// input yields an all-zero summary (a suite that produced nothing).
    pub fn from_samples(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary { median: 0.0, mad: 0.0, min: 0.0, max: 0.0, count: 0, rejected: 0 };
        }
        let med = median(samples);
        let spread = mad(samples, med);
        let cutoff = OUTLIER_K * MAD_SCALE * spread;
        let kept: Vec<f64> = if spread > 0.0 {
            samples.iter().copied().filter(|x| (x - med).abs() <= cutoff).collect()
        } else {
            samples.to_vec()
        };
        let med2 = median(&kept);
        let mad2 = mad(&kept, med2);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in &kept {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        Summary {
            median: med2,
            mad: mad2,
            min: lo,
            max: hi,
            count: kept.len() as u64,
            rejected: (samples.len() - kept.len()) as u64,
        }
    }

    /// Relative spread (MAD / median), 0 when the median is 0.
    pub fn rel_spread(&self) -> f64 {
        if self.median > 0.0 {
            self.mad / self.median
        } else {
            0.0
        }
    }
}

/// Median of an unsorted slice (linear interpolation between the two
/// middle elements for even lengths). Returns 0 on empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median absolute deviation around `center` (unscaled).
pub fn mad(xs: &[f64], center: f64) -> f64 {
    let devs: Vec<f64> = xs.iter().map(|x| (x - center).abs()).collect();
    median(&devs)
}

/// Times `repeats` invocations of `f` (each preceded by `warmup` untimed
/// runs once, at the start) and returns the per-invocation seconds. The
/// budget is a soft cap: checked between repeats, never mid-run.
pub fn measure<F: FnMut()>(opts: &MeasureOpts, mut f: F) -> Vec<f64> {
    for _ in 0..opts.warmup {
        f();
    }
    let total = Stopwatch::start();
    let mut samples = Vec::with_capacity(opts.repeats as usize);
    for i in 0..opts.repeats {
        let sw = Stopwatch::start();
        f();
        samples.push(sw.elapsed_secs());
        if i + 1 >= opts.min_repeats && total.elapsed() >= opts.budget {
            break;
        }
    }
    samples
}

/// Like [`measure`], but for operations too fast to time individually:
/// each sample times a calibrated batch of `k` invocations and reports
/// the per-invocation mean for that batch. `k` is chosen so a batch runs
/// at least ~10 ms (clamped to [1, 2²⁰]) — long enough to amortize timer
/// granularity and scheduler blips inside every sample.
pub fn measure_batched<F: FnMut()>(opts: &MeasureOpts, mut f: F) -> Vec<f64> {
    let sw = Stopwatch::start();
    f();
    let once = sw.elapsed_secs().max(1e-9);
    let k = ((1e-2 / once).ceil() as u64).clamp(1, 1 << 20);
    let batch = |f: &mut F| {
        let sw = Stopwatch::start();
        for _ in 0..k {
            f();
        }
        sw.elapsed_secs() / k as f64
    };
    for _ in 0..opts.warmup {
        batch(&mut f);
    }
    let total = Stopwatch::start();
    let mut samples = Vec::with_capacity(opts.repeats as usize);
    for i in 0..opts.repeats {
        samples.push(batch(&mut f));
        if i + 1 >= opts.min_repeats && total.elapsed() >= opts.budget {
            break;
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn summary_is_deterministic_on_fixed_samples() {
        let s = Summary::from_samples(&[10.0, 11.0, 9.0, 10.5, 10.0]);
        assert_eq!(s.median, 10.0);
        assert_eq!(s.mad, 0.5);
        assert_eq!(s.count, 5);
        assert_eq!(s.rejected, 0);
        assert_eq!(s, Summary::from_samples(&[10.0, 11.0, 9.0, 10.5, 10.0]));
    }

    #[test]
    fn gross_outlier_is_rejected() {
        // A preempted run 50× the median must not drag the summary.
        let s = Summary::from_samples(&[10.0, 10.2, 9.8, 10.1, 9.9, 500.0]);
        assert_eq!(s.rejected, 1);
        assert!(s.median < 11.0, "median {} should ignore the outlier", s.median);
        assert!(s.max < 11.0);
    }

    #[test]
    fn zero_mad_keeps_everything() {
        let s = Summary::from_samples(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.mad, 0.0);
    }

    #[test]
    fn measure_respects_repeat_count_and_budget_floor() {
        let opts =
            MeasureOpts { warmup: 1, repeats: 7, budget: Duration::from_secs(60), min_repeats: 3 };
        let mut calls = 0u32;
        let samples = measure(&opts, || calls += 1);
        assert_eq!(samples.len(), 7);
        assert_eq!(calls, 8); // 1 warmup + 7 timed
        assert!(samples.iter().all(|&s| s >= 0.0));

        // A zero budget still yields min_repeats samples.
        let tight = MeasureOpts { budget: Duration::ZERO, ..opts };
        let samples = measure(&tight, || {
            std::hint::black_box(2u64.pow(10));
        });
        assert_eq!(samples.len(), 3);
    }

    #[test]
    fn measure_batched_reports_per_invocation_time() {
        let opts =
            MeasureOpts { warmup: 1, repeats: 5, budget: Duration::from_secs(60), min_repeats: 3 };
        let samples = measure_batched(&opts, || {
            std::hint::black_box((0..32u64).sum::<u64>());
        });
        assert_eq!(samples.len(), 5);
        // Per-invocation time of a 32-element sum is well under a second.
        assert!(samples.iter().all(|&s| s > 0.0 && s < 1.0));
    }
}
