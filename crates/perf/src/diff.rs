//! The regression gate: compares two [`BenchReport`]s under a per-series
//! noise envelope.
//!
//! Wall-clock benchmarks re-run on shared CI hardware jitter by tens of
//! percent, so a naive threshold either cries wolf or misses real
//! regressions. The gate widens each series' tolerance by its *measured*
//! spread — the recorded MAD/median of both the baseline and the candidate
//! — on top of a generous floor, but caps the envelope below 2× so an
//! actual doubling can never pass. Direction is series-aware: `_rps`
//! series regress downward, latencies regress upward.
//!
//! The decision is pure arithmetic on the two reports (no clocks), which
//! is what makes the acceptance tests deterministic.

use crate::schema::BenchReport;
use std::fmt;

/// Gate tuning. The defaults encode the CI contract: a same-machine
/// re-run must pass, a 2× slowdown on any series must fail.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Envelope floor: every series tolerates at least this relative
    /// change (0.35 = 35%), regardless of how tight its spread looks.
    pub tolerance: f64,
    /// How many combined relative MADs widen the envelope beyond the floor.
    pub mad_k: f64,
    /// Envelope ceiling, strictly below 1.0 so a 2× change (ratio 2.0 >
    /// 1 + max_envelope) always fails.
    pub max_envelope: f64,
    /// When true, a series present in the baseline but missing from the
    /// candidate fails the gate (it silently breaks the trajectory).
    pub require_all_baseline_series: bool,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            tolerance: 0.35,
            mad_k: 8.0,
            max_envelope: 0.95,
            require_all_baseline_series: true,
        }
    }
}

impl DiffOptions {
    /// The relative envelope for a baseline/candidate series pair.
    pub fn envelope(&self, base_rel_spread: f64, cand_rel_spread: f64) -> f64 {
        let widened = self.tolerance + self.mad_k * (base_rel_spread + cand_rel_spread);
        widened.clamp(self.tolerance, self.max_envelope)
    }
}

/// Verdict for one series.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within the envelope (or improved).
    Pass,
    /// Beyond the envelope in the regressing direction.
    Regressed,
    /// In the baseline but not the candidate.
    Missing,
    /// In the candidate but not the baseline (starts a new trajectory).
    New,
    /// Not comparable (a value is zero or non-finite).
    Incomparable,
}

/// One row of a diff report.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Series name.
    pub name: String,
    /// Baseline value (None for `New`).
    pub base: Option<f64>,
    /// Candidate value (None for `Missing`).
    pub cand: Option<f64>,
    /// candidate / baseline in the *regressing* direction (>1 is worse);
    /// None when not comparable.
    pub ratio: Option<f64>,
    /// The envelope the ratio was judged against.
    pub envelope: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// The gate's full output.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// One row per series seen in either report, sorted by name.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// Series that regressed (including `Missing` when the options demand
    /// baseline coverage).
    pub fn failures(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.verdict == Verdict::Regressed).collect()
    }

    /// True when the gate passes.
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<34} {:>12} {:>12} {:>8} {:>9}  verdict",
            "series", "baseline", "candidate", "ratio", "envelope"
        )?;
        for r in &self.rows {
            let num = |v: Option<f64>| match v {
                Some(x) => format!("{x:.3}"),
                None => "-".to_owned(),
            };
            let ratio = match r.ratio {
                Some(x) => format!("{x:.3}"),
                None => "-".to_owned(),
            };
            let verdict = match r.verdict {
                Verdict::Pass => "ok",
                Verdict::Regressed => "REGRESSED",
                Verdict::Missing => "MISSING",
                Verdict::New => "new",
                Verdict::Incomparable => "incomparable",
            };
            writeln!(
                f,
                "{:<34} {:>12} {:>12} {:>8} {:>8.0}%  {}",
                r.name,
                num(r.base),
                num(r.cand),
                ratio,
                r.envelope * 100.0,
                verdict
            )?;
        }
        let fails = self.failures().len();
        if fails == 0 {
            writeln!(f, "gate: PASS ({} series)", self.rows.len())
        } else {
            writeln!(f, "gate: FAIL ({fails} of {} series regressed)", self.rows.len())
        }
    }
}

/// Compares `candidate` against `baseline` under `opts`.
pub fn diff(baseline: &BenchReport, candidate: &BenchReport, opts: &DiffOptions) -> DiffReport {
    let base = baseline.by_name();
    let cand = candidate.by_name();
    let mut names: Vec<&str> = base.keys().chain(cand.keys()).copied().collect();
    names.sort_unstable();
    names.dedup();

    let mut rows = Vec::with_capacity(names.len());
    for name in names {
        let row = match (base.get(name), cand.get(name)) {
            (Some(b), None) => DiffRow {
                name: name.to_owned(),
                base: Some(b.value),
                cand: None,
                ratio: None,
                envelope: 0.0,
                verdict: if opts.require_all_baseline_series {
                    Verdict::Regressed
                } else {
                    Verdict::Missing
                },
            },
            (None, Some(c)) => DiffRow {
                name: name.to_owned(),
                base: None,
                cand: Some(c.value),
                ratio: None,
                envelope: 0.0,
                verdict: Verdict::New,
            },
            (Some(b), Some(c)) => {
                let envelope = opts.envelope(b.rel_spread(), c.rel_spread());
                // Ratio in the regressing direction: for latencies a
                // slower candidate is cand/base > 1; for throughput a
                // slower candidate is base/cand > 1.
                let ratio = if b.value.is_finite()
                    && c.value.is_finite()
                    && b.value > 0.0
                    && c.value > 0.0
                {
                    Some(if b.higher_is_better() { b.value / c.value } else { c.value / b.value })
                } else {
                    None
                };
                let verdict = match ratio {
                    None => Verdict::Incomparable,
                    Some(r) if r > 1.0 + envelope => Verdict::Regressed,
                    Some(_) => Verdict::Pass,
                };
                DiffRow {
                    name: name.to_owned(),
                    base: Some(b.value),
                    cand: Some(c.value),
                    ratio,
                    envelope,
                    verdict,
                }
            }
            (None, None) => continue,
        };
        rows.push(row);
    }
    DiffReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{EnvFingerprint, Series};

    fn series(name: &str, value: f64, spread: f64) -> Series {
        Series {
            name: name.to_owned(),
            unit: crate::names::unit_of(name).to_owned(),
            value,
            spread,
            repeats: 11,
        }
    }

    fn report(entries: &[(&str, f64, f64)]) -> BenchReport {
        let mut r = BenchReport::new(6, 0, EnvFingerprint::default());
        for &(name, value, spread) in entries {
            r.push(series(name, value, spread)).unwrap();
        }
        r
    }

    #[test]
    fn identical_rerun_passes() {
        let r = report(&[
            ("sampler/natural/sample_ns", 120.0, 4.0),
            ("scheme/kl/answer_ns", 9.5e6, 3.0e5),
            ("server/throughput_rps", 4200.0, 150.0),
            ("server/latency_p99_ms", 3.2, 0.2),
        ]);
        let d = diff(&r, &r, &DiffOptions::default());
        assert!(d.passed(), "identical re-run must pass:\n{d}");
        assert!(d.rows.iter().all(|row| row.verdict == Verdict::Pass));
    }

    #[test]
    fn jittered_rerun_within_envelope_passes() {
        let base = report(&[("scheme/kl/answer_ns", 1.00e6, 4.0e4)]);
        // 25% slower: inside the 35% floor.
        let cand = report(&[("scheme/kl/answer_ns", 1.25e6, 4.0e4)]);
        assert!(diff(&base, &cand, &DiffOptions::default()).passed());
    }

    #[test]
    fn injected_2x_slowdown_fails() {
        let base = report(&[
            ("sampler/natural/sample_ns", 120.0, 4.0),
            ("scheme/kl/answer_ns", 9.5e6, 3.0e5),
            ("server/latency_p99_ms", 3.2, 0.2),
        ]);
        let mut cand = base.clone();
        // Inject a 2× slowdown on exactly one series.
        for s in &mut cand.series {
            if s.name == "scheme/kl/answer_ns" {
                s.value *= 2.0;
            }
        }
        let d = diff(&base, &cand, &DiffOptions::default());
        assert!(!d.passed(), "2x slowdown must fail:\n{d}");
        let fails = d.failures();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].name, "scheme/kl/answer_ns");
    }

    #[test]
    fn two_x_fails_even_with_absurd_recorded_spread() {
        // Even if both recordings claim enormous jitter, the ceiling keeps
        // the envelope below 100%, so a true doubling still fails.
        let base = report(&[("synopsis/build_j1_ns", 1.0e9, 9.0e8)]);
        let cand = report(&[("synopsis/build_j1_ns", 2.000001e9, 1.8e9)]);
        let d = diff(&base, &cand, &DiffOptions::default());
        assert!(!d.passed(), "ceiling must keep 2x failing:\n{d}");
    }

    #[test]
    fn throughput_direction_is_inverted() {
        let base = report(&[("server/throughput_rps", 4000.0, 100.0)]);
        let halved = report(&[("server/throughput_rps", 2000.0, 100.0)]);
        let doubled = report(&[("server/throughput_rps", 8000.0, 100.0)]);
        assert!(!diff(&base, &halved, &DiffOptions::default()).passed());
        assert!(diff(&base, &doubled, &DiffOptions::default()).passed());
    }

    #[test]
    fn noisy_series_gets_a_wider_envelope_than_the_floor() {
        let opts = DiffOptions::default();
        // Combined relative spread 2% + 2% = 4%, so the envelope is
        // 0.35 + 8 × 0.04 = 0.67: above the floor, below the ceiling.
        let wide = opts.envelope(0.02, 0.02);
        assert!(wide > opts.tolerance && wide < opts.max_envelope);
        // A 50% slowdown passes there but fails a tight series.
        let base = report(&[("scheme/cover/answer_ns", 1.0e6, 2.0e4)]);
        let cand = report(&[("scheme/cover/answer_ns", 1.5e6, 3.0e4)]);
        assert!(diff(&base, &cand, &opts).passed());
        let tight_base = report(&[("scheme/cover/answer_ns", 1.0e6, 0.0)]);
        let tight_cand = report(&[("scheme/cover/answer_ns", 1.5e6, 0.0)]);
        assert!(!diff(&tight_base, &tight_cand, &opts).passed());
    }

    #[test]
    fn missing_series_fails_and_new_series_passes() {
        let base = report(&[("sampler/kl/sample_ns", 100.0, 2.0)]);
        let cand = report(&[("sampler/klm/sample_ns", 100.0, 2.0)]);
        let d = diff(&base, &cand, &DiffOptions::default());
        assert!(!d.passed());
        assert!(d.rows.iter().any(|r| r.verdict == Verdict::Regressed && r.cand.is_none()));
        assert!(d.rows.iter().any(|r| r.verdict == Verdict::New));

        let lenient = DiffOptions { require_all_baseline_series: false, ..DiffOptions::default() };
        assert!(diff(&base, &cand, &lenient).passed());
    }

    #[test]
    fn zero_or_nonfinite_values_are_incomparable_not_fatal() {
        let base = report(&[("figure/fig3_preprocessing_ns", 0.0, 0.0)]);
        let cand = report(&[("figure/fig3_preprocessing_ns", 1.0e9, 0.0)]);
        let d = diff(&base, &cand, &DiffOptions::default());
        assert!(d.passed());
        assert_eq!(d.rows[0].verdict, Verdict::Incomparable);
    }
}
