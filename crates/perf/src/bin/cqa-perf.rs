//! The `cqa-perf` binary: run suites, gate recordings, export dashboards.
//! All logic lives in [`cqa_perf::cli`], which `cqa-cli perf` shares.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = std::io::stdout();
    match cqa_perf::cli::dispatch(&args, &mut out) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("cqa-perf: {e}");
            std::process::exit(2);
        }
    }
}
