//! Environment fingerprinting for bench reports.
//!
//! A perf number without its environment is unfalsifiable: the gate
//! compares recordings taken on *different* machines across PRs, and the
//! fingerprint is what lets a reviewer decide whether a flagged delta is
//! a regression or a hardware change. Every probe degrades to "unknown"
//! rather than failing — a recording from a stripped container is still
//! worth keeping.

use crate::schema::EnvFingerprint;
use std::process::Command;

/// Runs `cmd args…` and returns trimmed stdout on success.
fn capture(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout).trim().to_owned();
    if text.is_empty() {
        None
    } else {
        Some(text)
    }
}

/// The current git commit hash, or "unknown" outside a repo.
pub fn git_commit() -> String {
    capture("git", &["rev-parse", "--short=12", "HEAD"]).unwrap_or_else(|| "unknown".into())
}

/// The `rustc -V` banner, or "unknown".
pub fn rustc_version() -> String {
    capture("rustc", &["-V"]).unwrap_or_else(|| "unknown".into())
}

/// The CPU model name from `/proc/cpuinfo`, or "unknown" off Linux.
pub fn cpu_model() -> String {
    let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
        return "unknown".into();
    };
    info.lines()
        .find(|l| l.starts_with("model name"))
        .and_then(|l| l.split(':').nth(1))
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".into())
}

/// Logical cores visible to this process.
pub fn cores() -> u64 {
    std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1)
}

/// Seconds since the Unix epoch (0 if the clock is before it).
pub fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Collects the full fingerprint for a run at `scale`/`seed`/`profile`.
pub fn fingerprint(scale: f64, seed: u64, profile: &str) -> EnvFingerprint {
    EnvFingerprint {
        commit: git_commit(),
        rustc: rustc_version(),
        cpu: cpu_model(),
        cores: cores(),
        os: std::env::consts::OS.to_owned(),
        scale,
        seed,
        profile: profile.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_never_return_empty_strings() {
        assert!(!git_commit().is_empty());
        assert!(!rustc_version().is_empty());
        assert!(!cpu_model().is_empty());
        assert!(cores() >= 1);
    }

    #[test]
    fn fingerprint_carries_the_run_parameters() {
        let f = fingerprint(0.25, 42, "ci");
        assert_eq!(f.scale, 0.25);
        assert_eq!(f.seed, 42);
        assert_eq!(f.profile, "ci");
        assert_eq!(f.os, std::env::consts::OS);
    }
}
