//! The benchmark suite registry: what `cqa-perf run` measures.
//!
//! Four suite families mirror the paper's axes and the repo's serving
//! stack:
//!
//! 1. **samplers** — per-sample cost of the three repair samplers on the
//!    synthetic chain pair (the §4.2 micro-benchmark);
//! 2. **schemes** — full (ε, δ)-answering latency of all four schemes on
//!    the Boolean-like regime of §7.2;
//! 3. **synopsis** — preprocessing (Figure 3's metric): synopsis
//!    construction over noisy TPC-H at 1 and 3 joins, plus the end-to-end
//!    `fig3` pipeline on a pinned scenario pool;
//! 4. **server** — throughput and p50/p99/p999 tail latency of
//!    `cqa-server` under the closed-loop load generator. The gated values
//!    are the client-side percentiles (exact floats); the server's own
//!    `cqa-obs` histogram quantiles ride along in the load report but are
//!    log₂-bucketed, too coarse to gate on;
//! 5. **flight** — the same throughput measurement with the flight
//!    recorder disabled vs enabled, pricing the always-on per-request
//!    digest + span capture (the acceptance bar is < 5% overhead);
//! 6. **chaos** — the client-visible error rate under the seeded smoke
//!    fault plan, through the retrying client: the reliability floor
//!    (should sit at zero — retries absorb every injected transient).
//!    The fault-*off* cost of the `fault_point!` probes is covered by the
//!    existing `server/throughput_rps` gate: chaos is disarmed in every
//!    other suite, so a probe that stopped being free would regress it;
//! 7. **lint** — the wall-clock of a full `cqa-lint check` over this
//!    workspace, gating the dataflow engine's cost against CI's hard 5s
//!    `timeout` on the lint step.
//!
//! Everything runs at a pinned seed/scale from the [`Profile`]; wall-clock
//! noise is handled downstream by the robust summaries and the gate's
//! envelope, not by pretending the numbers are exact.

use crate::schema::{bench_series, Series};
use crate::stats::{measure_batched, MeasureOpts, Summary};
use cqa_common::{Mt64, Result};
use cqa_core::{
    approx_relative_frequency, Budget, KlSampler, KlmSampler, NaturalSampler, Sampler, Scheme,
};
use cqa_noise::{add_query_aware_noise, NoiseSpec};
use cqa_qgen::{sqg, SqgSpec};
use cqa_query::answers;
use cqa_scenarios::{figures, BenchConfig, Pool};
use cqa_server::{run_chaos, run_load, ChaosSpec, LoadSpec, Server, ServerConfig};
use cqa_storage::Database;
use cqa_synopsis::{build_synopses, AdmissiblePair, BuildOptions};
use cqa_tpch::{generate, TpchConfig};
use std::time::Duration;

/// A named run configuration: pinned seed/scale plus measurement shapes.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Profile name recorded in the fingerprint ("ci" or "full").
    pub name: &'static str,
    /// TPC-H scale factor for data-backed suites.
    pub scale: f64,
    /// Root seed; every suite derives from it deterministically.
    pub seed: u64,
    /// Measurement shape for micro/mid-cost loops.
    pub opts: MeasureOpts,
    /// Measurement shape for expensive end-to-end loops (fewer repeats).
    pub heavy: MeasureOpts,
    /// ε for scheme and server suites.
    pub eps: f64,
    /// δ for scheme and server suites.
    pub delta: f64,
    /// Load-generator clients for the server suite.
    pub clients: usize,
    /// Requests per client per server round.
    pub requests: usize,
    /// Independent server rounds (each a fresh server; one sample each).
    pub server_rounds: u32,
}

impl Profile {
    /// The CI profile: pinned small scale, < 2 minutes end to end.
    pub fn ci() -> Profile {
        Profile {
            name: "ci",
            scale: 0.0005,
            seed: 20210620,
            opts: MeasureOpts::ci(),
            heavy: MeasureOpts {
                warmup: 1,
                repeats: 150,
                budget: Duration::from_secs(3),
                min_repeats: 3,
            },
            eps: 0.2,
            delta: 0.25,
            clients: 4,
            requests: 50,
            server_rounds: 5,
        }
    }

    /// The full profile: larger data, more repeats, tighter ε.
    pub fn full() -> Profile {
        Profile {
            name: "full",
            scale: 0.002,
            seed: 20210620,
            opts: MeasureOpts::full(),
            heavy: MeasureOpts {
                warmup: 2,
                repeats: 300,
                budget: Duration::from_secs(60),
                min_repeats: 5,
            },
            eps: 0.1,
            delta: 0.25,
            clients: 8,
            requests: 100,
            server_rounds: 9,
        }
    }

    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<Profile> {
        match name {
            "ci" => Some(Profile::ci()),
            "full" => Some(Profile::full()),
            _ => None,
        }
    }
}

/// Seconds → nanoseconds, for `_ns` series.
fn to_ns(samples: &[f64]) -> Vec<f64> {
    samples.iter().map(|s| s * 1e9).collect()
}

/// The §4.2 chain pair: `n` images over `n + span` blocks of size 4.
fn chain_pair(n: usize, span: usize) -> Result<AdmissiblePair> {
    let nblocks = n + span;
    let sizes = vec![4u32; nblocks];
    let images: Vec<Vec<(u32, u32)>> = (0..n)
        .map(|i| (0..span).map(|k| ((i + k) as u32, ((i + k) % 4) as u32)).collect())
        .collect();
    AdmissiblePair::new(images, sizes)
}

/// The §7.2 Boolean-like pair: many single-atom images, ratio close to 1.
fn boolean_like() -> Result<AdmissiblePair> {
    let sizes = vec![4u32; 16];
    let mut images = Vec::new();
    for b in 0..16u32 {
        for t in 0..3u32 {
            images.push(vec![(b, t)]);
        }
    }
    AdmissiblePair::new(images, sizes)
}

/// Suite 1: per-sample cost of the three samplers.
pub fn suite_samplers(profile: &Profile) -> Result<Vec<Series>> {
    let pair = chain_pair(64, 3)?;
    let mut out = Vec::new();

    let mut natural = NaturalSampler::new(&pair);
    let mut rng = Mt64::new(profile.seed);
    let samples = measure_batched(&profile.opts, || {
        natural.sample(&mut rng);
    });
    out.push(bench_series("sampler/natural/sample_ns", &Summary::from_samples(&to_ns(&samples)))?);

    let mut kl = KlSampler::new(&pair);
    let mut rng = Mt64::new(profile.seed ^ 1);
    let samples = measure_batched(&profile.opts, || {
        kl.sample(&mut rng);
    });
    out.push(bench_series("sampler/kl/sample_ns", &Summary::from_samples(&to_ns(&samples)))?);

    let mut klm = KlmSampler::new(&pair);
    let mut rng = Mt64::new(profile.seed ^ 2);
    let samples = measure_batched(&profile.opts, || {
        klm.sample(&mut rng);
    });
    out.push(bench_series("sampler/klm/sample_ns", &Summary::from_samples(&to_ns(&samples)))?);
    Ok(out)
}

/// Suite 2: full (ε, δ)-answering latency per scheme.
pub fn suite_schemes(profile: &Profile) -> Result<Vec<Series>> {
    let pair = boolean_like()?;
    let mut out = Vec::new();
    for (scheme, name) in [
        (Scheme::Natural, "scheme/natural/answer_ns"),
        (Scheme::Kl, "scheme/kl/answer_ns"),
        (Scheme::Klm, "scheme/klm/answer_ns"),
        (Scheme::Cover, "scheme/cover/answer_ns"),
    ] {
        let samples = measure_batched(&profile.opts, || {
            let mut rng = Mt64::new(profile.seed);
            approx_relative_frequency(
                &pair,
                scheme,
                profile.eps,
                profile.delta,
                &Budget::unbounded(),
                &mut rng,
            )
            .expect("unbounded budget cannot time out");
        });
        out.push(bench_series(name, &Summary::from_samples(&to_ns(&samples)))?);
    }
    Ok(out)
}

/// Draws a non-trivial SQG query with exactly `joins` joins, as the pool
/// builder does, then returns the noisy instance and the query.
fn noisy_workload(
    base: &Database,
    joins: usize,
    rng: &mut Mt64,
) -> Result<(Database, cqa_query::ConjunctiveQuery)> {
    let q = loop {
        let Ok(q) = sqg(base, SqgSpec { joins, constants: 2, proj_fraction: 1.0 }, rng) else {
            continue;
        };
        if q.join_count() == joins && !answers(base, &q).unwrap_or_default().is_empty() {
            break q;
        }
    };
    let (noisy, _) = add_query_aware_noise(base, &q, NoiseSpec::with_p(0.5), rng)?;
    Ok((noisy, q))
}

/// Suite 3a: synopsis construction over noisy TPC-H at 1 and 3 joins.
pub fn suite_synopsis(profile: &Profile) -> Result<Vec<Series>> {
    let base = generate(TpchConfig { scale: profile.scale, seed: profile.seed });
    let mut rng = Mt64::new(profile.seed ^ 0x51);
    let mut out = Vec::new();
    for (joins, name) in [(1usize, "synopsis/build_j1_ns"), (3, "synopsis/build_j3_ns")] {
        let (noisy, q) = noisy_workload(&base, joins, &mut rng)?;
        let samples = measure_batched(&profile.opts, || {
            build_synopses(&noisy, &q, BuildOptions::default()).expect("synopses build");
        });
        out.push(bench_series(name, &Summary::from_samples(&to_ns(&samples)))?);
    }
    Ok(out)
}

/// Suite 3b: the end-to-end Figure 3 pipeline on a pinned scenario pool.
pub fn suite_figure(profile: &Profile) -> Result<Vec<Series>> {
    let cfg = BenchConfig { scale: profile.scale, seed: profile.seed, ..BenchConfig::smoke() };
    let pool = Pool::build(cfg)?;
    let samples = measure_batched(&profile.heavy, || {
        let (_fig, _summary) = figures::fig3_preprocessing(&pool);
    });
    Ok(vec![bench_series(
        "figure/fig3_preprocessing_ns",
        &Summary::from_samples(&to_ns(&samples)),
    )?])
}

/// Suite 4: server throughput + tail latency through the load generator.
/// Each round binds a **fresh** in-process server (so its histogram and
/// cache start cold), warms the cache with the load generator's warmup
/// query, and contributes one sample per series. Latency percentiles are
/// the exact client-side measurements; the server-side `cqa-obs`
/// histogram still travels in every load report (and is how `bench-serve`
/// prints them) but its log₂ buckets can only move in 2× jumps.
pub fn suite_server(profile: &Profile) -> Result<Vec<Series>> {
    let db = generate(TpchConfig { scale: profile.scale, seed: profile.seed });
    let mut throughput = Vec::new();
    let mut p50 = Vec::new();
    let mut p99 = Vec::new();
    let mut p999 = Vec::new();
    for round in 0..profile.server_rounds {
        let server = Server::bind(
            db.clone(),
            ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServerConfig::default() },
        )
        .map_err(|e| cqa_common::CqaError::InvalidParameter(format!("bind: {e}")))?;
        let mut handle = server
            .spawn()
            .map_err(|e| cqa_common::CqaError::InvalidParameter(format!("spawn: {e}")))?;
        let report = run_load(&LoadSpec {
            addr: handle.addr().to_string(),
            query: "Q(rn) :- region(rk, rn)".to_owned(),
            scheme: Scheme::Klm,
            eps: profile.eps,
            delta: profile.delta,
            clients: profile.clients,
            requests: profile.requests,
            seed: profile.seed ^ u64::from(round),
            timeout_ms: None,
            permute: false,
        });
        handle.shutdown();
        let report = report?;
        throughput.push(report.throughput_rps());
        p50.push(report.client_latency_ms(50.0));
        p99.push(report.client_latency_ms(99.0));
        p999.push(report.client_latency_ms(99.9));
    }
    Ok(vec![
        bench_series("server/throughput_rps", &Summary::from_samples(&throughput))?,
        bench_series("server/latency_p50_ms", &Summary::from_samples(&p50))?,
        bench_series("server/latency_p99_ms", &Summary::from_samples(&p99))?,
        bench_series("server/latency_p999_ms", &Summary::from_samples(&p999))?,
    ])
}

/// One throughput sample per round against a fresh server, with the
/// flight recorder in whatever state the caller set process-wide.
/// Factored out of [`suite_flight`] so the on/off arms are measured by
/// identical code.
fn flight_rounds(profile: &Profile, db: &Database, salt: u64) -> Result<Vec<f64>> {
    let mut throughput = Vec::new();
    for round in 0..profile.server_rounds {
        let server = Server::bind(
            db.clone(),
            ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServerConfig::default() },
        )
        .map_err(|e| cqa_common::CqaError::InvalidParameter(format!("bind: {e}")))?;
        let mut handle = server
            .spawn()
            .map_err(|e| cqa_common::CqaError::InvalidParameter(format!("spawn: {e}")))?;
        let report = run_load(&LoadSpec {
            addr: handle.addr().to_string(),
            query: "Q(rn) :- region(rk, rn)".to_owned(),
            scheme: Scheme::Klm,
            eps: profile.eps,
            delta: profile.delta,
            clients: profile.clients,
            requests: profile.requests,
            seed: profile.seed ^ salt ^ u64::from(round),
            timeout_ms: None,
            permute: false,
        });
        handle.shutdown();
        throughput.push(report?.throughput_rps());
    }
    Ok(throughput)
}

/// Suite 5: the flight recorder's price. Server throughput with the
/// recorder disabled vs enabled (its always-on default), measured by the
/// same rounds as [`suite_server`]; the regression gate then holds both
/// series, and `debug flight` attribution staying within a few percent of
/// the recorder-free baseline is an explicit acceptance bar. The recorder
/// is restored to enabled no matter how the off arm exits.
pub fn suite_flight(profile: &Profile) -> Result<Vec<Series>> {
    let db = generate(TpchConfig { scale: profile.scale, seed: profile.seed });
    cqa_obs::flight::set_enabled(false);
    let off = flight_rounds(profile, &db, 0xf0);
    cqa_obs::flight::set_enabled(true);
    let off = off?;
    let on = flight_rounds(profile, &db, 0x0f)?;
    Ok(vec![
        bench_series("server/flight_off_throughput_rps", &Summary::from_samples(&off))?,
        bench_series("server/flight_on_throughput_rps", &Summary::from_samples(&on))?,
    ])
}

/// Suite 6: the chaos harness's reliability floor. Each round replays the
/// seeded smoke plan (submit rejections, torn writes, shard-lock delays)
/// against a fresh in-process server through the retrying client, then
/// records the fraction of requests that still ended in an error envelope
/// after retries. Any rise above zero means retries stopped absorbing
/// injected transients. Invariant violations (diverged answers, transport
/// errors surviving the budget) fail the suite outright rather than
/// recording a bogus rate.
pub fn suite_chaos(profile: &Profile) -> Result<Vec<Series>> {
    let db = generate(TpchConfig { scale: profile.scale, seed: profile.seed });
    let mut rates = Vec::new();
    // Three rounds: enough for a spread without paying the offline-driver
    // baseline (one apx_cqa run per distinct request seed) many times.
    for round in 0..3u64 {
        let plan = cqa_chaos::FaultPlan::preset("smoke", profile.seed ^ round)
            .expect("smoke is a registered preset");
        let mut spec = ChaosSpec::new("Q(rn) :- region(rk, rn)", plan);
        spec.eps = profile.eps;
        spec.delta = profile.delta;
        spec.clients = 2;
        spec.requests = 8;
        let report = run_chaos(db.clone(), &spec)?;
        if !report.passed() {
            return Err(cqa_common::CqaError::InvalidParameter(format!(
                "chaos suite violated reliability invariants: {:?}",
                report.violations
            )));
        }
        rates.push(report.structured_errors as f64 / report.total_requests as f64);
    }
    Ok(vec![bench_series("server/chaos_on_error_rate", &Summary::from_samples(&rates))?])
}

/// Suite 7: the invariant linter's own wall-clock. CI runs
/// `cqa-lint check` under a hard `timeout 5`, so the dataflow engine's
/// cost (call graph + interprocedural taint/interval fixpoints over the
/// whole workspace) is itself a gated performance surface: a regression
/// here eats the CI budget before it fails it. Measured in-process via
/// the library entry point against this workspace's own sources.
pub fn suite_lint(profile: &Profile) -> Result<Vec<Series>> {
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let opts = MeasureOpts {
        warmup: 1,
        repeats: profile.heavy.repeats.min(20),
        budget: Duration::from_secs(10),
        min_repeats: 3,
    };
    let samples = measure_batched(&opts, || {
        cqa_lint::check_workspace(root).expect("workspace must be lintable");
    });
    let ms: Vec<f64> = samples.iter().map(|s| s * 1e3).collect();
    Ok(vec![bench_series("lint/check_ms", &Summary::from_samples(&ms))?])
}

/// A registered suite: a name and the function producing its series.
type Suite = (&'static str, fn(&Profile) -> Result<Vec<Series>>);

/// Runs every suite in registry order, with progress lines on stderr.
pub fn run_all(profile: &Profile) -> Result<Vec<Series>> {
    let mut out = Vec::new();
    let suites: [Suite; 8] = [
        ("samplers", suite_samplers),
        ("schemes", suite_schemes),
        ("synopsis", suite_synopsis),
        ("figure", suite_figure),
        ("server", suite_server),
        ("flight", suite_flight),
        ("chaos", suite_chaos),
        ("lint", suite_lint),
    ];
    for (name, suite) in suites {
        eprintln!("[cqa-perf] suite {name} ...");
        let series = suite(profile)?;
        for s in &series {
            eprintln!(
                "[cqa-perf]   {} = {:.3} {} (± {:.3}, n={})",
                s.name, s.value, s.unit, s.spread, s.repeats
            );
        }
        out.extend(series);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_resolve_by_name() {
        assert_eq!(Profile::by_name("ci").map(|p| p.name), Some("ci"));
        assert_eq!(Profile::by_name("full").map(|p| p.name), Some("full"));
        assert!(Profile::by_name("nope").is_none());
    }

    #[test]
    fn sampler_suite_records_registered_series() {
        // The fastest suite doubles as an integration test: every series
        // it emits is registered, positive, and ns-scaled.
        let mut profile = Profile::ci();
        profile.opts =
            MeasureOpts { warmup: 1, repeats: 3, budget: Duration::from_secs(5), min_repeats: 3 };
        let series = suite_samplers(&profile).unwrap();
        assert_eq!(series.len(), 3);
        for s in &series {
            assert!(crate::names::is_registered(&s.name), "{}", s.name);
            assert!(s.value > 0.0, "{} = {}", s.name, s.value);
            assert!(s.repeats >= 1);
        }
    }
}
