//! The query-*oblivious* baseline noise generator.
//!
//! §6.1 argues that existing error-generation tools are unsuitable for
//! this benchmark precisely because they ignore the query: "it is likely
//! that we will not affect the evaluation of the query … we typically
//! deal with very large databases, while only a small portion of them is
//! needed to answer a query." This module implements that baseline —
//! identical block-growing mechanics, but facts are selected uniformly
//! from each relation instead of from the query-relevant set — so the
//! claim can be measured (see the `noise_ablation` binary and the tests
//! below).

use crate::{NoiseReport, NoiseSpec};
use cqa_common::{CqaError, Mt64, Result};
use cqa_storage::{is_consistent, Database, Datum};

/// Injects query-oblivious noise: per keyed relation, `⌈p · |R|⌉` facts
/// are selected uniformly at random and their blocks grown to a size in
/// `[ℓ, u]`, with non-key values copied from random donors (same
/// mechanics as the query-aware generator, different selection).
pub fn add_oblivious_noise(
    db: &Database,
    spec: NoiseSpec,
    rng: &mut Mt64,
) -> Result<(Database, NoiseReport)> {
    spec.validate()?;
    if !is_consistent(db) {
        return Err(CqaError::InvalidParameter(
            "noise generator requires a consistent input database".into(),
        ));
    }
    let mut out = db.clone();
    let mut report = NoiseReport::default();
    for (rel, def) in db.schema().iter() {
        let Some(key_len) = def.key_len else { continue };
        let table = db.table(rel);
        let n_rows = table.len();
        if n_rows < 2 {
            continue;
        }
        let m = ((spec.p * n_rows as f64).ceil() as usize).min(n_rows);
        let selected = rng.sample_indices(n_rows, m);
        let mut added = 0usize;
        for sel in &selected {
            let row = table.row(*sel as u32);
            let key = &row[..key_len];
            let s = rng.range_inclusive(spec.lmin as u64, spec.umax as u64) as usize;
            let mut new_fact: Vec<Datum> = row.to_vec();
            for _ in 0..(s - 1) {
                let mut placed = false;
                for _attempt in 0..16 {
                    let donor = table.row(rng.below(n_rows as u64) as u32);
                    if &donor[..key_len] == key {
                        continue;
                    }
                    new_fact[key_len..].copy_from_slice(&donor[key_len..]);
                    if out.insert_datums(rel, &new_fact) {
                        placed = true;
                        break;
                    }
                }
                if placed {
                    added += 1;
                }
            }
        }
        report.per_relation.push((def.name.clone(), n_rows, selected.len(), added));
        report.total_added += added;
    }
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::add_query_aware_noise;
    use cqa_query::parse;
    use cqa_synopsis::{build_synopses, BuildOptions};
    use cqa_tpch::{generate, TpchConfig};

    #[test]
    fn oblivious_noise_makes_the_database_inconsistent() {
        let db = generate(TpchConfig::tiny());
        let mut rng = Mt64::new(1);
        let (noisy, report) = add_oblivious_noise(&db, NoiseSpec::with_p(0.3), &mut rng).unwrap();
        assert!(report.total_added > 0);
        assert!(!is_consistent(&noisy));
    }

    /// The paper's §6.1 argument, measured: at equal p, query-aware noise
    /// inflates the query's homomorphic size far more per injected fact
    /// than oblivious noise, because the latter spends most additions on
    /// facts the query never reads.
    #[test]
    fn query_aware_noise_affects_the_query_more_per_fact() {
        let db = generate(TpchConfig { scale: 0.001, seed: 3 });
        // A selective query: only a sliver of the database is relevant.
        let q = parse(
            db.schema(),
            "Q(cn) :- customer(ck, cn, nk, 'BUILDING', bal), nation(nk, nn, rk)",
        )
        .unwrap();
        let base_homs = build_synopses(&db, &q, BuildOptions::default()).unwrap().hom_size;

        let mut rng_a = Mt64::new(7);
        let (aware, aware_rep) =
            add_query_aware_noise(&db, &q, NoiseSpec::with_p(0.5), &mut rng_a).unwrap();
        let mut rng_b = Mt64::new(7);
        let (obliv, obliv_rep) =
            add_oblivious_noise(&db, NoiseSpec::with_p(0.5), &mut rng_b).unwrap();

        let aware_homs = build_synopses(&aware, &q, BuildOptions::default()).unwrap().hom_size;
        let obliv_homs = build_synopses(&obliv, &q, BuildOptions::default()).unwrap().hom_size;

        let aware_gain = (aware_homs - base_homs) as f64 / aware_rep.total_added.max(1) as f64;
        let obliv_gain = (obliv_homs - base_homs) as f64 / obliv_rep.total_added.max(1) as f64;
        assert!(
            aware_gain > 5.0 * obliv_gain,
            "aware: +{} homs / {} facts; oblivious: +{} homs / {} facts",
            aware_homs - base_homs,
            aware_rep.total_added,
            obliv_homs - base_homs,
            obliv_rep.total_added
        );
        // And the oblivious generator had to add far more facts overall.
        assert!(obliv_rep.total_added > aware_rep.total_added);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let db = generate(TpchConfig::tiny());
        let mut rng = Mt64::new(2);
        assert!(add_oblivious_noise(&db, NoiseSpec { p: 0.0, lmin: 2, umax: 5 }, &mut rng).is_err());
        let (noisy, _) = add_oblivious_noise(&db, NoiseSpec::with_p(0.2), &mut rng).unwrap();
        assert!(add_oblivious_noise(&noisy, NoiseSpec::with_p(0.2), &mut rng).is_err());
    }
}
