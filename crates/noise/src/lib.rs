#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The query-aware noise generator for primary keys (§6.1).
//!
//! Existing error-generation tools are query-oblivious: random key
//! violations in a large database almost never touch the small portion a
//! given query reads, so the resulting "inconsistency" would not affect
//! the query at all. The paper's generator instead targets exactly the
//! facts that *can* affect the query result:
//!
//! 1. Build `syn_{Σ,Q}(D)` on the consistent database and collect
//!    `H = ⋃ᵢ Hᵢ` — every fact participating in a consistent homomorphic
//!    image of the query.
//! 2. For each relation `R` with a key, randomly select `⌈p · |H_R|⌉` of
//!    those facts (`p` is the noise percentage).
//! 3. For each selected fact, draw a target block size `s ∈ [ℓ, u]` and
//!    add `s − 1` new facts with the *same key*. The non-key values are
//!    copied from a random other `R`-fact with a *different* key, so the
//!    injected facts keep the join patterns present in the data (crucial
//!    for multi-attribute foreign-key joins).

pub mod oblivious;

pub use oblivious::add_oblivious_noise;

use cqa_common::{CqaError, Mt64, Result};
use cqa_query::ConjunctiveQuery;
use cqa_storage::{is_consistent, Database, Datum, RelId};
use cqa_synopsis::{build_synopses, BuildOptions};
use std::collections::{BTreeMap, BTreeSet};

/// Parameters of one noise-injection run.
#[derive(Debug, Clone, Copy)]
pub struct NoiseSpec {
    /// The fraction `0 < p ≤ 1` of query-relevant facts per relation whose
    /// blocks receive noise.
    pub p: f64,
    /// Minimum size `ℓ ≥ 2` of a generated non-singleton block.
    pub lmin: u32,
    /// Maximum size `u ≥ ℓ` of a generated non-singleton block.
    pub umax: u32,
}

impl NoiseSpec {
    /// The paper's setting: block sizes in `[2, 5]`.
    pub fn with_p(p: f64) -> Self {
        NoiseSpec { p, lmin: 2, umax: 5 }
    }

    fn validate(&self) -> Result<()> {
        if !(self.p > 0.0 && self.p <= 1.0) {
            return Err(CqaError::InvalidParameter(format!(
                "noise percentage must be in (0,1], got {}",
                self.p
            )));
        }
        if self.lmin < 2 || self.umax < self.lmin {
            return Err(CqaError::InvalidParameter(format!(
                "block size range [{}, {}] invalid (need 2 ≤ ℓ ≤ u)",
                self.lmin, self.umax
            )));
        }
        Ok(())
    }
}

/// What a noise run did, per relation.
#[derive(Debug, Clone, Default)]
pub struct NoiseReport {
    /// `(relation name, query-relevant facts, facts selected, facts added)`.
    pub per_relation: Vec<(String, usize, usize, usize)>,
    /// Total facts added across relations.
    pub total_added: usize,
}

/// Injects query-aware noise, returning the inconsistent database `D*`
/// and a report.
///
/// Preconditions (checked): `D |= Σ` and `Q(D) ≠ ∅`.
pub fn add_query_aware_noise(
    db: &Database,
    q: &ConjunctiveQuery,
    spec: NoiseSpec,
    rng: &mut Mt64,
) -> Result<(Database, NoiseReport)> {
    spec.validate()?;
    if !is_consistent(db) {
        return Err(CqaError::InvalidParameter(
            "noise generator requires a consistent input database".into(),
        ));
    }

    // Step 1: the query-relevant facts, grouped by relation.
    let syn = build_synopses(db, q, BuildOptions::default())?;
    let mut relevant: BTreeMap<RelId, BTreeSet<u32>> = BTreeMap::new();
    for entry in &syn.entries {
        for image in entry.pair.images() {
            for atom in image {
                let (rel, bid) = entry.global_blocks[atom.block as usize];
                let row = db.blocks(rel).block_rows(bid)[atom.tid as usize];
                relevant.entry(rel).or_default().insert(row);
            }
        }
    }
    if relevant.is_empty() {
        return Err(CqaError::InvalidParameter(
            "query has no consistent homomorphic images; nothing to perturb".into(),
        ));
    }

    let mut out = db.clone();
    let mut report = NoiseReport::default();
    for (rel, rows) in relevant {
        let def = db.schema().relation(rel);
        let Some(key_len) = def.key_len else { continue };
        let h_r: Vec<u32> = rows.into_iter().collect();
        // Step 2: select ⌈p · |H_R|⌉ facts.
        let m = ((spec.p * h_r.len() as f64).ceil() as usize).min(h_r.len());
        let selected = rng.sample_indices(h_r.len(), m);
        let table = db.table(rel);
        let n_rows = table.len();
        let mut added = 0usize;
        for sel in &selected {
            let row = table.row(h_r[*sel]);
            let key = &row[..key_len];
            // Step 3: grow the block to size s ∈ [ℓ, u].
            let s = rng.range_inclusive(spec.lmin as u64, spec.umax as u64) as usize;
            let mut new_fact: Vec<Datum> = row.to_vec();
            for _ in 0..(s - 1) {
                // Copy the non-key part of a random donor with a different
                // key, preserving join patterns. Retry a few times when the
                // donor collides (same key, or duplicate fact).
                let mut placed = false;
                for _attempt in 0..16 {
                    let donor = table.row(rng.below(n_rows as u64) as u32);
                    if &donor[..key_len] == key {
                        continue;
                    }
                    new_fact[key_len..].copy_from_slice(&donor[key_len..]);
                    if out.insert_datums(rel, &new_fact) {
                        placed = true;
                        break;
                    }
                }
                if placed {
                    added += 1;
                }
            }
        }
        report.per_relation.push((def.name.clone(), h_r.len(), selected.len(), added));
        report.total_added += added;
    }
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::{answers, parse};
    use cqa_storage::violations;
    use cqa_tpch::{generate, TpchConfig};

    fn base() -> Database {
        generate(TpchConfig { scale: 0.001, seed: 11 })
    }

    #[test]
    fn noise_makes_the_database_inconsistent() {
        let db = base();
        let q = parse(db.schema(), "Q(nn) :- nation(nk, nn, rk), region(rk, rn)").unwrap();
        let mut rng = Mt64::new(1);
        let (noisy, report) =
            add_query_aware_noise(&db, &q, NoiseSpec::with_p(0.5), &mut rng).unwrap();
        assert!(report.total_added > 0);
        assert!(!is_consistent(&noisy));
        assert!(noisy.fact_count() > db.fact_count());
        // The original database is untouched.
        assert!(is_consistent(&db));
    }

    #[test]
    fn block_sizes_stay_within_bounds() {
        let db = base();
        let q = parse(db.schema(), "Q(sn) :- supplier(sk, sn, nk, bal)").unwrap();
        let mut rng = Mt64::new(2);
        let spec = NoiseSpec { p: 0.4, lmin: 2, umax: 5 };
        let (noisy, _) = add_query_aware_noise(&db, &q, spec, &mut rng).unwrap();
        let sup = noisy.schema().rel_id("supplier").unwrap();
        let blocks = noisy.blocks(sup);
        let mut saw_non_singleton = false;
        for (bid, rows) in blocks.iter() {
            assert!(rows.len() <= spec.umax as usize, "block {bid} has {} facts", rows.len());
            if rows.len() > 1 {
                saw_non_singleton = true;
            }
        }
        assert!(saw_non_singleton);
    }

    #[test]
    fn noise_targets_query_relevant_relations() {
        let db = base();
        // A query over nation/region only: noise must not touch lineitem.
        let q = parse(db.schema(), "Q(nn) :- nation(nk, nn, rk), region(rk, rn)").unwrap();
        let mut rng = Mt64::new(3);
        let (noisy, _) = add_query_aware_noise(&db, &q, NoiseSpec::with_p(1.0), &mut rng).unwrap();
        let li = noisy.schema().rel_id("lineitem").unwrap();
        assert_eq!(noisy.blocks(li).non_singleton_count(), 0);
        let violated: BTreeSet<_> = violations(&noisy).into_iter().map(|v| v.rel).collect();
        let nation = noisy.schema().rel_id("nation").unwrap();
        let region = noisy.schema().rel_id("region").unwrap();
        assert!(violated.is_subset(&BTreeSet::from([nation, region])));
    }

    #[test]
    fn injected_facts_keep_keys_and_change_nonkeys() {
        let db = base();
        let q = parse(db.schema(), "Q(cn) :- customer(ck, cn, nk, seg, bal)").unwrap();
        let mut rng = Mt64::new(4);
        let (noisy, _) = add_query_aware_noise(&db, &q, NoiseSpec::with_p(0.3), &mut rng).unwrap();
        for v in violations(&noisy) {
            let rel = v.rel;
            let key_len = noisy.schema().relation(rel).key_len.unwrap();
            let first = noisy.fact(v.facts[0]).to_vec();
            for f in &v.facts[1..] {
                let row = noisy.fact(*f);
                assert_eq!(&row[..key_len], &first[..key_len], "key must be shared");
                assert_ne!(&row[key_len..], &first[key_len..], "non-key must differ");
            }
        }
    }

    #[test]
    fn more_noise_means_more_conflicts() {
        let db = base();
        let q = parse(db.schema(), "Q(cn) :- customer(ck, cn, nk, seg, bal)").unwrap();
        let mut r1 = Mt64::new(5);
        let mut r2 = Mt64::new(5);
        let (_, low) = add_query_aware_noise(&db, &q, NoiseSpec::with_p(0.1), &mut r1).unwrap();
        let (_, high) = add_query_aware_noise(&db, &q, NoiseSpec::with_p(0.9), &mut r2).unwrap();
        assert!(high.total_added > 2 * low.total_added);
    }

    #[test]
    fn noise_preserves_query_answerability() {
        // The injected facts copy non-key values from real facts, so the
        // query keeps (at least) its original answers in the noisy data.
        let db = base();
        let q =
            parse(db.schema(), "Q(nn) :- supplier(sk, sn, nk, bal), nation(nk, nn, rk)").unwrap();
        let before = answers(&db, &q).unwrap().len();
        let mut rng = Mt64::new(6);
        let (noisy, _) = add_query_aware_noise(&db, &q, NoiseSpec::with_p(0.5), &mut rng).unwrap();
        let after = answers(&noisy, &q).unwrap().len();
        assert!(after >= before);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let db = base();
        let q = parse(db.schema(), "Q(rn) :- region(rk, rn)").unwrap();
        let mut rng = Mt64::new(7);
        assert!(add_query_aware_noise(&db, &q, NoiseSpec { p: 0.0, lmin: 2, umax: 5 }, &mut rng)
            .is_err());
        assert!(add_query_aware_noise(&db, &q, NoiseSpec { p: 0.5, lmin: 1, umax: 5 }, &mut rng)
            .is_err());
        assert!(add_query_aware_noise(&db, &q, NoiseSpec { p: 0.5, lmin: 4, umax: 3 }, &mut rng)
            .is_err());
    }

    #[test]
    fn inconsistent_input_is_rejected() {
        let db = base();
        let q = parse(db.schema(), "Q(rn) :- region(rk, rn)").unwrap();
        let mut rng = Mt64::new(8);
        let (noisy, _) = add_query_aware_noise(&db, &q, NoiseSpec::with_p(1.0), &mut rng).unwrap();
        assert!(add_query_aware_noise(&noisy, &q, NoiseSpec::with_p(0.5), &mut rng).is_err());
    }

    #[test]
    fn empty_query_result_is_rejected() {
        let db = base();
        let q = parse(db.schema(), "Q(rn) :- region(999, rn)").unwrap();
        let mut rng = Mt64::new(9);
        assert!(add_query_aware_noise(&db, &q, NoiseSpec::with_p(0.5), &mut rng).is_err());
    }

    #[test]
    fn noise_is_deterministic_given_a_seed() {
        let db = base();
        let q = parse(db.schema(), "Q(cn) :- customer(ck, cn, nk, seg, bal)").unwrap();
        let mut r1 = Mt64::new(10);
        let mut r2 = Mt64::new(10);
        let (a, _) = add_query_aware_noise(&db, &q, NoiseSpec::with_p(0.3), &mut r1).unwrap();
        let (b, _) = add_query_aware_noise(&db, &q, NoiseSpec::with_p(0.3), &mut r2).unwrap();
        assert_eq!(a.fact_count(), b.fact_count());
    }
}
