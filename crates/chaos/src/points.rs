//! Central registry of every fault-injection point in the workspace.
//!
//! A `fault_point!(name)` planted at a fallible boundary but missing from
//! this array fails nowhere — the chaos runner just never exercises it and
//! the reliability handbook never documents it. `cqa-lint`'s
//! `fault-point-registry` rule checks both directions: every
//! `fault_point!` literal in the workspace must appear here, and every
//! name here must have at least one call site (see `docs/ANALYSIS.md`).
//!
//! Naming scheme mirrors the span registry: `area/operation`, the area
//! matching the subsystem that owns the boundary. The per-point failure
//! semantics — what a client observes when each point fires — are the
//! guarantee table in `docs/RELIABILITY.md`.

/// Every fault-point name passed to [`crate::fault_point!`], sorted.
pub const POINTS: &[&str] = &[
    // crates/server/src/cache.rs — synopsis cache
    "cache/insert",
    "cache/lookup",
    "cache/shard_lock",
    // crates/server/src/pool.rs + server.rs — worker pool
    "pool/handoff",
    "pool/submit",
    // crates/server/src/server.rs — connection I/O
    "protocol/flush",
    "protocol/read",
    "protocol/write",
    // crates/server/src/server.rs — request execution
    "server/deadline",
    // crates/storage — dump loading
    "storage/dump_load",
    // crates/server/src/server.rs — synopsis construction
    "synopsis/build",
];

/// Whether `name` is a registered fault point.
pub fn is_registered(name: &str) -> bool {
    index_of(name).is_some()
}

/// The index of `name` in [`POINTS`], used to key the per-point hit and
/// injection counters. `POINTS` is sorted, so this is a binary search.
pub fn index_of(name: &str) -> Option<usize> {
    POINTS.binary_search(&name).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_duplicate_free() {
        for w in POINTS.windows(2) {
            assert!(
                w[0] < w[1],
                "POINTS must be sorted and duplicate-free: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn names_follow_the_scheme() {
        for p in POINTS {
            assert!(p.contains('/') && !p.contains(' '), "point {p:?} must be area/operation");
        }
    }

    #[test]
    fn index_of_agrees_with_position() {
        for (i, p) in POINTS.iter().enumerate() {
            assert_eq!(index_of(p), Some(i));
        }
        assert_eq!(index_of("no/such_point"), None);
    }
}
