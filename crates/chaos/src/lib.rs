//! Deterministic fault injection for the request path.
//!
//! The `no-panic-in-request-path` lint proves statically that the serving
//! tier cannot abort; this crate is its **dynamic twin**. Every fallible
//! boundary in the request path carries a [`fault_point!`] — a macro that
//! compiles to a single relaxed atomic load when the harness is disarmed
//! (the same zero-cost-when-disabled discipline as `cqa-obs` spans) and,
//! when armed, consults the active [`FaultPlan`] to decide whether to
//! inject a fault at that boundary: a structured error, a delay, a short
//! write, or a worker panic.
//!
//! Decisions are **deterministic and schedule-independent**: each point
//! keeps a hit counter, and whether hit `i` of point `p` fires under plan
//! seed `s` is a pure hash of `(s, p, i)` — no RNG state, no clock. Two
//! runs of the same workload see the same faults at the same hit indices
//! regardless of thread interleaving.
//!
//! The chaos runner (`cqa_server::chaos`, `cqa-cli chaos`) replays
//! bench-serve load under a plan and asserts the reliability invariants;
//! the per-point guarantees are documented in `docs/RELIABILITY.md`.
//!
//! ```
//! use cqa_chaos::{fault_point, FaultPlan};
//!
//! // Disarmed: one atomic load, no fault.
//! assert!(fault_point!("cache/insert").is_none());
//!
//! // Armed: the seeded plan decides.
//! cqa_chaos::arm(&FaultPlan::preset("all-points-error", 42).unwrap()).unwrap();
//! let fired: u32 = (0..100).map(|_| u32::from(fault_point!("cache/insert").is_some())).sum();
//! cqa_chaos::disarm();
//! assert!(fired > 0 && fired < 100);
//! ```

#![forbid(unsafe_code)]

pub mod points;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use cqa_common::fnv1a64_parts;

/// Global arm flag. Reading it is the only cost a [`fault_point!`] pays
/// in normal operation.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Whether a fault plan is armed. `#[inline(always)]` so the disarmed
/// fast path of [`fault_point!`] is a single relaxed load.
#[inline(always)]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// A fault the enclosing boundary must surface itself. [`trigger`]
/// handles delays and worker panics internally; errors and short writes
/// are returned because only the call site knows its error type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation with the boundary's structured error.
    Error,
    /// Write a truncated payload, then behave as if the peer hung up.
    ShortWrite,
}

/// What to inject when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Surface the boundary's error path ([`Fault::Error`]).
    Error,
    /// Sleep for `ms` milliseconds, then proceed normally.
    Delay {
        /// Injected latency in milliseconds.
        ms: u64,
    },
    /// Truncate the write ([`Fault::ShortWrite`]); only meaningful at
    /// write boundaries, other points treat it as [`FaultKind::Error`].
    ShortWrite,
    /// Panic at the point; the worker pool contains it with
    /// `catch_unwind` and the client sees a structured `internal` error.
    PanicInWorker,
}

/// When a rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on each hit independently with this probability, decided by
    /// the pure hash of `(plan seed, point, hit index)`.
    Probability(f64),
    /// Fire on every `n`-th hit of the point (hits 1-based: `n`, `2n`, …).
    NthHit(u64),
}

/// One injection rule: a point (or `"*"` for every registered point),
/// a fault kind, and a trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Registered point name from [`points::POINTS`], or `"*"`.
    pub point: String,
    /// What to inject.
    pub kind: FaultKind,
    /// When to inject it.
    pub trigger: Trigger,
}

/// A seeded, named set of injection rules. Same plan + same workload ⇒
/// same faults, independent of scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every per-hit decision.
    pub seed: u64,
    /// The rules; the first rule that fires at a point wins.
    pub rules: Vec<FaultRule>,
}

/// The named plan presets accepted by [`FaultPlan::preset`] (and by
/// `cqa-cli chaos --plan`).
pub const PRESETS: &[&str] =
    &["all-points-delay", "all-points-error", "short-write", "smoke", "worker-panic"];

impl FaultPlan {
    /// Build one of the named preset plans, or `None` for an unknown name.
    ///
    /// * `all-points-error` — every registered point errors with p=0.2.
    /// * `all-points-delay` — every registered point delays 2 ms with p=0.25.
    /// * `smoke` — error + delay at three points (the CI smoke plan).
    /// * `short-write` — truncated protocol writes with p=0.25.
    /// * `worker-panic` — every 5th pool handoff panics in the worker.
    pub fn preset(name: &str, seed: u64) -> Option<FaultPlan> {
        let rule = |point: &str, kind, trigger| FaultRule { point: point.into(), kind, trigger };
        let rules = match name {
            "all-points-error" => vec![rule("*", FaultKind::Error, Trigger::Probability(0.2))],
            "all-points-delay" => {
                vec![rule("*", FaultKind::Delay { ms: 2 }, Trigger::Probability(0.25))]
            }
            "smoke" => vec![
                rule("pool/submit", FaultKind::Error, Trigger::Probability(0.15)),
                rule("protocol/write", FaultKind::Error, Trigger::Probability(0.15)),
                rule("cache/shard_lock", FaultKind::Delay { ms: 2 }, Trigger::Probability(0.25)),
            ],
            "short-write" => {
                vec![rule("protocol/write", FaultKind::ShortWrite, Trigger::Probability(0.25))]
            }
            "worker-panic" => {
                vec![rule("pool/handoff", FaultKind::PanicInWorker, Trigger::NthHit(5))]
            }
            _ => return None,
        };
        Some(FaultPlan { seed, rules })
    }
}

/// A compiled plan: rules resolved to point indices, plus the per-point
/// hit and injection counters. Kept after [`disarm`] so reports can read
/// the counters of the run that just finished.
struct Active {
    seed: u64,
    /// `by_point[i]` = the rules that apply to `points::POINTS[i]`, in
    /// plan order (wildcards expanded), paired with their rule index for
    /// decision mixing.
    by_point: Vec<Vec<(usize, FaultKind, Trigger)>>,
    hits: Vec<AtomicU64>,
    injections: Vec<AtomicU64>,
}

static PLAN: Mutex<Option<Active>> = Mutex::new(None);

/// Hit/injection totals for one registered point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointCounts {
    /// The registered point name.
    pub point: &'static str,
    /// How many times the point was reached while armed.
    pub hits: u64,
    /// How many of those hits injected a fault.
    pub injections: u64,
}

/// Compile and arm `plan`. Fails (leaving the harness disarmed) if a rule
/// names an unregistered point, a probability is outside `[0, 1]`, or an
/// nth-hit period is zero.
pub fn arm(plan: &FaultPlan) -> Result<(), String> {
    let n = points::POINTS.len();
    let mut by_point: Vec<Vec<(usize, FaultKind, Trigger)>> = vec![Vec::new(); n];
    for (rule_idx, rule) in plan.rules.iter().enumerate() {
        match rule.trigger {
            Trigger::Probability(p) if !(0.0..=1.0).contains(&p) => {
                return Err(format!("rule {rule_idx}: probability {p} outside [0, 1]"));
            }
            Trigger::NthHit(0) => return Err(format!("rule {rule_idx}: nth-hit period is zero")),
            _ => {}
        }
        if rule.point == "*" {
            for sites in by_point.iter_mut() {
                sites.push((rule_idx, rule.kind, rule.trigger));
            }
        } else if let Some(i) = points::index_of(&rule.point) {
            by_point[i].push((rule_idx, rule.kind, rule.trigger));
        } else {
            return Err(format!("rule {rule_idx}: unknown fault point {:?}", rule.point));
        }
    }
    let active = Active {
        seed: plan.seed,
        by_point,
        hits: (0..n).map(|_| AtomicU64::new(0)).collect(),
        injections: (0..n).map(|_| AtomicU64::new(0)).collect(),
    };
    *PLAN.lock().unwrap_or_else(PoisonError::into_inner) = Some(active);
    ARMED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Disarm the harness. The last plan's counters stay readable via
/// [`counts`] until the next [`arm`].
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
}

/// Per-point hit/injection totals of the current (or most recently
/// disarmed) plan. Empty if nothing was ever armed.
pub fn counts() -> Vec<PointCounts> {
    let guard = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(active) = guard.as_ref() else { return Vec::new() };
    points::POINTS
        .iter()
        .enumerate()
        .map(|(i, point)| PointCounts {
            point,
            hits: active.hits[i].load(Ordering::Relaxed),
            injections: active.injections[i].load(Ordering::Relaxed),
        })
        .collect()
}

/// Map the decision hash to a uniform draw in `[0, 1)`. Mixing the rule
/// index in keeps stacked rules on one point independent.
fn unit(seed: u64, point: &str, hit: u64, rule_idx: usize) -> f64 {
    let h = fnv1a64_parts([
        seed.to_le_bytes().as_slice(),
        point.as_bytes(),
        hit.to_le_bytes().as_slice(),
        (rule_idx as u64).to_le_bytes().as_slice(),
    ]);
    // Take the top 53 bits so the quotient is exact in an f64.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The slow path of [`fault_point!`]: record the hit, decide per the
/// active plan, and either perform the fault here (delay, panic) or hand
/// it back for the boundary to surface ([`Fault::Error`],
/// [`Fault::ShortWrite`]).
pub fn trigger(name: &str) -> Option<Fault> {
    debug_assert!(points::is_registered(name), "unregistered fault point {name:?}");
    let fired = {
        let guard = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
        let active = guard.as_ref()?;
        let idx = points::index_of(name)?;
        let hit = active.hits[idx].fetch_add(1, Ordering::Relaxed);
        let fired =
            active.by_point[idx].iter().copied().find(|&(rule_idx, _, trigger)| match trigger {
                Trigger::Probability(p) => unit(active.seed, name, hit, rule_idx) < p,
                Trigger::NthHit(n) => (hit + 1) % n == 0,
            });
        if fired.is_some() {
            active.injections[idx].fetch_add(1, Ordering::Relaxed);
        }
        fired
        // Guard drops here: delays and panics must not hold the plan lock.
    };
    match fired?.1 {
        FaultKind::Error => Some(Fault::Error),
        FaultKind::ShortWrite => Some(Fault::ShortWrite),
        FaultKind::Delay { ms } => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        FaultKind::PanicInWorker => {
            // cqa-lint: allow(no-panic-in-request-path): deliberate fault injection; the worker pool contains it with catch_unwind and the client sees a structured internal error
            panic!("injected fault: panic-in-worker at {name}")
        }
    }
}

/// Consult the chaos harness at a fallible boundary.
///
/// Evaluates to `Option<Fault>`: `None` means proceed normally (the
/// overwhelmingly common case — when disarmed this is one relaxed atomic
/// load), `Some(fault)` means the boundary must surface the injected
/// fault through its own error path. The name must be registered in
/// [`points::POINTS`]; the `fault-point-registry` lint checks both
/// directions.
#[macro_export]
macro_rules! fault_point {
    ($name:expr) => {
        if $crate::armed() {
            $crate::trigger($name)
        } else {
            ::core::option::Option::None
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The harness is process-global; tests that arm it must not overlap.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_points_never_fire() {
        let _g = locked();
        disarm();
        for _ in 0..1000 {
            assert_eq!(fault_point!("cache/insert"), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let _g = locked();
        let plan = FaultPlan::preset("all-points-error", 42).unwrap();
        let run = |plan: &FaultPlan| -> Vec<bool> {
            arm(plan).unwrap();
            let pattern = (0..200).map(|_| fault_point!("pool/submit").is_some()).collect();
            disarm();
            pattern
        };
        let a = run(&plan);
        let b = run(&plan);
        assert_eq!(a, b, "same seed must give the same injection pattern");
        let c = run(&FaultPlan::preset("all-points-error", 43).unwrap());
        assert_ne!(a, c, "a different seed must give a different pattern");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(
            (20..=60).contains(&fired),
            "p=0.2 over 200 hits fired {fired} times, far from expectation"
        );
    }

    #[test]
    fn nth_hit_fires_exactly_on_schedule() {
        let _g = locked();
        let plan = FaultPlan {
            seed: 7,
            rules: vec![FaultRule {
                point: "pool/handoff".into(),
                kind: FaultKind::Error,
                trigger: Trigger::NthHit(3),
            }],
        };
        arm(&plan).unwrap();
        let pattern: Vec<bool> = (0..9).map(|_| fault_point!("pool/handoff").is_some()).collect();
        disarm();
        assert_eq!(pattern, vec![false, false, true, false, false, true, false, false, true]);
    }

    #[test]
    fn counts_track_hits_and_injections() {
        let _g = locked();
        let plan = FaultPlan {
            seed: 1,
            rules: vec![FaultRule {
                point: "cache/lookup".into(),
                kind: FaultKind::Error,
                trigger: Trigger::NthHit(2),
            }],
        };
        arm(&plan).unwrap();
        for _ in 0..10 {
            let _ = fault_point!("cache/lookup");
        }
        disarm();
        let c = counts();
        let lookup = c.iter().find(|pc| pc.point == "cache/lookup").unwrap();
        assert_eq!((lookup.hits, lookup.injections), (10, 5));
        let other = c.iter().find(|pc| pc.point == "protocol/read").unwrap();
        assert_eq!((other.hits, other.injections), (0, 0));
        // Counts survive disarm for post-run reports.
        assert!(!armed());
        assert_eq!(counts().iter().map(|pc| pc.hits).sum::<u64>(), 10);
    }

    #[test]
    fn short_write_is_returned_to_the_boundary() {
        let _g = locked();
        let plan = FaultPlan {
            seed: 9,
            rules: vec![FaultRule {
                point: "protocol/write".into(),
                kind: FaultKind::ShortWrite,
                trigger: Trigger::NthHit(1),
            }],
        };
        arm(&plan).unwrap();
        let fault = fault_point!("protocol/write");
        disarm();
        assert_eq!(fault, Some(Fault::ShortWrite));
    }

    #[test]
    fn bad_plans_are_rejected() {
        let _g = locked();
        disarm();
        let bad_point = FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                point: "no/such_point".into(),
                kind: FaultKind::Error,
                trigger: Trigger::NthHit(1),
            }],
        };
        assert!(arm(&bad_point).is_err());
        assert!(!armed(), "a rejected plan must leave the harness disarmed");
        let bad_p = FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                point: "*".into(),
                kind: FaultKind::Error,
                trigger: Trigger::Probability(1.5),
            }],
        };
        assert!(arm(&bad_p).is_err());
        let bad_n = FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                point: "*".into(),
                kind: FaultKind::Error,
                trigger: Trigger::NthHit(0),
            }],
        };
        assert!(arm(&bad_n).is_err());
    }

    #[test]
    fn every_preset_builds_and_arms() {
        let _g = locked();
        for name in PRESETS {
            let plan = FaultPlan::preset(name, 42).unwrap_or_else(|| panic!("preset {name}"));
            arm(&plan).unwrap_or_else(|e| panic!("arming {name}: {e}"));
            disarm();
        }
        assert!(FaultPlan::preset("no-such-plan", 42).is_none());
    }
}
