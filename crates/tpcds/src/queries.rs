//! The TPC-DS validation workload (Appendix F): CQ instantiations of the
//! eight selected templates, aggregates stripped.

use cqa_common::Result;
use cqa_query::{parse, ConjunctiveQuery};
use cqa_storage::Schema;

/// The validation queries as `(name, query)` pairs, in template order.
pub fn validation_queries(schema: &Schema) -> Result<Vec<(String, ConjunctiveQuery)>> {
    let specs: &[(&str, &str)] = &[
        // Q1: customers who returned items — store_returns ⋈ date ⋈ store ⋈
        // customer; categorical-ish output (first names).
        (
            "Q1DS",
            "Q1DS(fn) :- store_returns(ik, tk, dk, ck, sk, amt), \
             date_dim(dk, 1998, moy, qoy, dow), store(sk, city, 'TN'), \
             customer(ck, ak, hk, fn, ln)",
        ),
        // Q33: manufacturer revenue by category across a channel — item
        // brand output (moderate balance).
        (
            "Q33DS",
            "Q33DS(br) :- store_sales(ik, tk, dk, ck, sk, hk, ak, pr), \
             item(ik, br, 'Books', mid, ip), date_dim(dk, yr, 1, qoy, dow), \
             customer_address(ak, city, st, -5)",
        ),
        // Q60: items by category across channels — item key output.
        (
            "Q60DS",
            "Q60DS(ik) :- web_sales(ik, ok, dk, tk2, ck, wk, whk, smk, pr), \
             item(ik, br, 'Music', mid, ip), date_dim(dk, yr, 9, qoy, dow), \
             customer(ck, ak, hk, fn, ln), customer_address(ak, city, st, gmt)",
        ),
        // Q62: web shipping report — ship-mode/site output (categorical).
        (
            "Q62DS",
            "Q62DS(smt, wn) :- web_sales(ik, ok, dk, tk, ck, stk, whk, smk, pr), \
             warehouse(whk, wst), ship_mode(smk, smt, car), web_site(stk, wn), \
             date_dim(dk, 1998, moy, qoy, dow)",
        ),
        // Q65: store/item with extreme revenue — store city and item brand
        // output (high balance).
        (
            "Q65DS",
            "Q65DS(city, br, ip) :- store(sk, city, st), \
             store_sales(ik, tk, dk, ck, sk, hk, ak, pr), \
             item(ik, br, cat, mid, ip), date_dim(dk, yr, moy, 2, dow)",
        ),
        // Q66: warehouse shipping across channels — warehouse state and
        // time-shift output (moderate balance).
        (
            "Q66DS",
            "Q66DS(wst, sh) :- web_sales(ik, ok, dk, tk, ck, stk, whk, smk, pr), \
             warehouse(whk, wst), time_dim(tk, hr, sh), \
             ship_mode(smk, smt, 'DHL'), date_dim(dk, 1998, moy, qoy, dow)",
        ),
        // Q68: high-dependency-count customers in two cities — customer last
        // name output; the paper notes the WHERE clause keeps distinct
        // outputs few, so balance stays near 0.
        (
            "Q68DS",
            "Q68DS(ln) :- store_sales(ik, tk, dk, ck, sk, hk, ak, pr), \
             date_dim(dk, 1998, moy, qoy, dow), store(sk, scity, st), \
             household_demographics(hk, 4, vc), \
             customer_address(ak, 'Midway', cst, gmt), customer(ck, cak, chk, fn, ln)",
        ),
        // Q82: items in inventory also sold in stores — item/price output.
        (
            "Q82DS",
            "Q82DS(ik, ip) :- item(ik, br, 'Home', mid, ip), \
             inventory(dk, ik, whk, qty), date_dim(dk, yr, 3, qoy, dow), \
             store_sales(ik, tk, dk2, ck, sk, hk, ak, pr)",
        ),
    ];
    specs.iter().map(|(name, text)| Ok(((*name).to_owned(), parse(schema, text)?))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpcdsConfig};
    use crate::schema::tpcds_schema;
    use cqa_query::answers;

    #[test]
    fn all_validation_queries_parse() {
        let qs = validation_queries(&tpcds_schema()).unwrap();
        assert_eq!(qs.len(), 8);
        let names: Vec<_> = qs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Q1DS", "Q33DS", "Q60DS", "Q62DS", "Q65DS", "Q66DS", "Q68DS", "Q82DS"]);
    }

    #[test]
    fn queries_have_multiway_joins() {
        for (name, q) in validation_queries(&tpcds_schema()).unwrap() {
            assert!(q.join_count() >= 3, "{name} has only {} joins", q.join_count());
        }
    }

    #[test]
    fn robust_queries_are_nonempty_at_small_scale() {
        let db = generate(TpcdsConfig { scale: 0.002, seed: 5 });
        let qs = validation_queries(db.schema()).unwrap();
        for (name, q) in &qs {
            if ["Q62DS", "Q65DS"].contains(&name.as_str()) {
                assert!(!answers(&db, q).unwrap().is_empty(), "{name} returned no answers");
            }
        }
    }
}
