#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A TPC-DS-like snowflake subset and its validation workload.
//!
//! The paper's second validation batch uses TPC-DS at scale factor 1
//! (Appendix F): a combination of snowflake schemas with 24 relations, of
//! which the eight selected query templates (1, 33, 60, 62, 65, 66, 68,
//! 82) touch fifteen. We build exactly that subset — three sales channels
//! (store/catalog/web), returns, inventory, and the shared dimensions —
//! with the standard primary keys (key columns first) and foreign keys.
//!
//! As with `cqa-tpch`, only the columns that participate in keys, joins,
//! or query constants are kept, and the validation queries strip
//! aggregates and turn range predicates into categorical constants,
//! preserving each template's join structure and balance character.

pub mod gen;
pub mod queries;
pub mod schema;

pub use gen::{generate, TpcdsConfig};
pub use queries::validation_queries;
pub use schema::tpcds_schema;
