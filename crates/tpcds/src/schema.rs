//! The TPC-DS-like subset schema: the fifteen relations touched by the
//! validation query templates.

use cqa_storage::{ColumnType::*, Schema};

/// Builds the TPC-DS-like subset schema.
pub fn tpcds_schema() -> Schema {
    Schema::builder()
        .relation(
            "date_dim",
            &[("d_datekey", Int), ("d_year", Int), ("d_moy", Int), ("d_qoy", Int), ("d_dow", Int)],
            Some(1),
        )
        .relation("time_dim", &[("t_timekey", Int), ("t_hour", Int), ("t_shift", Str)], Some(1))
        .relation(
            "item",
            &[
                ("i_itemkey", Int),
                ("i_brand", Str),
                ("i_category", Str),
                ("i_manufact_id", Int),
                ("i_current_price", Int),
            ],
            Some(1),
        )
        .relation(
            "customer_address",
            &[("ca_addrkey", Int), ("ca_city", Str), ("ca_state", Str), ("ca_gmt_offset", Int)],
            Some(1),
        )
        .relation(
            "household_demographics",
            &[("hd_demokey", Int), ("hd_dep_count", Int), ("hd_vehicle_count", Int)],
            Some(1),
        )
        .relation(
            "customer",
            &[
                ("c_custkey", Int),
                ("c_addrkey", Int),
                ("c_hdemokey", Int),
                ("c_first_name", Str),
                ("c_last_name", Str),
            ],
            Some(1),
        )
        .relation("store", &[("s_storekey", Int), ("s_city", Str), ("s_state", Str)], Some(1))
        .relation("warehouse", &[("w_warehousekey", Int), ("w_state", Str)], Some(1))
        .relation(
            "ship_mode",
            &[("sm_shipmodekey", Int), ("sm_type", Str), ("sm_carrier", Str)],
            Some(1),
        )
        .relation("web_site", &[("web_sitekey", Int), ("web_name", Str)], Some(1))
        .relation(
            "store_sales",
            &[
                ("ss_itemkey", Int),
                ("ss_ticket", Int),
                ("ss_datekey", Int),
                ("ss_custkey", Int),
                ("ss_storekey", Int),
                ("ss_hdemokey", Int),
                ("ss_addrkey", Int),
                ("ss_sales_price", Int),
            ],
            Some(2),
        )
        .relation(
            "store_returns",
            &[
                ("sr_itemkey", Int),
                ("sr_ticket", Int),
                ("sr_datekey", Int),
                ("sr_custkey", Int),
                ("sr_storekey", Int),
                ("sr_return_amt", Int),
            ],
            Some(2),
        )
        .relation(
            "catalog_sales",
            &[
                ("cs_itemkey", Int),
                ("cs_order", Int),
                ("cs_datekey", Int),
                ("cs_custkey", Int),
                ("cs_warehousekey", Int),
                ("cs_shipmodekey", Int),
                ("cs_sales_price", Int),
            ],
            Some(2),
        )
        .relation(
            "web_sales",
            &[
                ("ws_itemkey", Int),
                ("ws_order", Int),
                ("ws_datekey", Int),
                ("ws_timekey", Int),
                ("ws_custkey", Int),
                ("ws_sitekey", Int),
                ("ws_warehousekey", Int),
                ("ws_shipmodekey", Int),
                ("ws_sales_price", Int),
            ],
            Some(2),
        )
        .relation(
            "inventory",
            &[
                ("inv_datekey", Int),
                ("inv_itemkey", Int),
                ("inv_warehousekey", Int),
                ("inv_quantity", Int),
            ],
            Some(3),
        )
        .foreign_key("customer", &["c_addrkey"], "customer_address", &["ca_addrkey"])
        .foreign_key("customer", &["c_hdemokey"], "household_demographics", &["hd_demokey"])
        .foreign_key("store_sales", &["ss_itemkey"], "item", &["i_itemkey"])
        .foreign_key("store_sales", &["ss_datekey"], "date_dim", &["d_datekey"])
        .foreign_key("store_sales", &["ss_custkey"], "customer", &["c_custkey"])
        .foreign_key("store_sales", &["ss_storekey"], "store", &["s_storekey"])
        .foreign_key("store_sales", &["ss_hdemokey"], "household_demographics", &["hd_demokey"])
        .foreign_key("store_sales", &["ss_addrkey"], "customer_address", &["ca_addrkey"])
        .foreign_key("store_returns", &["sr_itemkey"], "item", &["i_itemkey"])
        .foreign_key("store_returns", &["sr_datekey"], "date_dim", &["d_datekey"])
        .foreign_key("store_returns", &["sr_custkey"], "customer", &["c_custkey"])
        .foreign_key("store_returns", &["sr_storekey"], "store", &["s_storekey"])
        .foreign_key("catalog_sales", &["cs_itemkey"], "item", &["i_itemkey"])
        .foreign_key("catalog_sales", &["cs_datekey"], "date_dim", &["d_datekey"])
        .foreign_key("catalog_sales", &["cs_custkey"], "customer", &["c_custkey"])
        .foreign_key("catalog_sales", &["cs_warehousekey"], "warehouse", &["w_warehousekey"])
        .foreign_key("catalog_sales", &["cs_shipmodekey"], "ship_mode", &["sm_shipmodekey"])
        .foreign_key("web_sales", &["ws_itemkey"], "item", &["i_itemkey"])
        .foreign_key("web_sales", &["ws_datekey"], "date_dim", &["d_datekey"])
        .foreign_key("web_sales", &["ws_timekey"], "time_dim", &["t_timekey"])
        .foreign_key("web_sales", &["ws_custkey"], "customer", &["c_custkey"])
        .foreign_key("web_sales", &["ws_sitekey"], "web_site", &["web_sitekey"])
        .foreign_key("web_sales", &["ws_warehousekey"], "warehouse", &["w_warehousekey"])
        .foreign_key("web_sales", &["ws_shipmodekey"], "ship_mode", &["sm_shipmodekey"])
        .foreign_key("inventory", &["inv_datekey"], "date_dim", &["d_datekey"])
        .foreign_key("inventory", &["inv_itemkey"], "item", &["i_itemkey"])
        .foreign_key("inventory", &["inv_warehousekey"], "warehouse", &["w_warehousekey"])
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_fifteen_relations() {
        let s = tpcds_schema();
        assert_eq!(s.len(), 15);
    }

    #[test]
    fn fact_tables_have_composite_keys() {
        let s = tpcds_schema();
        for (name, klen) in [
            ("store_sales", 2),
            ("store_returns", 2),
            ("catalog_sales", 2),
            ("web_sales", 2),
            ("inventory", 3),
        ] {
            let rel = s.relation(s.rel_id(name).unwrap());
            assert_eq!(rel.key_len, Some(klen), "{name}");
        }
    }

    #[test]
    fn snowflake_fk_graph_is_rich() {
        let s = tpcds_schema();
        // 27 FK column pairs × 2 directions.
        assert_eq!(s.joinable_pairs().len(), 54);
    }
}
