//! Deterministic dsgen-style data generation for the subset schema.

use crate::schema::tpcds_schema;
use cqa_common::Mt64;
use cqa_storage::{Database, Value};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpcdsConfig {
    /// Scale factor; SF 1 of real TPC-DS is ~20M tuples, our subset scales
    /// the per-channel fact counts proportionally.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpcdsConfig {
    fn default() -> Self {
        TpcdsConfig { scale: 0.001, seed: 42 }
    }
}

impl TpcdsConfig {
    /// A scale suitable for unit tests.
    pub fn tiny() -> Self {
        TpcdsConfig { scale: 0.0003, seed: 7 }
    }
}

const CITIES: [&str; 10] = [
    "Fairview",
    "Midway",
    "Oakland",
    "Salem",
    "Georgetown",
    "Clinton",
    "Greenville",
    "Bethel",
    "Liberty",
    "Riverside",
];
const STATES: [&str; 8] = ["TN", "GA", "OH", "TX", "CA", "WA", "NC", "VA"];
const CATEGORIES: [&str; 8] =
    ["Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Women"];
const SM_TYPES: [&str; 5] = ["EXPRESS", "LIBRARY", "NEXT DAY", "OVERNIGHT", "REGULAR"];
const CARRIERS: [&str; 5] = ["UPS", "FEDEX", "AIRBORNE", "USPS", "DHL"];
const FIRST_NAMES: [&str; 10] =
    ["James", "Mary", "John", "Linda", "Robert", "Susan", "David", "Karen", "Paul", "Nancy"];
const LAST_NAMES: [&str; 10] = [
    "Smith", "Johnson", "Brown", "Jones", "Miller", "Davis", "Wilson", "Moore", "Taylor",
    "Anderson",
];
const SHIFTS: [&str; 3] = ["morning", "afternoon", "night"];

fn pick<'a>(rng: &mut Mt64, xs: &[&'a str]) -> &'a str {
    xs[rng.index(xs.len())]
}

/// Generates a consistent TPC-DS-like database over the subset schema.
pub fn generate(config: TpcdsConfig) -> Database {
    let mut db = Database::new(tpcds_schema());
    let mut rng = Mt64::new(config.seed);
    let sf = config.scale.max(0.0);
    let scaled = |base: f64| -> i64 { ((base * sf).round() as i64).max(1) };

    // Dimension cardinalities (dates/times are capped: they are calendar
    // tables, not scaled data).
    // The calendar dimension always covers whole years: a truncated date
    // table would make month/quarter constants unsatisfiable.
    let n_dates = scaled(73_000.0).clamp(365, 2556);
    let n_times = scaled(86_400.0).min(288);
    let n_items = scaled(18_000.0);
    let n_addresses = scaled(50_000.0);
    let n_hdemo = scaled(7_200.0).min(720);
    let n_customers = scaled(100_000.0);
    let n_stores = scaled(1_200.0).clamp(2, 100);
    let n_warehouses = scaled(500.0).clamp(2, 25);
    let n_sites = scaled(300.0).clamp(2, 12);
    let n_shipmodes = 20i64.min(5 + scaled(15.0));

    for d in 1..=n_dates {
        db.insert_named(
            "date_dim",
            &[
                Value::Int(d),
                Value::Int(1998 + (d - 1) / 365),
                Value::Int(1 + ((d - 1) / 30) % 12),
                Value::Int(1 + ((d - 1) / 91) % 4),
                Value::Int((d - 1) % 7),
            ],
        )
        .unwrap();
    }
    for t in 1..=n_times {
        let hour = (t - 1) % 24;
        db.insert_named(
            "time_dim",
            &[Value::Int(t), Value::Int(hour), Value::str(SHIFTS[(hour / 8) as usize % 3])],
        )
        .unwrap();
    }
    for i in 1..=n_items {
        db.insert_named(
            "item",
            &[
                Value::Int(i),
                Value::str(format!("Brand#{}{}", 1 + rng.below(5), 1 + rng.below(8))),
                Value::str(CATEGORIES[(i as usize - 1) % CATEGORIES.len()]),
                Value::Int(1 + rng.below(1000) as i64),
                Value::Int(100 + rng.below(30_000) as i64),
            ],
        )
        .unwrap();
    }
    for a in 1..=n_addresses {
        db.insert_named(
            "customer_address",
            &[
                Value::Int(a),
                Value::str(pick(&mut rng, &CITIES)),
                Value::str(pick(&mut rng, &STATES)),
                Value::Int(-(5 + rng.below(4) as i64)),
            ],
        )
        .unwrap();
    }
    // Small dimensions enumerate their vocabularies round-robin (as real
    // dsgen does): random sampling over a handful of rows would often miss
    // the categorical constants the validation queries filter on.
    for h in 1..=n_hdemo {
        db.insert_named(
            "household_demographics",
            &[Value::Int(h), Value::Int((h - 1) % 10), Value::Int((h - 1) % 5)],
        )
        .unwrap();
    }
    for c in 1..=n_customers {
        db.insert_named(
            "customer",
            &[
                Value::Int(c),
                Value::Int(1 + rng.below(n_addresses as u64) as i64),
                Value::Int(1 + rng.below(n_hdemo as u64) as i64),
                Value::str(pick(&mut rng, &FIRST_NAMES)),
                Value::str(pick(&mut rng, &LAST_NAMES)),
            ],
        )
        .unwrap();
    }
    for s in 1..=n_stores {
        db.insert_named(
            "store",
            &[
                Value::Int(s),
                Value::str(CITIES[(s as usize - 1) % CITIES.len()]),
                Value::str(STATES[(s as usize - 1) % STATES.len()]),
            ],
        )
        .unwrap();
    }
    for w in 1..=n_warehouses {
        db.insert_named(
            "warehouse",
            &[Value::Int(w), Value::str(STATES[(w as usize - 1) % STATES.len()])],
        )
        .unwrap();
    }
    for m in 1..=n_shipmodes {
        db.insert_named(
            "ship_mode",
            &[
                Value::Int(m),
                Value::str(SM_TYPES[(m as usize - 1) % SM_TYPES.len()]),
                Value::str(CARRIERS[(m as usize - 1) % CARRIERS.len()]),
            ],
        )
        .unwrap();
    }
    for w in 1..=n_sites {
        db.insert_named("web_site", &[Value::Int(w), Value::str(format!("site_{w}"))]).unwrap();
    }

    // Fact tables. Each sales channel scales like the dimensions do in
    // real TPC-DS: store > catalog > web.
    let n_store_sales = scaled(2_880_000.0);
    let n_store_returns = scaled(288_000.0);
    let n_catalog_sales = scaled(1_440_000.0);
    let n_web_sales = scaled(720_000.0);
    let n_inventory = scaled(500_000.0);

    let rand_key = |rng: &mut Mt64, n: i64| 1 + rng.below(n as u64) as i64;
    let mut tickets: Vec<(i64, i64)> = Vec::new();
    for t in 1..=n_store_sales {
        let item = rand_key(&mut rng, n_items);
        db.insert_named(
            "store_sales",
            &[
                Value::Int(item),
                Value::Int(t),
                Value::Int(rand_key(&mut rng, n_dates)),
                Value::Int(rand_key(&mut rng, n_customers)),
                Value::Int(rand_key(&mut rng, n_stores)),
                Value::Int(rand_key(&mut rng, n_hdemo)),
                Value::Int(rand_key(&mut rng, n_addresses)),
                Value::Int(100 + rng.below(20_000) as i64),
            ],
        )
        .unwrap();
        tickets.push((item, t));
    }
    // Returns reference actual sales tickets, each at most once — the
    // (sr_itemkey, sr_ticket) pair is the primary key, so sampling with
    // replacement would manufacture key violations in the *consistent*
    // base data.
    let return_picks =
        rng.sample_indices(tickets.len(), (n_store_returns as usize).min(tickets.len()));
    for pick in return_picks {
        let (item, ticket) = tickets[pick];
        db.insert_named(
            "store_returns",
            &[
                Value::Int(item),
                Value::Int(ticket),
                Value::Int(rand_key(&mut rng, n_dates)),
                Value::Int(rand_key(&mut rng, n_customers)),
                Value::Int(rand_key(&mut rng, n_stores)),
                Value::Int(100 + rng.below(10_000) as i64),
            ],
        )
        .unwrap();
    }
    for o in 1..=n_catalog_sales {
        db.insert_named(
            "catalog_sales",
            &[
                Value::Int(rand_key(&mut rng, n_items)),
                Value::Int(o),
                Value::Int(rand_key(&mut rng, n_dates)),
                Value::Int(rand_key(&mut rng, n_customers)),
                Value::Int(rand_key(&mut rng, n_warehouses)),
                Value::Int(rand_key(&mut rng, n_shipmodes)),
                Value::Int(100 + rng.below(20_000) as i64),
            ],
        )
        .unwrap();
    }
    for o in 1..=n_web_sales {
        db.insert_named(
            "web_sales",
            &[
                Value::Int(rand_key(&mut rng, n_items)),
                Value::Int(o),
                Value::Int(rand_key(&mut rng, n_dates)),
                Value::Int(rand_key(&mut rng, n_times)),
                Value::Int(rand_key(&mut rng, n_customers)),
                Value::Int(rand_key(&mut rng, n_sites)),
                Value::Int(rand_key(&mut rng, n_warehouses)),
                Value::Int(rand_key(&mut rng, n_shipmodes)),
                Value::Int(100 + rng.below(20_000) as i64),
            ],
        )
        .unwrap();
    }
    // The inventory key is the (date, item, warehouse) triple; skip
    // colliding draws so the base data stays consistent.
    let mut inv_seen: std::collections::HashSet<(i64, i64, i64)> = std::collections::HashSet::new();
    for _ in 0..n_inventory {
        let triple = (
            rand_key(&mut rng, n_dates),
            rand_key(&mut rng, n_items),
            rand_key(&mut rng, n_warehouses),
        );
        if !inv_seen.insert(triple) {
            continue;
        }
        db.insert_named(
            "inventory",
            &[
                Value::Int(triple.0),
                Value::Int(triple.1),
                Value::Int(triple.2),
                Value::Int(rng.below(1000) as i64),
            ],
        )
        .unwrap();
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_storage::is_consistent;

    #[test]
    fn generated_database_is_consistent() {
        assert!(is_consistent(&generate(TpcdsConfig::tiny())));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(TpcdsConfig::tiny());
        let b = generate(TpcdsConfig::tiny());
        assert_eq!(a.fact_count(), b.fact_count());
    }

    #[test]
    fn store_returns_reference_sales() {
        let db = generate(TpcdsConfig::tiny());
        let sr = db.schema().rel_id("store_returns").unwrap();
        let ss = db.schema().rel_id("store_sales").unwrap();
        let ix = db.index(ss, &[0, 1]);
        for (_, row) in db.table(sr).iter() {
            assert!(!ix.get(&row[..2]).is_empty(), "return without a matching sale");
        }
    }

    #[test]
    fn all_relations_are_populated() {
        let db = generate(TpcdsConfig::tiny());
        for (rel, def) in db.schema().iter() {
            assert!(!db.table(rel).is_empty(), "{} is empty", def.name);
        }
    }
}
