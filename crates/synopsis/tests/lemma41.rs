//! Cross-validation of Lemma 4.1(3): `R_{D,Σ,Q}(t̄) = R(H, B)` where
//! `(H, B)` is the `(Σ,Q)`-synopsis of `D` for `t̄`.
//!
//! The left-hand side is computed by brute-force repair enumeration
//! (`cqa-repair`); the right-hand side by exact ratio computation on the
//! synopsis (`cqa-synopsis`). These code paths share almost nothing, so
//! agreement is strong evidence that the synopsis construction is correct.

use cqa_common::Mt64;
use cqa_query::parse;
use cqa_repair::consistent_answers_exact;
use cqa_storage::ColumnType::*;
use cqa_storage::{Database, Schema, Value};
use cqa_synopsis::{build_synopses, exact_ratio_enumerate, BuildOptions};

fn example_db() -> Database {
    let schema = Schema::builder()
        .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
        .relation("dept", &[("dname", Str), ("floor", Int)], Some(1))
        .build();
    let mut db = Database::new(schema);
    for (id, name, dept) in
        [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT"), (3, "Eve", "HR")]
    {
        db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)]).unwrap();
    }
    for (dname, floor) in [("HR", 1), ("HR", 2), ("IT", 2)] {
        db.insert_named("dept", &[Value::str(dname), Value::Int(floor)]).unwrap();
    }
    db
}

fn check_query(db: &Database, text: &str) {
    let q = parse(db.schema(), text).unwrap();
    let syn = build_synopses(db, &q, BuildOptions::default()).unwrap();
    let exact_answers = consistent_answers_exact(db, &q, 1_000_000).unwrap();

    // Same candidate answers (Lemma 4.1(4): positive frequency iff H ≠ ∅).
    let mut syn_tuples: Vec<_> = syn.entries.iter().map(|e| e.tuple.clone()).collect();
    syn_tuples.sort();
    let mut exact_tuples: Vec<_> = exact_answers.iter().map(|(t, _)| t.clone()).collect();
    exact_tuples.sort();
    assert_eq!(syn_tuples, exact_tuples, "candidate answers differ for {text}");

    // Same frequencies (Lemma 4.1(3)).
    for (t, f) in &exact_answers {
        let entry = syn.get(t).expect("tuple must have a synopsis");
        let r = exact_ratio_enumerate(&entry.pair, 10_000_000).unwrap();
        assert!(
            (r - f).abs() < 1e-9,
            "R(H,B)={r} but repair enumeration gives {f} for tuple {t:?} of {text}"
        );
    }
}

#[test]
fn lemma_41_on_example_boolean() {
    let db = example_db();
    check_query(&db, "Q() :- employee(1, n1, d), employee(2, n2, d)");
}

#[test]
fn lemma_41_on_example_unary() {
    let db = example_db();
    check_query(&db, "Q(n) :- employee(x, n, d)");
}

#[test]
fn lemma_41_on_join_query() {
    let db = example_db();
    check_query(&db, "Q(n, f) :- employee(x, n, d), dept(d, f)");
}

#[test]
fn lemma_41_on_query_with_constants() {
    let db = example_db();
    check_query(&db, "Q(x) :- employee(x, n, 'IT')");
    check_query(&db, "Q() :- employee(x, n, 'HR'), dept('HR', f)");
}

#[test]
fn lemma_41_on_self_join() {
    let db = example_db();
    check_query(&db, "Q(x, y) :- employee(x, n, d), employee(y, m, d)");
}

#[test]
fn lemma_41_on_random_small_databases() {
    // Randomized databases over a two-relation schema with small domains so
    // blocks and joins arise organically.
    let mut rng = Mt64::new(2024);
    for round in 0..30 {
        let schema = Schema::builder()
            .relation("r", &[("k", Int), ("a", Int)], Some(1))
            .relation("s", &[("k", Int), ("b", Int)], Some(1))
            .build();
        let mut db = Database::new(schema);
        let nfacts = 3 + rng.index(5);
        for _ in 0..nfacts {
            let k = rng.below(3) as i64;
            let a = rng.below(3) as i64;
            db.insert_named("r", &[Value::Int(k), Value::Int(a)]).unwrap();
        }
        for _ in 0..nfacts {
            let k = rng.below(3) as i64;
            let b = rng.below(3) as i64;
            db.insert_named("s", &[Value::Int(k), Value::Int(b)]).unwrap();
        }
        for text in [
            "Q(a) :- r(k, a)",
            "Q() :- r(k, a), s(a, b)",
            "Q(k, b) :- r(k, a), s(k, b)",
            "Q(a, b) :- r(k, a), s(k2, b)",
        ] {
            check_query(&db, text);
        }
        let _ = round;
    }
}
