//! Exact computation of `R(H, B)` — ground truth for the approximation
//! schemes.
//!
//! Two independent exponential-time references:
//!
//! * [`exact_ratio_enumerate`] walks all of `db(B)` (feasible when the
//!   product of block sizes is small);
//! * [`exact_ratio_inclusion_exclusion`] applies inclusion–exclusion over
//!   subsets of `H` (feasible when `|H| ≤ ~25`), using the observation
//!   that `|{I : H_S ⊆ I}| / |db(B)| = Π_{b ∈ blocks(H_S)} 1/size(b)` when
//!   the union `H_S` is consistent and 0 otherwise.
//!
//! Having both lets the tests cross-validate them against each other and
//! against the repair-enumeration baseline of `cqa-repair` (Lemma 4.1(3)).

use crate::admissible::AdmissiblePair;
use cqa_common::{CqaError, Result};

/// Exact `R(H, B)` by enumerating `db(B)` (odometer over blocks).
///
/// Fails with [`CqaError::TooLarge`] when `|db(B)| > limit`.
pub fn exact_ratio_enumerate(pair: &AdmissiblePair, limit: u64) -> Result<f64> {
    let mut total: u64 = 1;
    for &s in pair.block_sizes() {
        total = total
            .checked_mul(s as u64)
            .filter(|&t| t <= limit)
            .ok_or_else(|| CqaError::TooLarge(format!("|db(B)| exceeds limit {limit}")))?;
    }
    let nblocks = pair.num_blocks();
    let mut chosen = vec![0u32; nblocks];
    let mut hits: u64 = 0;
    let mut remaining = total;
    loop {
        if (0..pair.num_images()).any(|i| pair.image_contained(i, &chosen)) {
            hits += 1;
        }
        remaining -= 1;
        if remaining == 0 {
            break;
        }
        // Odometer increment.
        for (b, c) in chosen.iter_mut().enumerate() {
            *c += 1;
            if *c < pair.block_size(b as u32) {
                break;
            }
            *c = 0;
        }
    }
    Ok(hits as f64 / total as f64)
}

/// Exact `R(H, B)` by inclusion–exclusion over non-empty subsets of `H`.
///
/// Fails with [`CqaError::TooLarge`] when `|H| > 25` (2²⁵ subsets).
pub fn exact_ratio_inclusion_exclusion(pair: &AdmissiblePair) -> Result<f64> {
    let n = pair.num_images();
    if n > 25 {
        return Err(CqaError::TooLarge(format!("|H| = {n} too large for inclusion–exclusion")));
    }
    let mut sum = 0.0f64;
    // For each subset, merge the images and check consistency: two atoms of
    // the same block with different tids force the intersection empty.
    let mut merged: Vec<Option<u32>> = vec![None; pair.num_blocks()];
    for mask in 1u32..(1u32 << n) {
        for slot in merged.iter_mut() {
            *slot = None;
        }
        let mut consistent = true;
        let mut prob = 1.0f64;
        'outer: for i in 0..n {
            if mask & (1 << i) == 0 {
                continue;
            }
            for a in pair.image(i) {
                match merged[a.block as usize] {
                    None => {
                        merged[a.block as usize] = Some(a.tid);
                        prob /= pair.block_size(a.block) as f64;
                    }
                    Some(t) if t == a.tid => {}
                    Some(_) => {
                        consistent = false;
                        break 'outer;
                    }
                }
            }
        }
        if consistent {
            let sign = if mask.count_ones() % 2 == 1 { 1.0 } else { -1.0 };
            sum += sign * prob;
        }
    }
    // Clamp tiny negative drift from cancellation.
    Ok(sum.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_common::Mt64;

    fn example_pair() -> AdmissiblePair {
        AdmissiblePair::new(vec![vec![(0, 1), (1, 0)], vec![(0, 1), (1, 1)]], vec![2, 2]).unwrap()
    }

    #[test]
    fn example_1_1_ratio_is_one_half() {
        let p = example_pair();
        assert!((exact_ratio_enumerate(&p, 1000).unwrap() - 0.5).abs() < 1e-12);
        assert!((exact_ratio_inclusion_exclusion(&p).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_image_ratio_is_inv_db_bh() {
        let p = AdmissiblePair::new(vec![vec![(0, 0), (2, 1)]], vec![2, 3, 4]).unwrap();
        let expected = 1.0 / (2.0 * 4.0);
        assert!((exact_ratio_enumerate(&p, 1000).unwrap() - expected).abs() < 1e-12);
        assert!((exact_ratio_inclusion_exclusion(&p).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn covering_images_give_ratio_one() {
        // Images cover every choice of block 0.
        let p = AdmissiblePair::new(vec![vec![(0, 0)], vec![(0, 1)]], vec![2, 3]).unwrap();
        assert!((exact_ratio_enumerate(&p, 1000).unwrap() - 1.0).abs() < 1e-12);
        assert!((exact_ratio_inclusion_exclusion(&p).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_images_add_up() {
        // Two images on disjoint tids of one block of size 4: R = 1/2.
        let p = AdmissiblePair::new(vec![vec![(0, 0)], vec![(0, 2)]], vec![4]).unwrap();
        assert!((exact_ratio_enumerate(&p, 1000).unwrap() - 0.5).abs() < 1e-12);
        assert!((exact_ratio_inclusion_exclusion(&p).unwrap() - 0.5).abs() < 1e-12);
    }

    /// Generates a random admissible pair for cross-validation.
    pub(crate) fn random_pair(
        rng: &mut Mt64,
        max_blocks: usize,
        max_images: usize,
    ) -> AdmissiblePair {
        let nblocks = 1 + rng.index(max_blocks);
        let sizes: Vec<u32> = (0..nblocks).map(|_| 1 + rng.below(4) as u32).collect();
        let nimages = 1 + rng.index(max_images);
        let images: Vec<Vec<(u32, u32)>> = (0..nimages)
            .map(|_| {
                let natoms = 1 + rng.index(nblocks.min(3));
                let blocks = rng.sample_indices(nblocks, natoms);
                blocks.into_iter().map(|b| (b as u32, rng.below(sizes[b] as u64) as u32)).collect()
            })
            .collect();
        AdmissiblePair::new(images, sizes).unwrap()
    }

    #[test]
    fn enumeration_and_inclusion_exclusion_agree_on_random_pairs() {
        let mut rng = Mt64::new(99);
        for _ in 0..200 {
            let p = random_pair(&mut rng, 5, 6);
            let a = exact_ratio_enumerate(&p, 100_000).unwrap();
            let b = exact_ratio_inclusion_exclusion(&p).unwrap();
            assert!((a - b).abs() < 1e-9, "enumerate={a} incl-excl={b} for {p:?}");
        }
    }

    #[test]
    fn ratio_respects_lemma_lower_bound() {
        let mut rng = Mt64::new(5);
        for _ in 0..100 {
            let p = random_pair(&mut rng, 4, 4);
            let r = exact_ratio_enumerate(&p, 100_000).unwrap();
            assert!(r >= p.ratio_lower_bound() - 1e-12);
            assert!(r <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn enumeration_limit_is_enforced() {
        let p = AdmissiblePair::new(vec![vec![(0, 0)]], vec![4]).unwrap();
        assert!(exact_ratio_enumerate(&p, 3).is_err());
    }

    #[test]
    fn inclusion_exclusion_size_limit_is_enforced() {
        // 26 single-atom images over 26 blocks.
        let sizes = vec![2u32; 26];
        let images: Vec<Vec<(u32, u32)>> = (0..26).map(|b| vec![(b as u32, 0)]).collect();
        let p = AdmissiblePair::new(images, sizes).unwrap();
        assert!(exact_ratio_inclusion_exclusion(&p).is_err());
    }
}
