//! Certain answers through synopses.
//!
//! The classical CQA notion (§1): `t̄` is a *certain* answer when it is an
//! answer in **every** repair, i.e. `R_{D,Σ,Q}(t̄) = 1`. The paper's
//! benchmark "can serve as the basis for evaluating algorithms that target
//! … certain answers"; this module provides the reference algorithm on
//! synopses, with two cheap filters wrapped around the exponential core:
//!
//! * **sufficient**: some image lies entirely in singleton blocks — such
//!   an image survives every repair, so `R = 1` *if it alone covers
//!   `db(B)`*… in fact an all-singleton image is contained in every
//!   `I ∈ db(B)`, hence `R = 1` outright;
//! * **necessary**: `R ≤ |S•|/|db(B)|` (a union bound), so
//!   `s_ratio < 1` already refutes certainty;
//! * otherwise inclusion–exclusion decides exactly.

use crate::admissible::AdmissiblePair;
use crate::build::{build_synopses, BuildOptions, SynopsisSet};
use crate::exact::{exact_ratio_enumerate, exact_ratio_inclusion_exclusion};
use cqa_common::Result;
use cqa_query::ConjunctiveQuery;
use cqa_storage::{Database, Datum};

/// How a certainty verdict was reached (exposed for tests and the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertaintyEvidence {
    /// An image lies entirely in singleton blocks: certain.
    SingletonImage,
    /// `|S•|/|db(B)| < 1`: the union bound refutes certainty.
    UnionBound,
    /// Decided by exact computation of `R(H, B)`.
    Exact,
}

/// Decides whether the tuple owning `pair` is a certain answer
/// (`R(H, B) = 1`).
///
/// Returns `CqaError::TooLarge` when neither filter applies and the pair
/// is too large for both exact algorithms.
pub fn is_certain(pair: &AdmissiblePair) -> Result<(bool, CertaintyEvidence)> {
    // Sufficient filter: an image over singleton blocks only is contained
    // in every member of db(B).
    for img in pair.images() {
        if img.iter().all(|a| pair.block_size(a.block) == 1) {
            return Ok((true, CertaintyEvidence::SingletonImage));
        }
    }
    // Necessary filter: R ≤ Σᵢ 1/|db(B_{H_i})|.
    if pair.s_ratio() < 1.0 - 1e-12 {
        return Ok((false, CertaintyEvidence::UnionBound));
    }
    let r = exact_ratio_inclusion_exclusion(pair)
        .or_else(|_| exact_ratio_enumerate(pair, 50_000_000))?;
    Ok((r >= 1.0 - 1e-9, CertaintyEvidence::Exact))
}

/// The certain answers of `Q` over `D`: tuples true in every repair.
pub fn certain_answers(db: &Database, q: &ConjunctiveQuery) -> Result<Vec<Vec<Datum>>> {
    let syn = build_synopses(db, q, BuildOptions::default())?;
    certain_answers_of(&syn)
}

/// The certain answers among an already-built synopsis set.
pub fn certain_answers_of(syn: &SynopsisSet) -> Result<Vec<Vec<Datum>>> {
    let mut out = Vec::new();
    for entry in &syn.entries {
        if is_certain(&entry.pair)?.0 {
            out.push(entry.tuple.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::parse;
    use cqa_storage::ColumnType::*;
    use cqa_storage::{Schema, Value};

    fn example_db() -> Database {
        let schema = Schema::builder()
            .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
            .build();
        let mut db = Database::new(schema);
        for (id, name, dept) in
            [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT")]
        {
            db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])
                .unwrap();
        }
        db
    }

    #[test]
    fn example_1_1_names_certainty() {
        let db = example_db();
        // Bob is employee 1's name in every repair; Alice/Tim are not.
        let q = parse(db.schema(), "Q(n) :- employee(x, n, d)").unwrap();
        let certain = certain_answers(&db, &q).unwrap();
        let names: Vec<String> = certain.iter().map(|t| db.resolve(t[0]).to_string()).collect();
        assert_eq!(names, vec!["'Bob'"]);
    }

    #[test]
    fn boolean_example_is_not_certain() {
        let db = example_db();
        let q = parse(db.schema(), "Q() :- employee(1, n1, d), employee(2, n2, d)").unwrap();
        assert!(certain_answers(&db, &q).unwrap().is_empty());
    }

    #[test]
    fn singleton_image_shortcut_fires() {
        // Block of size 1 → certain, decided without exact computation.
        let pair = AdmissiblePair::new(vec![vec![(0, 0)]], vec![1]).unwrap();
        assert_eq!(is_certain(&pair).unwrap(), (true, CertaintyEvidence::SingletonImage));
    }

    #[test]
    fn union_bound_shortcut_fires() {
        // One image over a block of size 3: s_ratio = 1/3 < 1.
        let pair = AdmissiblePair::new(vec![vec![(0, 0)]], vec![3]).unwrap();
        assert_eq!(is_certain(&pair).unwrap(), (false, CertaintyEvidence::UnionBound));
    }

    #[test]
    fn exact_path_decides_cover() {
        // Two images covering a block of size 2: certain, but only the
        // exact computation can tell (s_ratio = 1, no singleton image).
        let pair = AdmissiblePair::new(vec![vec![(0, 0)], vec![(0, 1)]], vec![2]).unwrap();
        assert_eq!(is_certain(&pair).unwrap(), (true, CertaintyEvidence::Exact));
        // Overlapping but not covering: s_ratio = 3/4 + 1/4... construct a
        // non-covering pair with s_ratio ≥ 1.
        let pair =
            AdmissiblePair::new(vec![vec![(0, 0)], vec![(0, 0), (1, 0)], vec![(1, 1)]], vec![2, 2])
                .unwrap();
        // s_ratio = 1/2 + 1/4 + 1/2 = 1.25 ≥ 1, but (tid0=1, tid1... I =
        // {(0,1),(1,0)} contains no image → not certain.
        let (certain, ev) = is_certain(&pair).unwrap();
        assert!(!certain);
        assert_eq!(ev, CertaintyEvidence::Exact);
    }

    #[test]
    fn certainty_matches_repair_enumeration() {
        use cqa_common::Mt64;
        let mut rng = Mt64::new(31337);
        for _ in 0..20 {
            let schema =
                Schema::builder().relation("r", &[("k", Int), ("v", Int)], Some(1)).build();
            let mut db = Database::new(schema);
            for _ in 0..6 {
                db.insert_named(
                    "r",
                    &[Value::Int(rng.below(3) as i64), Value::Int(rng.below(2) as i64)],
                )
                .unwrap();
            }
            let q = parse(db.schema(), "Q(v) :- r(k, v)").unwrap();
            let via_synopsis = certain_answers(&db, &q).unwrap();
            let exact = cqa_repair::consistent_answers_exact(&db, &q, 100_000).unwrap();
            let via_repairs: Vec<Vec<Datum>> = exact
                .into_iter()
                .filter(|(_, f)| (*f - 1.0).abs() < 1e-12)
                .map(|(t, _)| t)
                .collect();
            assert_eq!(via_synopsis, via_repairs);
        }
    }
}
