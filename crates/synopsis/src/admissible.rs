//! Admissible pairs: the integer-encoded `(H, B)` the schemes operate on.
//!
//! Per §5, the approximation schemes are oblivious to the syntactic shape
//! of facts, so a synopsis is encoded with integer identifiers: a block is
//! a local index `0..B` with a size (`kcnt`), and a fact is a
//! `(block, tid)` pair with `tid < kcnt`. An image `H ∈ H` is a sorted set
//! of such pairs, at most one per block (an image is consistent w.r.t. Σ by
//! construction).
//!
//! The key numerical fact exploited throughout: although `|db(B)|` and
//! `|S•|` are astronomically large, the algorithms only ever need
//!
//! * `1/|db(B_{H_i})|` — a product of at most `|Q|` reciprocals of small
//!   block sizes, and
//! * `|S•|/|db(B)| = Σ_i 1/|db(B_{H_i})|`,
//!
//! both exactly representable as `f64`. Log-space [`LogNum`]s are exposed
//! for reporting the raw magnitudes.

use cqa_common::{AliasTable, CqaError, LogNum, Result};

/// One encoded fact of an image: the `tid`-th fact of a local block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ImageAtom {
    /// Local block index (into the pair's block-size table).
    pub block: u32,
    /// Position of the fact within the block (`0 ≤ tid < kcnt`).
    pub tid: u32,
}

/// An admissible pair `(H, B)` (§4.1): a non-empty set of images over a
/// non-empty set of blocks.
///
/// Images are stored deduplicated and in a canonical (lexicographic)
/// order — the paper's "arbitrary ordering `H₁, …, Hₙ`" that the symbolic
/// samplers and the coverage algorithm rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissiblePair {
    images: Vec<Box<[ImageAtom]>>,
    block_sizes: Vec<u32>,
}

impl AdmissiblePair {
    /// Validates and canonicalizes an admissible pair.
    ///
    /// Each image is a list of `(block, tid)` pairs; they are sorted,
    /// checked for per-block uniqueness, deduplicated across images, and
    /// ordered lexicographically.
    pub fn new(images: Vec<Vec<(u32, u32)>>, block_sizes: Vec<u32>) -> Result<Self> {
        if images.is_empty() {
            return Err(CqaError::InvalidSynopsis("H must be non-empty".into()));
        }
        if block_sizes.is_empty() {
            return Err(CqaError::InvalidSynopsis("B must be non-empty".into()));
        }
        if block_sizes.contains(&0) {
            return Err(CqaError::InvalidSynopsis("blocks must be non-empty".into()));
        }
        let mut canon: Vec<Box<[ImageAtom]>> = Vec::with_capacity(images.len());
        for img in images {
            if img.is_empty() {
                return Err(CqaError::InvalidSynopsis("images must be non-empty".into()));
            }
            let mut atoms: Vec<ImageAtom> =
                img.into_iter().map(|(block, tid)| ImageAtom { block, tid }).collect();
            atoms.sort_unstable();
            atoms.dedup();
            for w in atoms.windows(2) {
                if w[0].block == w[1].block {
                    return Err(CqaError::InvalidSynopsis(format!(
                        "image uses two facts of block {} (inconsistent w.r.t. Σ)",
                        w[0].block
                    )));
                }
            }
            for a in &atoms {
                let size = *block_sizes.get(a.block as usize).ok_or_else(|| {
                    CqaError::InvalidSynopsis(format!("block {} out of range", a.block))
                })?;
                if a.tid >= size {
                    return Err(CqaError::InvalidSynopsis(format!(
                        "tid {} out of range for block {} of size {size}",
                        a.tid, a.block
                    )));
                }
            }
            canon.push(atoms.into_boxed_slice());
        }
        canon.sort();
        canon.dedup();
        Ok(AdmissiblePair { images: canon, block_sizes })
    }

    /// Number of images `|H|`.
    #[inline]
    pub fn num_images(&self) -> usize {
        self.images.len()
    }

    /// Number of blocks `|B|`.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.block_sizes.len()
    }

    /// The `i`-th image (canonical order).
    #[inline]
    pub fn image(&self, i: usize) -> &[ImageAtom] {
        &self.images[i]
    }

    /// All images.
    pub fn images(&self) -> impl Iterator<Item = &[ImageAtom]> {
        self.images.iter().map(|b| b.as_ref())
    }

    /// Size (`kcnt`) of a block.
    #[inline]
    pub fn block_size(&self, block: u32) -> u32 {
        self.block_sizes[block as usize]
    }

    /// All block sizes.
    #[inline]
    pub fn block_sizes(&self) -> &[u32] {
        &self.block_sizes
    }

    /// `Σᵢ |Hᵢ|` — the total number of image atoms, a proxy for `||H||`.
    pub fn total_image_atoms(&self) -> usize {
        self.images.iter().map(|h| h.len()).sum()
    }

    /// `|db(B)|` in log space: the product of block sizes.
    pub fn log_db_b(&self) -> LogNum {
        self.block_sizes.iter().map(|&s| LogNum::from_count(s as u64)).product()
    }

    /// `1 / |db(B_{H_i})|`: the probability that a uniform `I ∈ db(B)`
    /// contains image `i`. A product of ≤ `|Q|` reciprocal block sizes, so
    /// exactly representable in `f64`.
    pub fn inv_db_bh(&self, i: usize) -> f64 {
        self.images[i].iter().map(|a| 1.0 / self.block_size(a.block) as f64).product()
    }

    /// `|S•| / |db(B)| = Σᵢ 1/|db(B_{H_i})|` (can exceed 1: the symbolic
    /// space is larger than the natural one whenever images overlap).
    pub fn s_ratio(&self) -> f64 {
        (0..self.num_images()).map(|i| self.inv_db_bh(i)).sum()
    }

    /// `|S•|` in log space.
    pub fn log_s_bullet(&self) -> LogNum {
        self.log_db_b() * LogNum::from_value(self.s_ratio())
    }

    /// The weights `|I^i| ∝ 1/|db(B_{H_i})|` for drawing the image index of
    /// a symbolic sample, prepared as an O(1) alias table.
    pub fn image_alias(&self) -> AliasTable {
        let w: Vec<f64> = (0..self.num_images()).map(|i| self.inv_db_bh(i)).collect();
        AliasTable::new(&w)
    }

    /// True iff image `i` is contained in the database `I ∈ db(B)` encoded
    /// by `chosen`, where `chosen[b]` is the tid kept from block `b`.
    #[inline]
    pub fn image_contained(&self, i: usize, chosen: &[u32]) -> bool {
        self.images[i].iter().all(|a| chosen[a.block as usize] == a.tid)
    }

    /// A lower bound on `R(H,B)` (from the proof of Lemma 4.3):
    /// `R ≥ max_i 1/|db(B_{H_i})|`.
    pub fn ratio_lower_bound(&self) -> f64 {
        (0..self.num_images()).map(|i| self.inv_db_bh(i)).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The synopsis of the paper's Example 1.1 Boolean query: two blocks of
    /// size 2; the query is witnessed by two images (Bob-IT with Alice-IT,
    /// Bob-IT with Tim-IT).
    pub(crate) fn example_pair() -> AdmissiblePair {
        AdmissiblePair::new(vec![vec![(0, 1), (1, 0)], vec![(0, 1), (1, 1)]], vec![2, 2]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let p = example_pair();
        assert_eq!(p.num_images(), 2);
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.total_image_atoms(), 4);
        assert!((p.log_db_b().value() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_images_are_merged() {
        let p = AdmissiblePair::new(
            vec![vec![(0, 0)], vec![(0, 0)], vec![(1, 0), (0, 0)], vec![(0, 0), (1, 0)]],
            vec![2, 2],
        )
        .unwrap();
        assert_eq!(p.num_images(), 2);
    }

    #[test]
    fn images_are_canonically_ordered() {
        let a = AdmissiblePair::new(vec![vec![(1, 0)], vec![(0, 0)]], vec![2, 2]).unwrap();
        let b = AdmissiblePair::new(vec![vec![(0, 0)], vec![(1, 0)]], vec![2, 2]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn inconsistent_image_is_rejected() {
        let err = AdmissiblePair::new(vec![vec![(0, 0), (0, 1)]], vec![2]);
        assert!(matches!(err, Err(CqaError::InvalidSynopsis(_))));
    }

    #[test]
    fn out_of_range_tid_is_rejected() {
        assert!(AdmissiblePair::new(vec![vec![(0, 5)]], vec![2]).is_err());
        assert!(AdmissiblePair::new(vec![vec![(3, 0)]], vec![2]).is_err());
    }

    #[test]
    fn empty_components_are_rejected() {
        assert!(AdmissiblePair::new(vec![], vec![2]).is_err());
        assert!(AdmissiblePair::new(vec![vec![(0, 0)]], vec![]).is_err());
        assert!(AdmissiblePair::new(vec![vec![]], vec![2]).is_err());
    }

    #[test]
    fn example_ratios() {
        let p = example_pair();
        // Each image fixes both blocks: 1/db(B_H) = 1/4.
        assert!((p.inv_db_bh(0) - 0.25).abs() < 1e-12);
        // |S•|/|db(B)| = 1/4 + 1/4 = 1/2; |S•| = 2.
        assert!((p.s_ratio() - 0.5).abs() < 1e-12);
        assert!((p.log_s_bullet().value() - 2.0).abs() < 1e-12);
        assert!((p.ratio_lower_bound() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn image_containment() {
        let p = example_pair();
        // chosen = [tid of block 0, tid of block 1]
        assert!(p.image_contained(0, &[1, 0]));
        assert!(!p.image_contained(0, &[0, 0]));
        assert!(p.image_contained(1, &[1, 1]));
    }

    #[test]
    fn alias_table_has_one_entry_per_image() {
        let p = example_pair();
        assert_eq!(p.image_alias().len(), 2);
    }

    #[test]
    fn s_ratio_can_exceed_one() {
        // Two single-atom images in a block of size 2, plus a second block:
        // weights 1/2 + 1/2 + ... make the symbolic space comparable to the
        // natural one; with three images it exceeds it.
        let p = AdmissiblePair::new(vec![vec![(0, 0)], vec![(0, 1)], vec![(1, 0)]], vec![2, 2])
            .unwrap();
        assert!(p.s_ratio() > 1.0);
    }
}
