//! The Block-DNF view of a synopsis.
//!
//! Footnote 6 / §7.2 of the paper: a database synopsis `(H, B)` *is* a
//! **Block DNF** formula — a positive DNF whose variables are partitioned
//! into blocks `X₁, …, Xₙ`, evaluated only over assignments that set
//! exactly one variable per block to true. Facts are variables, images are
//! clauses, and `R(H, B)` is the fraction of such block assignments that
//! satisfy the formula. This is precisely the problem family the
//! approximation schemes were originally designed for (Karp–Luby–Madras,
//! and the ADCS suite the paper extends).
//!
//! This module materializes that correspondence: [`BlockDnf`] with
//! conversions in both directions, satisfaction checking, and the
//! satisfying-fraction semantics — which the tests verify equals
//! `R(H, B)` exactly. It doubles as an entry point for anyone wanting to
//! run the schemes on DNF-counting inputs rather than databases.

use crate::admissible::AdmissiblePair;
use cqa_common::Result;

/// A positive Block DNF formula.
///
/// Variables are global indices `0..num_vars()`; `blocks[b]` lists the
/// variables of block `b`; each clause is a set of variables (at most one
/// per block — clauses violating that are unsatisfiable under block
/// semantics and are rejected on conversion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDnf {
    blocks: Vec<Vec<u32>>,
    clauses: Vec<Vec<u32>>,
}

impl BlockDnf {
    /// Builds a formula from block sizes and clauses of global variable
    /// indices. Validation happens through the round-trip to
    /// [`AdmissiblePair`].
    pub fn new(blocks: Vec<Vec<u32>>, clauses: Vec<Vec<u32>>) -> Self {
        BlockDnf { blocks, clauses }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Number of blocks in the partition.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The blocks of the variable partition.
    pub fn blocks(&self) -> &[Vec<u32>] {
        &self.blocks
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<u32>] {
        &self.clauses
    }

    /// True when the block assignment (one chosen variable per block, by
    /// position) satisfies the formula.
    pub fn satisfied_by(&self, chosen: &[u32]) -> bool {
        debug_assert_eq!(chosen.len(), self.blocks.len());
        let truthy = |v: u32| {
            self.blocks.iter().zip(chosen).any(|(block, &c)| block.get(c as usize) == Some(&v))
        };
        self.clauses.iter().any(|clause| clause.iter().all(|&v| truthy(v)))
    }

    /// The fraction of block assignments satisfying the formula —
    /// the Block-DNF counting problem, by brute force (test-sized inputs).
    pub fn satisfying_fraction(&self) -> f64 {
        let total: u64 = self.blocks.iter().map(|b| b.len() as u64).product();
        assert!(total > 0 && total <= 10_000_000, "brute force needs a small formula");
        let mut chosen = vec![0u32; self.blocks.len()];
        let mut hits = 0u64;
        for _ in 0..total {
            if self.satisfied_by(&chosen) {
                hits += 1;
            }
            for (c, block) in chosen.iter_mut().zip(&self.blocks) {
                *c += 1;
                if (*c as usize) < block.len() {
                    break;
                }
                *c = 0;
            }
        }
        hits as f64 / total as f64
    }

    /// Converts the formula into an admissible pair, enabling all four
    /// approximation schemes to run on DNF-counting inputs.
    pub fn to_admissible(&self) -> Result<AdmissiblePair> {
        // Map each global variable to its (block, position).
        let mut var_pos = vec![(0u32, 0u32); self.num_vars()];
        for (b, block) in self.blocks.iter().enumerate() {
            for (t, &v) in block.iter().enumerate() {
                var_pos[v as usize] = (b as u32, t as u32);
            }
        }
        let sizes: Vec<u32> = self.blocks.iter().map(|b| b.len() as u32).collect();
        let images: Vec<Vec<(u32, u32)>> = self
            .clauses
            .iter()
            .map(|clause| clause.iter().map(|&v| var_pos[v as usize]).collect())
            .collect();
        AdmissiblePair::new(images, sizes)
    }

    /// Builds the formula corresponding to an admissible pair (facts →
    /// variables, images → clauses).
    pub fn from_admissible(pair: &AdmissiblePair) -> Self {
        let mut blocks = Vec::with_capacity(pair.num_blocks());
        let mut var_of = std::collections::HashMap::new();
        let mut next = 0u32;
        for b in 0..pair.num_blocks() as u32 {
            let mut block = Vec::with_capacity(pair.block_size(b) as usize);
            for t in 0..pair.block_size(b) {
                var_of.insert((b, t), next);
                block.push(next);
                next += 1;
            }
            blocks.push(block);
        }
        let clauses = pair
            .images()
            .map(|img| img.iter().map(|a| var_of[&(a.block, a.tid)]).collect())
            .collect();
        BlockDnf { blocks, clauses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_ratio_enumerate;
    use cqa_common::Mt64;

    fn example_pair() -> AdmissiblePair {
        AdmissiblePair::new(vec![vec![(0, 1), (1, 0)], vec![(0, 1), (1, 1)]], vec![2, 2]).unwrap()
    }

    #[test]
    fn example_converts_to_two_clause_formula() {
        let dnf = BlockDnf::from_admissible(&example_pair());
        assert_eq!(dnf.num_vars(), 4);
        assert_eq!(dnf.num_blocks(), 2);
        assert_eq!(dnf.num_clauses(), 2);
        assert!((dnf.satisfying_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn round_trip_preserves_the_pair() {
        let pair = example_pair();
        let back = BlockDnf::from_admissible(&pair).to_admissible().unwrap();
        assert_eq!(pair, back);
    }

    #[test]
    fn satisfying_fraction_equals_ratio_on_random_pairs() {
        let mut rng = Mt64::new(271828);
        for _ in 0..50 {
            let nblocks = 1 + rng.index(4);
            let sizes: Vec<u32> = (0..nblocks).map(|_| 1 + rng.below(4) as u32).collect();
            let nimages = 1 + rng.index(4);
            let images: Vec<Vec<(u32, u32)>> = (0..nimages)
                .map(|_| {
                    let natoms = 1 + rng.index(nblocks.min(3));
                    rng.sample_indices(nblocks, natoms)
                        .into_iter()
                        .map(|b| (b as u32, rng.below(sizes[b] as u64) as u32))
                        .collect()
                })
                .collect();
            let pair = AdmissiblePair::new(images, sizes).unwrap();
            let dnf = BlockDnf::from_admissible(&pair);
            let r = exact_ratio_enumerate(&pair, 1_000_000).unwrap();
            assert!(
                (dnf.satisfying_fraction() - r).abs() < 1e-12,
                "DNF fraction and R(H,B) diverge"
            );
        }
    }

    #[test]
    fn schemes_run_on_dnf_inputs() {
        // A DNF-counting input fed directly to the CQA schemes.
        let dnf = BlockDnf::new(
            vec![vec![0, 1, 2], vec![3, 4], vec![5, 6, 7, 8]],
            vec![vec![0, 3], vec![1], vec![3, 5]],
        );
        let pair = dnf.to_admissible().unwrap();
        let exact = dnf.satisfying_fraction();
        for scheme in cqa_core_shim::ALL {
            let mut rng = Mt64::new(9);
            let est = cqa_core_shim::estimate(&pair, scheme, &mut rng);
            assert!((est - exact).abs() <= 0.15 * exact, "scheme {scheme}: {est} vs {exact}");
        }
    }

    /// The synopsis crate cannot depend on `cqa-core` (which depends on
    /// it), so the schemes-on-DNF check lives behind a micro Monte Carlo
    /// shim mirroring the natural scheme; the full four-scheme DNF test is
    /// in the workspace-level integration tests.
    mod cqa_core_shim {
        use super::*;
        pub const ALL: [&str; 1] = ["natural-shim"];
        pub fn estimate(pair: &AdmissiblePair, _name: &str, rng: &mut Mt64) -> f64 {
            let mut hits = 0u64;
            let n = 200_000u64;
            let mut chosen = vec![0u32; pair.num_blocks()];
            for _ in 0..n {
                for (b, slot) in chosen.iter_mut().enumerate() {
                    *slot = rng.below(pair.block_size(b as u32) as u64) as u32;
                }
                if (0..pair.num_images()).any(|i| pair.image_contained(i, &chosen)) {
                    hits += 1;
                }
            }
            hits as f64 / n as f64
        }
    }
}
