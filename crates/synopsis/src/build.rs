//! The preprocessing step: building `syn_{Σ,Q}(D)` in one pass.
//!
//! The paper computes all synopses with a single SQL query `Q^rew` that
//! tags each joined fact with `(rid, bid, tid, kcnt)` window-function
//! metadata, then folds the result rows into encoded synopses in linear
//! time (§5, Appendix C). Here the join engine plays the role of `Q^rew`:
//! each homomorphism arrives with per-atom fact provenance, the storage
//! layer supplies the identical `(bid, tid, kcnt)` metadata, and we fold
//! exactly as the paper describes — checking `h(Q) |= Σ` by requiring that
//! atoms sharing a `(rid, bid)` agree on `tid`, then grouping by the head
//! tuple `h(x̄)`.

use crate::admissible::AdmissiblePair;
use cqa_common::{Deadline, Result, Stopwatch};
use cqa_query::{for_each_hom, ConjunctiveQuery, EvalOptions};
use cqa_storage::{Database, Datum, RelId};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::ops::ControlFlow;
use std::time::Duration;

/// A fact identified globally by relation, block and position-in-block.
type GlobalAtom = (RelId, u32, u32); // (rel, bid, tid)
/// A block identified globally.
type GlobalBlock = (RelId, u32); // (rel, bid)

/// Limits for synopsis construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildOptions {
    /// Abort when exceeded.
    pub deadline: Option<Deadline>,
    /// Refuse queries with more than this many homomorphisms (`None` =
    /// unlimited). Guards the noise/query generators against pathological
    /// candidates.
    pub max_homs: Option<usize>,
}

/// One tuple's synopsis: `(t̄, (H, B))`, with `R_{D,Σ,Q}(t̄) > 0`
/// guaranteed (Lemma 4.1(4): the tuple appears iff `H ≠ ∅`).
#[derive(Debug, Clone)]
pub struct SynopsisEntry {
    /// The candidate answer `t̄` (empty for Boolean queries).
    pub tuple: Vec<Datum>,
    /// The encoded `(Σ,Q)`-synopsis of `D` for `t̄`.
    pub pair: AdmissiblePair,
    /// The global identity of each local block (for diagnostics and the
    /// noise generator, which must find the underlying facts again).
    pub global_blocks: Vec<GlobalBlock>,
}

/// The full `enc(syn_{Σ,Q}(D))`: every candidate answer with positive
/// relative frequency, paired with its encoded synopsis.
#[derive(Debug, Clone)]
pub struct SynopsisSet {
    /// Entries ordered by tuple.
    pub entries: Vec<SynopsisEntry>,
    /// `|⋃ᵢ Hᵢ|`: the homomorphic size of `Q` w.r.t. `D` — the number of
    /// distinct *consistent* homomorphic images across all tuples (§6.1).
    pub hom_size: usize,
    /// Total homomorphisms enumerated, including inconsistent ones.
    pub total_homs: usize,
    /// Wall time of the preprocessing step (the paper's Figure 3 metric).
    pub build_time: Duration,
}

impl SynopsisSet {
    /// The output size `|syn_{Σ,Q}(D)| = |Q(D)|` restricted to tuples with
    /// positive frequency (§6.1).
    pub fn output_size(&self) -> usize {
        self.entries.len()
    }

    /// The balance of `Q` w.r.t. `D` (§6.1): the inverse of the average
    /// number of images per synopsis, `|syn| / |⋃ᵢ Hᵢ|` — close to 1 when
    /// synopses are small, close to 0 when few tuples own many images.
    /// Boolean queries with a non-empty answer have balance `1/|H|` by this
    /// formula; the paper treats them as balance 0.
    pub fn balance(&self) -> f64 {
        if self.hom_size == 0 {
            return 0.0;
        }
        self.entries.len() as f64 / self.hom_size as f64
    }

    /// Looks up the entry of a tuple.
    pub fn get(&self, tuple: &[Datum]) -> Option<&SynopsisEntry> {
        self.entries.iter().find(|e| e.tuple == tuple)
    }
}

/// Builds the synopsis of every candidate answer in one pass (§5).
pub fn build_synopses(
    db: &Database,
    q: &ConjunctiveQuery,
    opts: BuildOptions,
) -> Result<SynopsisSet> {
    let sw = Stopwatch::start();
    let mut build_span = cqa_obs::span("synopsis/build");

    // Per-relation block metadata, fetched once per distinct relation.
    let mut rel_blocks: HashMap<RelId, std::sync::Arc<cqa_storage::RelationBlocks>> =
        HashMap::new();
    for atom in &q.atoms {
        rel_blocks.entry(atom.rel).or_insert_with(|| db.blocks(atom.rel));
    }

    // Group consistent images by head tuple. BTreeMap gives deterministic
    // entry order.
    let mut groups: BTreeMap<Vec<Datum>, HashSet<Box<[GlobalAtom]>>> = BTreeMap::new();
    let mut all_images: HashSet<Box<[GlobalAtom]>> = HashSet::new();
    let mut total_homs = 0usize;

    let eval_opts = EvalOptions {
        max_homs: opts.max_homs,
        deadline: opts.deadline.unwrap_or_else(Deadline::none),
    };

    // Phase 1: homomorphism enumeration + consistency check + image dedup.
    let mut enum_span = cqa_obs::span("synopsis/enumerate_homs");
    for_each_hom(db, q, eval_opts, |binding, facts| {
        total_homs += 1;
        // Encode the image and check h(Q) |= Σ: atoms that share a block
        // must map to the same fact.
        let mut image: Vec<GlobalAtom> = Vec::with_capacity(q.atoms.len());
        for (atom, &row) in q.atoms.iter().zip(facts) {
            let blocks = &rel_blocks[&atom.rel];
            let (bid, tid) = blocks.of_row(row);
            image.push((atom.rel, bid, tid));
        }
        image.sort_unstable();
        image.dedup();
        let consistent =
            image.windows(2).all(|w| !(w[0].0 == w[1].0 && w[0].1 == w[1].1 && w[0].2 != w[1].2));
        if consistent {
            let tuple: Vec<Datum> = q.head.iter().map(|v| binding[v.idx()]).collect();
            let boxed: Box<[GlobalAtom]> = image.into_boxed_slice();
            all_images.insert(boxed.clone());
            groups.entry(tuple).or_default().insert(boxed);
        }
        ControlFlow::Continue(())
    })?;
    enum_span.set_args(total_homs as u64, all_images.len() as u64);
    drop(enum_span);

    let hom_size = all_images.len();

    // Phase 2: per-tuple block grouping and integer encoding.
    let mut encode_span = cqa_obs::span_args("synopsis/encode_groups", groups.len() as u64, 0);
    let mut entries = Vec::with_capacity(groups.len());
    for (tuple, images) in groups {
        let mut block_set: BTreeSet<GlobalBlock> = BTreeSet::new();
        for img in &images {
            for &(rel, bid, _) in img.iter() {
                block_set.insert((rel, bid));
            }
        }
        let global_blocks: Vec<GlobalBlock> = block_set.into_iter().collect();
        let local: HashMap<GlobalBlock, u32> =
            global_blocks.iter().enumerate().map(|(i, &b)| (b, i as u32)).collect();
        let block_sizes: Vec<u32> =
            global_blocks.iter().map(|&(rel, bid)| rel_blocks[&rel].block_size(bid)).collect();
        // Deterministic image order for reproducible encoding.
        let mut images: Vec<Box<[GlobalAtom]>> = images.into_iter().collect();
        images.sort();
        let encoded: Vec<Vec<(u32, u32)>> = images
            .iter()
            .map(|img| img.iter().map(|&(rel, bid, tid)| (local[&(rel, bid)], tid)).collect())
            .collect();
        let pair = AdmissiblePair::new(encoded, block_sizes)?;
        entries.push(SynopsisEntry { tuple, pair, global_blocks });
    }
    encode_span.set_args(entries.len() as u64, hom_size as u64);
    drop(encode_span);
    build_span.set_args(total_homs as u64, entries.len() as u64);

    Ok(SynopsisSet { entries, hom_size, total_homs, build_time: sw.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::parse;
    use cqa_storage::ColumnType::*;
    use cqa_storage::{Schema, Value};

    /// The paper's Example 1.1 database.
    fn example_db() -> Database {
        let schema = Schema::builder()
            .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
            .build();
        let mut db = Database::new(schema);
        for (id, name, dept) in
            [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT")]
        {
            db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])
                .unwrap();
        }
        db
    }

    #[test]
    fn boolean_example_synopsis() {
        let db = example_db();
        let q = parse(db.schema(), "Q() :- employee(1, n1, d), employee(2, n2, d)").unwrap();
        let syn = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        // One candidate answer (the empty tuple), two witnessing images.
        assert_eq!(syn.output_size(), 1);
        assert_eq!(syn.hom_size, 2);
        let entry = &syn.entries[0];
        assert!(entry.tuple.is_empty());
        assert_eq!(entry.pair.num_images(), 2);
        assert_eq!(entry.pair.num_blocks(), 2);
        assert_eq!(entry.pair.block_sizes(), &[2, 2]);
    }

    #[test]
    fn non_boolean_synopses_group_by_tuple() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(2, n, d)").unwrap();
        let syn = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        // Alice and Tim each witnessed by one image over the id-2 block.
        assert_eq!(syn.output_size(), 2);
        assert_eq!(syn.hom_size, 2);
        for e in &syn.entries {
            assert_eq!(e.pair.num_images(), 1);
            assert_eq!(e.pair.num_blocks(), 1);
            assert_eq!(e.pair.block_sizes(), &[2]);
        }
        assert!((syn.balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inconsistent_images_are_dropped() {
        let db = example_db();
        // employee(2, n1, d1), employee(2, n2, d2) with n1≠n2 would need two
        // facts from the same block → only the diagonal (same fact twice)
        // homomorphisms survive the consistency check.
        let q =
            parse(db.schema(), "Q(n1, n2) :- employee(2, n1, d1), employee(2, n2, d2)").unwrap();
        let syn = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        // 4 homomorphisms total, only (Alice,Alice) and (Tim,Tim) are
        // consistent.
        assert_eq!(syn.total_homs, 4);
        assert_eq!(syn.output_size(), 2);
        for e in &syn.entries {
            assert_eq!(e.tuple[0], e.tuple[1]);
        }
    }

    #[test]
    fn empty_query_result_gives_empty_set() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(9, n, d)").unwrap();
        let syn = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        assert_eq!(syn.output_size(), 0);
        assert_eq!(syn.hom_size, 0);
        assert_eq!(syn.balance(), 0.0);
    }

    #[test]
    fn singleton_blocks_appear_with_kcnt_one() {
        let db = example_db();
        // Join with the consistent part: employee 1's 'Bob' name.
        let q = parse(db.schema(), "Q(d) :- employee(1, 'Bob', d)").unwrap();
        let syn = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        assert_eq!(syn.output_size(), 2); // HR and IT
        for e in &syn.entries {
            assert_eq!(e.pair.block_sizes(), &[2]); // the id-1 block
        }
    }

    #[test]
    fn get_finds_entry_by_tuple() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(2, n, d)").unwrap();
        let syn = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        let alice = db.lookup_value(&Value::str("Alice")).unwrap();
        assert!(syn.get(&[alice]).is_some());
        assert!(syn.get(&[Datum::Int(0)]).is_none());
    }

    #[test]
    fn global_blocks_map_back_to_database_blocks() {
        let db = example_db();
        let q = parse(db.schema(), "Q() :- employee(1, n1, d), employee(2, n2, d)").unwrap();
        let syn = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        let entry = &syn.entries[0];
        let rel = db.schema().rel_id("employee").unwrap();
        for (i, &(r, bid)) in entry.global_blocks.iter().enumerate() {
            assert_eq!(r, rel);
            assert_eq!(db.blocks(rel).block_size(bid), entry.pair.block_sizes()[i]);
        }
    }

    #[test]
    fn max_homs_is_enforced_as_a_guard() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(x, n, d)").unwrap();
        let syn =
            build_synopses(&db, &q, BuildOptions { max_homs: Some(2), deadline: None }).unwrap();
        assert!(syn.total_homs <= 2);
    }
}
