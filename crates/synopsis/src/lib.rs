#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Database synopses: the interface between databases and the
//! approximation schemes.
//!
//! The `(Σ,Q)`-synopsis of `D` for a tuple `t̄` (§4.1) is the pair
//! `(H, B)` of (i) the consistent homomorphic images of `Q(t̄)` in `D` and
//! (ii) the key-equal blocks of the facts occurring in those images. By
//! Lemma 4.1 the synopsis determines the relative frequency:
//! `R_{D,Σ,Q}(t̄) = R(H, B)`, and it can be built in polynomial time.
//!
//! * [`admissible`] — the integer-encoded admissible pair the schemes
//!   consume (`enc(syn_{Σ,Q}(D))` of §5: facts are `(block, tid)` pairs,
//!   blocks carry only their size `kcnt`).
//! * [`build`] — the preprocessing step: one pass over all homomorphisms
//!   builds every tuple's synopsis, mirroring the paper's single-SQL-query
//!   rewriting `Q^rew` (Appendix C).
//! * [`exact`] — exact `R(H, B)` by `db(B)` enumeration and by
//!   inclusion–exclusion over `H` (ground truth for tests and accuracy
//!   experiments).
//! * [`stats`] — the dynamic query parameters of §6.1: homomorphic size,
//!   output size, and **balance**.
//!
//! # Example
//!
//! The paper's Example 1.1: `employee` is keyed on `id`, and employee 1
//! has two conflicting facts, so the database has two repairs. Building
//! the synopses and evaluating `R(H, B)` exactly recovers each answer's
//! relative frequency:
//!
//! ```
//! use cqa_query::parse;
//! use cqa_storage::{ColumnType, Database, Schema, Value};
//! use cqa_synopsis::{build_synopses, exact_ratio_enumerate, BuildOptions};
//!
//! let schema = Schema::builder()
//!     .relation(
//!         "employee",
//!         &[("id", ColumnType::Int), ("name", ColumnType::Str), ("dept", ColumnType::Str)],
//!         Some(1),
//!     )
//!     .build();
//! let mut db = Database::new(schema);
//! for (id, name, dept) in [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT")] {
//!     db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])?;
//! }
//!
//! // Who works in IT? Two candidate answers, one synopsis each.
//! let q = parse(db.schema(), "Q(n) :- employee(i, n, 'IT')")?;
//! let syn = build_synopses(&db, &q, BuildOptions::default())?;
//! assert_eq!(syn.output_size(), 2);
//!
//! // Alice's fact is conflict-free: she answers in both repairs.
//! let alice = db.lookup_value(&Value::str("Alice")).unwrap();
//! let pair = &syn.get(&[alice]).unwrap().pair;
//! assert_eq!(exact_ratio_enumerate(pair, 1_000)?, 1.0);
//!
//! // Bob is in IT only in the repair that picks (1, Bob, IT).
//! let bob = db.lookup_value(&Value::str("Bob")).unwrap();
//! let pair = &syn.get(&[bob]).unwrap().pair;
//! assert_eq!(exact_ratio_enumerate(pair, 1_000)?, 0.5);
//! # Ok::<(), cqa_common::CqaError>(())
//! ```

pub mod admissible;
pub mod build;
pub mod certain;
pub mod dnf;
pub mod exact;
pub mod rewrite;
pub mod stats;

pub use admissible::{AdmissiblePair, ImageAtom};
pub use build::{build_synopses, BuildOptions, SynopsisEntry, SynopsisSet};
pub use certain::{certain_answers, certain_answers_of, is_certain, CertaintyEvidence};
pub use dnf::BlockDnf;
pub use exact::{exact_ratio_enumerate, exact_ratio_inclusion_exclusion};
pub use rewrite::{fold_rows, rewrite_rows, AtomMeta, RewriteRow};
pub use stats::SynopsisStats;
