#![warn(missing_docs)]

//! Database synopses: the interface between databases and the
//! approximation schemes.
//!
//! The `(Σ,Q)`-synopsis of `D` for a tuple `t̄` (§4.1) is the pair
//! `(H, B)` of (i) the consistent homomorphic images of `Q(t̄)` in `D` and
//! (ii) the key-equal blocks of the facts occurring in those images. By
//! Lemma 4.1 the synopsis determines the relative frequency:
//! `R_{D,Σ,Q}(t̄) = R(H, B)`, and it can be built in polynomial time.
//!
//! * [`admissible`] — the integer-encoded admissible pair the schemes
//!   consume (`enc(syn_{Σ,Q}(D))` of §5: facts are `(block, tid)` pairs,
//!   blocks carry only their size `kcnt`).
//! * [`build`] — the preprocessing step: one pass over all homomorphisms
//!   builds every tuple's synopsis, mirroring the paper's single-SQL-query
//!   rewriting `Q^rew` (Appendix C).
//! * [`exact`] — exact `R(H, B)` by `db(B)` enumeration and by
//!   inclusion–exclusion over `H` (ground truth for tests and accuracy
//!   experiments).
//! * [`stats`] — the dynamic query parameters of §6.1: homomorphic size,
//!   output size, and **balance**.

pub mod admissible;
pub mod build;
pub mod certain;
pub mod dnf;
pub mod exact;
pub mod rewrite;
pub mod stats;

pub use admissible::{AdmissiblePair, ImageAtom};
pub use build::{build_synopses, BuildOptions, SynopsisEntry, SynopsisSet};
pub use certain::{certain_answers, certain_answers_of, is_certain, CertaintyEvidence};
pub use dnf::BlockDnf;
pub use exact::{exact_ratio_enumerate, exact_ratio_inclusion_exclusion};
pub use rewrite::{fold_rows, rewrite_rows, AtomMeta, RewriteRow};
pub use stats::SynopsisStats;
