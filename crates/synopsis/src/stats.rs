//! The dynamic query parameters of §6.1, computed from a synopsis set.

use crate::build::SynopsisSet;
use cqa_common::LogNum;

/// Summary statistics of `syn_{Σ,Q}(D)` — the quantities the paper's
/// analysis attributes the schemes' behaviour to.
#[derive(Debug, Clone, PartialEq)]
pub struct SynopsisStats {
    /// `|Q(D)|` restricted to positive-frequency tuples (output size).
    pub output_size: usize,
    /// `|⋃ᵢ Hᵢ|` (homomorphic size).
    pub hom_size: usize,
    /// Balance = output size / homomorphic size (0 when empty).
    pub balance: f64,
    /// Average number of images per synopsis.
    pub avg_images: f64,
    /// Largest `|H|` over all synopses.
    pub max_images: usize,
    /// Average number of blocks per synopsis.
    pub avg_blocks: f64,
    /// Largest `|db(B)|` over all synopses, log₁₀.
    pub max_log10_db_b: f64,
    /// Preprocessing wall time in seconds.
    pub build_secs: f64,
}

impl SynopsisStats {
    /// Computes the statistics of a synopsis set.
    pub fn of(set: &SynopsisSet) -> Self {
        let n = set.entries.len();
        let avg_images = if n == 0 {
            0.0
        } else {
            set.entries.iter().map(|e| e.pair.num_images()).sum::<usize>() as f64 / n as f64
        };
        let avg_blocks = if n == 0 {
            0.0
        } else {
            set.entries.iter().map(|e| e.pair.num_blocks()).sum::<usize>() as f64 / n as f64
        };
        let max_images = set.entries.iter().map(|e| e.pair.num_images()).max().unwrap_or(0);
        let max_log10_db_b = set
            .entries
            .iter()
            .map(|e| e.pair.log_db_b())
            .fold(LogNum::ZERO, |a, b| if b > a { b } else { a })
            .log10();
        SynopsisStats {
            output_size: set.output_size(),
            hom_size: set.hom_size,
            balance: set.balance(),
            avg_images,
            max_images,
            avg_blocks,
            max_log10_db_b: if n == 0 { 0.0 } else { max_log10_db_b },
            build_secs: set.build_time.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_synopses, BuildOptions};
    use cqa_query::parse;
    use cqa_storage::ColumnType::*;
    use cqa_storage::{Database, Schema, Value};

    fn example_db() -> Database {
        let schema = Schema::builder()
            .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
            .build();
        let mut db = Database::new(schema);
        for (id, name, dept) in
            [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT")]
        {
            db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])
                .unwrap();
        }
        db
    }

    #[test]
    fn stats_of_non_boolean_query() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(2, n, d)").unwrap();
        let set = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        let s = SynopsisStats::of(&set);
        assert_eq!(s.output_size, 2);
        assert_eq!(s.hom_size, 2);
        assert!((s.balance - 1.0).abs() < 1e-12);
        assert!((s.avg_images - 1.0).abs() < 1e-12);
        assert_eq!(s.max_images, 1);
        assert!((s.avg_blocks - 1.0).abs() < 1e-12);
        // |db(B)| = 2 per synopsis → log10 ≈ 0.301.
        assert!((s.max_log10_db_b - 2f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn stats_of_boolean_query_have_low_balance() {
        let db = example_db();
        let q = parse(db.schema(), "Q() :- employee(1, n1, d), employee(2, n2, d)").unwrap();
        let set = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        let s = SynopsisStats::of(&set);
        assert_eq!(s.output_size, 1);
        assert_eq!(s.hom_size, 2);
        assert!((s.balance - 0.5).abs() < 1e-12);
        assert_eq!(s.max_images, 2);
    }

    #[test]
    fn stats_of_empty_set_are_zero() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(9, n, d)").unwrap();
        let set = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        let s = SynopsisStats::of(&set);
        assert_eq!(s.output_size, 0);
        assert_eq!(s.balance, 0.0);
        assert_eq!(s.max_log10_db_b, 0.0);
    }
}
