//! The rewriting `Q^rew` of Appendix C, materialized.
//!
//! The paper computes `enc(syn_{Σ,Q}(D))` by running one SQL query that
//! extends every joined fact with `(rid, bid, tid, kcnt)` window-function
//! metadata and then folding the rows. [`rewrite_rows`] produces exactly
//! those rows from our engine — the same `(h(x̄), rid₁, bid₁, tid₁,
//! kcnt₁, …, ridₙ, bidₙ, tidₙ, kcntₙ)` tuples, ordered by `h(x̄)` as the
//! paper's `ORDER BY ᾱ` does — and [`fold_rows`] rebuilds the synopsis
//! set from them in linear time, as described in the appendix.
//!
//! The synopsis builder in [`crate::build`] fuses these two steps; this
//! module keeps the two-phase pipeline around both as a fidelity artifact
//! and as an independent implementation to cross-check the fused one
//! (see the tests).

use crate::admissible::AdmissiblePair;
use crate::build::{SynopsisEntry, SynopsisSet};
use cqa_common::{Result, Stopwatch};
use cqa_query::{for_each_hom, ConjunctiveQuery, EvalOptions};
use cqa_storage::{Database, Datum, RelId};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::ops::ControlFlow;

/// The per-atom metadata of one rewriting row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomMeta {
    /// The relation identifier (the paper's `#R`).
    pub rid: RelId,
    /// Block identifier within the relation (`dense_rank` over the key).
    pub bid: u32,
    /// Position within the block (`row_number` over the non-key), 0-based.
    pub tid: u32,
    /// Block cardinality (`count(*) OVER (PARTITION BY key)`).
    pub kcnt: u32,
}

/// One row of `Q^rew(D)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteRow {
    /// The answer tuple `h(x̄)`.
    pub tuple: Vec<Datum>,
    /// Metadata for each body atom, in atom order.
    pub atoms: Vec<AtomMeta>,
}

/// Evaluates `Q^rew` over `D`: one row per homomorphism, ordered by the
/// answer tuple (then by metadata, for determinism).
pub fn rewrite_rows(db: &Database, q: &ConjunctiveQuery) -> Result<Vec<RewriteRow>> {
    let mut rel_blocks: HashMap<RelId, std::sync::Arc<cqa_storage::RelationBlocks>> =
        HashMap::new();
    for atom in &q.atoms {
        rel_blocks.entry(atom.rel).or_insert_with(|| db.blocks(atom.rel));
    }
    let mut rows = Vec::new();
    for_each_hom(db, q, EvalOptions::default(), |binding, facts| {
        let tuple: Vec<Datum> = q.head.iter().map(|v| binding[v.idx()]).collect();
        let atoms: Vec<AtomMeta> = q
            .atoms
            .iter()
            .zip(facts)
            .map(|(atom, &row)| {
                let blocks = &rel_blocks[&atom.rel];
                let (bid, tid) = blocks.of_row(row);
                AtomMeta { rid: atom.rel, bid, tid, kcnt: blocks.block_size(bid) }
            })
            .collect();
        rows.push(RewriteRow { tuple, atoms });
        ControlFlow::Continue(())
    })?;
    rows.sort_by(|a, b| a.tuple.cmp(&b.tuple).then_with(|| a.atoms.cmp(&b.atoms)));
    Ok(rows)
}

/// Folds `Q^rew(D)` rows into `enc(syn_{Σ,Q}(D))` in one linear pass
/// (Appendix C): a row whose atoms are consistent (`(rid, bid)` equal ⇒
/// `tid` equal) contributes its image to the synopsis of its tuple.
pub fn fold_rows(rows: &[RewriteRow]) -> Result<SynopsisSet> {
    let sw = Stopwatch::start();
    type GlobalAtom = (RelId, u32, u32);
    let mut groups: BTreeMap<Vec<Datum>, HashSet<Box<[GlobalAtom]>>> = BTreeMap::new();
    let mut kcnts: HashMap<(RelId, u32), u32> = HashMap::new();
    let mut all_images: HashSet<Box<[GlobalAtom]>> = HashSet::new();
    for row in rows {
        let mut image: Vec<GlobalAtom> = Vec::with_capacity(row.atoms.len());
        for m in &row.atoms {
            image.push((m.rid, m.bid, m.tid));
            kcnts.insert((m.rid, m.bid), m.kcnt);
        }
        image.sort_unstable();
        image.dedup();
        let consistent =
            image.windows(2).all(|w| !(w[0].0 == w[1].0 && w[0].1 == w[1].1 && w[0].2 != w[1].2));
        if consistent {
            let boxed: Box<[GlobalAtom]> = image.into_boxed_slice();
            all_images.insert(boxed.clone());
            groups.entry(row.tuple.clone()).or_default().insert(boxed);
        }
    }
    let hom_size = all_images.len();
    let mut entries = Vec::with_capacity(groups.len());
    for (tuple, images) in groups {
        let mut block_set: BTreeSet<(RelId, u32)> = BTreeSet::new();
        for img in &images {
            for &(rid, bid, _) in img.iter() {
                block_set.insert((rid, bid));
            }
        }
        let global_blocks: Vec<(RelId, u32)> = block_set.into_iter().collect();
        let local: HashMap<(RelId, u32), u32> =
            global_blocks.iter().enumerate().map(|(i, &b)| (b, i as u32)).collect();
        let block_sizes: Vec<u32> = global_blocks.iter().map(|b| kcnts[b]).collect();
        let mut images: Vec<Box<[GlobalAtom]>> = images.into_iter().collect();
        images.sort();
        let encoded: Vec<Vec<(u32, u32)>> = images
            .iter()
            .map(|img| img.iter().map(|&(rid, bid, tid)| (local[&(rid, bid)], tid)).collect())
            .collect();
        let pair = AdmissiblePair::new(encoded, block_sizes)?;
        entries.push(SynopsisEntry { tuple, pair, global_blocks });
    }
    Ok(SynopsisSet { entries, hom_size, total_homs: rows.len(), build_time: sw.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_synopses, BuildOptions};
    use cqa_common::Mt64;
    use cqa_query::parse;
    use cqa_storage::ColumnType::*;
    use cqa_storage::{Schema, Value};

    fn example_db() -> Database {
        let schema = Schema::builder()
            .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
            .relation("dept", &[("dname", Str), ("floor", Int)], Some(1))
            .build();
        let mut db = Database::new(schema);
        for (id, name, dept) in [
            (1, "Bob", "HR"),
            (1, "Bob", "IT"),
            (2, "Alice", "IT"),
            (2, "Tim", "IT"),
            (3, "Eve", "HR"),
        ] {
            db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])
                .unwrap();
        }
        for (dname, floor) in [("HR", 1), ("HR", 2), ("IT", 2)] {
            db.insert_named("dept", &[Value::str(dname), Value::Int(floor)]).unwrap();
        }
        db
    }

    #[test]
    fn rewrite_rows_carry_correct_metadata() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(2, n, d)").unwrap();
        let rows = rewrite_rows(&db, &q).unwrap();
        assert_eq!(rows.len(), 2); // Alice and Tim
        for row in &rows {
            assert_eq!(row.atoms.len(), 1);
            let m = row.atoms[0];
            assert_eq!(m.kcnt, 2); // employee-2's block has two facts
            assert!(m.tid < m.kcnt);
        }
        // Both homomorphisms hit the same block, different tids.
        assert_eq!(rows[0].atoms[0].bid, rows[1].atoms[0].bid);
        assert_ne!(rows[0].atoms[0].tid, rows[1].atoms[0].tid);
    }

    #[test]
    fn rows_are_ordered_by_answer_tuple() {
        let db = example_db();
        let q = parse(db.schema(), "Q(x, n) :- employee(x, n, d)").unwrap();
        let rows = rewrite_rows(&db, &q).unwrap();
        for w in rows.windows(2) {
            assert!(w[0].tuple <= w[1].tuple);
        }
    }

    /// The two-phase pipeline (rewrite → fold) must produce the same
    /// synopsis set as the fused builder.
    fn check_equivalence(db: &Database, text: &str) {
        let q = parse(db.schema(), text).unwrap();
        let fused = build_synopses(db, &q, BuildOptions::default()).unwrap();
        let rows = rewrite_rows(db, &q).unwrap();
        let folded = fold_rows(&rows).unwrap();
        assert_eq!(fused.hom_size, folded.hom_size, "hom size for {text}");
        assert_eq!(fused.entries.len(), folded.entries.len(), "entries for {text}");
        for (a, b) in fused.entries.iter().zip(&folded.entries) {
            assert_eq!(a.tuple, b.tuple);
            assert_eq!(a.pair, b.pair, "pair mismatch for {text}");
            assert_eq!(a.global_blocks, b.global_blocks);
        }
    }

    #[test]
    fn fold_matches_fused_builder_on_examples() {
        let db = example_db();
        for text in [
            "Q() :- employee(1, n1, d), employee(2, n2, d)",
            "Q(n) :- employee(x, n, d)",
            "Q(n, f) :- employee(x, n, d), dept(d, f)",
            "Q(x, y) :- employee(x, n, d), employee(y, m, d)",
        ] {
            check_equivalence(&db, text);
        }
    }

    #[test]
    fn fold_matches_fused_builder_on_random_databases() {
        let mut rng = Mt64::new(808);
        for _ in 0..20 {
            let schema = Schema::builder()
                .relation("r", &[("k", Int), ("a", Int)], Some(1))
                .relation("s", &[("k", Int), ("b", Int)], Some(1))
                .build();
            let mut db = Database::new(schema);
            for _ in 0..8 {
                db.insert_named(
                    "r",
                    &[Value::Int(rng.below(3) as i64), Value::Int(rng.below(3) as i64)],
                )
                .unwrap();
                db.insert_named(
                    "s",
                    &[Value::Int(rng.below(3) as i64), Value::Int(rng.below(3) as i64)],
                )
                .unwrap();
            }
            check_equivalence(&db, "Q(a) :- r(k, a), s(a, b)");
            check_equivalence(&db, "Q(k, b) :- r(k, a), s(k, b)");
        }
    }

    #[test]
    fn empty_result_folds_to_empty_set() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(9, n, d)").unwrap();
        let rows = rewrite_rows(&db, &q).unwrap();
        assert!(rows.is_empty());
        let folded = fold_rows(&rows).unwrap();
        assert_eq!(folded.output_size(), 0);
    }
}
