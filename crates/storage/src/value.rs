//! Values and their dictionary-encoded in-table representation.
//!
//! The approximation schemes are oblivious to the syntactic shape of facts
//! (§5), so tables store compact [`Datum`]s: integers inline, strings as
//! 32-bit dictionary ids resolved through the database's [`crate::Interner`].

use std::fmt;

/// A user-facing database value. The paper's databases are NULL-free, so
/// there is deliberately no null variant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A 64-bit integer (also used for dates, encoded as day numbers, and
    /// monetary amounts, encoded as cents).
    Int(i64),
    /// A string.
    Str(String),
}

impl Value {
    /// Convenience constructor from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// The column type this value inhabits.
    pub fn column_type(&self) -> crate::schema::ColumnType {
        match self {
            Value::Int(_) => crate::schema::ColumnType::Int,
            Value::Str(_) => crate::schema::ColumnType::Str,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A dictionary id for an interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(pub u32);

/// The in-table representation of a value: 16 bytes, `Copy`, hashable.
///
/// The derived `Ord` gives a deterministic total order (integers before
/// strings; strings by dictionary id). Block ids (`bid`) only need *some*
/// deterministic order — they are opaque identifiers, exactly as in the
/// paper's `dense_rank` view — so ordering strings by dictionary id rather
/// than lexicographically is fine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Datum {
    /// Inline integer.
    Int(i64),
    /// Interned string.
    Str(StrId),
}

impl Datum {
    /// True if this datum is an integer.
    pub fn is_int(&self) -> bool {
        matches!(self, Datum::Int(_))
    }

    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(i) => Some(*i),
            Datum::Str(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("HR").to_string(), "'HR'");
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(String::from("y")), Value::Str("y".into()));
    }

    #[test]
    fn datum_is_small_and_copy() {
        assert!(std::mem::size_of::<Datum>() <= 16);
        let d = Datum::Int(3);
        let e = d; // Copy
        assert_eq!(d, e);
    }

    #[test]
    fn datum_order_is_total_and_deterministic() {
        let mut v = vec![Datum::Str(StrId(2)), Datum::Int(5), Datum::Int(-1), Datum::Str(StrId(0))];
        v.sort();
        assert_eq!(
            v,
            vec![Datum::Int(-1), Datum::Int(5), Datum::Str(StrId(0)), Datum::Str(StrId(2))]
        );
    }
}
