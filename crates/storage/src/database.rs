//! The database type: schema + interner + tables + lazy caches.
//!
//! Caches (block metadata and hash indices) are built on demand behind a
//! `parking_lot::RwLock` so query evaluation works on `&Database`, and are
//! invalidated wholesale on mutation (the noise generator is the only
//! mutating consumer after initial load, and it mutates in one burst).

use crate::block::RelationBlocks;
use crate::interner::Interner;
use crate::schema::{ColumnType, RelId, Schema};
use crate::table::Table;
use crate::value::{Datum, Value};
use cqa_common::{CqaError, LogNum, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A global reference to a fact: relation + row index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactRef {
    /// Relation of the fact.
    pub rel: RelId,
    /// Row index within the relation's table.
    pub row: u32,
}

/// A hash index over a set of column positions of one relation:
/// projected key → matching row indices.
#[derive(Debug)]
pub struct PosIndex {
    cols: Vec<u16>,
    map: HashMap<Vec<Datum>, Vec<u32>>,
}

impl PosIndex {
    fn build(table: &Table, cols: &[u16]) -> Self {
        let mut map: HashMap<Vec<Datum>, Vec<u32>> = HashMap::new();
        let mut key = Vec::with_capacity(cols.len());
        for (i, row) in table.iter() {
            key.clear();
            key.extend(cols.iter().map(|&c| row[c as usize]));
            map.entry(key.clone()).or_default().push(i);
        }
        PosIndex { cols: cols.to_vec(), map }
    }

    /// Rows whose projection on the indexed columns equals `key`.
    pub fn get(&self, key: &[Datum]) -> &[u32] {
        debug_assert_eq!(key.len(), self.cols.len());
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The indexed column positions.
    pub fn columns(&self) -> &[u16] {
        &self.cols
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[derive(Default)]
struct Caches {
    blocks: HashMap<RelId, Arc<RelationBlocks>>,
    indices: HashMap<(RelId, Vec<u16>), Arc<PosIndex>>,
}

/// An in-memory relational database over a fixed schema.
pub struct Database {
    schema: Arc<Schema>,
    interner: Interner,
    tables: Vec<Table>,
    caches: RwLock<Caches>,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        Database {
            schema: Arc::clone(&self.schema),
            interner: self.interner.clone(),
            tables: self.tables.clone(),
            caches: RwLock::new(Caches::default()),
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("relations", &self.schema.len())
            .field("facts", &self.fact_count())
            .finish_non_exhaustive()
    }
}

impl Database {
    /// An empty database over `schema`.
    pub fn new(schema: Schema) -> Self {
        let tables = schema.relations().iter().map(|r| Table::new(r.arity())).collect();
        Database {
            schema: Arc::new(schema),
            interner: Interner::new(),
            tables,
            caches: RwLock::new(Caches::default()),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// The string dictionary.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The table of a relation.
    pub fn table(&self, rel: RelId) -> &Table {
        &self.tables[rel.idx()]
    }

    /// Total number of facts across all relations.
    pub fn fact_count(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// The row of a fact.
    pub fn fact(&self, f: FactRef) -> &[Datum] {
        self.table(f.rel).row(f.row)
    }

    fn invalidate(&mut self) {
        self.caches.get_mut().blocks.clear();
        self.caches.get_mut().indices.clear();
    }

    /// Interns a value into its datum form (interning strings as needed).
    pub fn intern_value(&mut self, v: &Value) -> Datum {
        match v {
            Value::Int(i) => Datum::Int(*i),
            Value::Str(s) => Datum::Str(self.interner.intern(s)),
        }
    }

    /// Resolves a datum of this database back into a value.
    pub fn resolve(&self, d: Datum) -> Value {
        match d {
            Datum::Int(i) => Value::Int(i),
            Datum::Str(id) => Value::Str(self.interner.resolve(id).to_owned()),
        }
    }

    /// Looks up the datum form of a value without interning; `None` when
    /// the value cannot occur in this database (unknown string).
    pub fn lookup_value(&self, v: &Value) -> Option<Datum> {
        match v {
            Value::Int(i) => Some(Datum::Int(*i)),
            Value::Str(s) => self.interner.get(s).map(Datum::Str),
        }
    }

    /// Type-checks and inserts a fact given as values. Returns `true` when
    /// the fact is new (set semantics).
    pub fn insert(&mut self, rel: RelId, values: &[Value]) -> Result<bool> {
        let def = self.schema.relation(rel);
        if values.len() != def.arity() {
            return Err(CqaError::ArityMismatch {
                relation: def.name.clone(),
                expected: def.arity(),
                got: values.len(),
            });
        }
        for (i, (v, c)) in values.iter().zip(&def.columns).enumerate() {
            let ok = matches!(
                (v, c.ty),
                (Value::Int(_), ColumnType::Int) | (Value::Str(_), ColumnType::Str)
            );
            if !ok {
                return Err(CqaError::TypeMismatch {
                    relation: def.name.clone(),
                    column: def.columns[i].name.clone(),
                    detail: format!("value {v} does not match column type {:?}", c.ty),
                });
            }
        }
        let row: Vec<Datum> = values.iter().map(|v| self.intern_value(v)).collect();
        Ok(self.insert_datums(rel, &row))
    }

    /// Inserts a fact by name: `db.insert_named("employee", &[...])`.
    pub fn insert_named(&mut self, rel: &str, values: &[Value]) -> Result<bool> {
        let id = self.schema.require(rel)?;
        self.insert(id, values)
    }

    /// Inserts a pre-encoded row (datums must come from this database's
    /// interner). Returns `true` when the fact is new.
    pub fn insert_datums(&mut self, rel: RelId, row: &[Datum]) -> bool {
        let inserted = self.tables[rel.idx()].insert(row).is_some();
        if inserted {
            self.invalidate();
        }
        inserted
    }

    /// Block metadata for a relation (cached).
    pub fn blocks(&self, rel: RelId) -> Arc<RelationBlocks> {
        if let Some(b) = self.caches.read().blocks.get(&rel) {
            return Arc::clone(b);
        }
        let key_len = self.schema.relation(rel).key_len;
        let built = Arc::new(RelationBlocks::compute(self.table(rel), key_len));
        let mut w = self.caches.write();
        Arc::clone(w.blocks.entry(rel).or_insert(built))
    }

    /// A hash index on the given column positions of a relation (cached).
    pub fn index(&self, rel: RelId, cols: &[u16]) -> Arc<PosIndex> {
        let key = (rel, cols.to_vec());
        if let Some(ix) = self.caches.read().indices.get(&key) {
            return Arc::clone(ix);
        }
        let built = Arc::new(PosIndex::build(self.table(rel), cols));
        let mut w = self.caches.write();
        Arc::clone(w.indices.entry(key).or_insert(built))
    }

    /// `|rep(D, Σ)|` in log space: the product of all block sizes (§2).
    pub fn repair_count(&self) -> LogNum {
        let mut total = LogNum::ONE;
        for (rel, _) in self.schema.iter() {
            let blocks = self.blocks(rel);
            for (_, rows) in blocks.iter() {
                total = total * LogNum::from_count(rows.len() as u64);
            }
        }
        total
    }

    /// Pretty-prints a fact.
    pub fn fmt_fact(&self, f: FactRef) -> String {
        let def = self.schema.relation(f.rel);
        let vals: Vec<String> = self.fact(f).iter().map(|&d| self.resolve(d).to_string()).collect();
        format!("{}({})", def.name, vals.join(", "))
    }

    /// Pretty-prints a tuple of datums.
    pub fn fmt_tuple(&self, t: &[Datum]) -> String {
        let vals: Vec<String> = t.iter().map(|&d| self.resolve(d).to_string()).collect();
        format!("({})", vals.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType::*;

    fn employee_db() -> Database {
        let schema = Schema::builder()
            .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
            .build();
        let mut db = Database::new(schema);
        let e = db.schema().rel_id("employee").unwrap();
        for (id, name, dept) in
            [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT")]
        {
            db.insert(e, &[Value::Int(id), Value::str(name), Value::str(dept)]).unwrap();
        }
        db
    }

    #[test]
    fn insert_and_count() {
        let db = employee_db();
        assert_eq!(db.fact_count(), 4);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut db = employee_db();
        let e = db.schema().rel_id("employee").unwrap();
        let added = db.insert(e, &[Value::Int(1), Value::str("Bob"), Value::str("HR")]).unwrap();
        assert!(!added);
        assert_eq!(db.fact_count(), 4);
    }

    #[test]
    fn type_errors_are_reported() {
        let mut db = employee_db();
        let e = db.schema().rel_id("employee").unwrap();
        let err = db.insert(e, &[Value::str("one"), Value::str("Bob"), Value::str("HR")]);
        assert!(matches!(err, Err(CqaError::TypeMismatch { .. })));
        let err = db.insert(e, &[Value::Int(1)]);
        assert!(matches!(err, Err(CqaError::ArityMismatch { .. })));
    }

    #[test]
    fn example_1_1_repair_count_is_four() {
        // 2 blocks of size 2 → 4 repairs, as in the paper's Example 1.1.
        let db = employee_db();
        assert!((db.repair_count().value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn blocks_are_cached_and_invalidated() {
        let mut db = employee_db();
        let e = db.schema().rel_id("employee").unwrap();
        let b1 = db.blocks(e);
        let b2 = db.blocks(e);
        assert!(Arc::ptr_eq(&b1, &b2));
        db.insert(e, &[Value::Int(3), Value::str("Zoe"), Value::str("HR")]).unwrap();
        let b3 = db.blocks(e);
        assert!(!Arc::ptr_eq(&b1, &b3));
        assert_eq!(b3.block_count(), 3);
    }

    #[test]
    fn index_lookup_finds_matching_rows() {
        let db = employee_db();
        let e = db.schema().rel_id("employee").unwrap();
        let it = db.lookup_value(&Value::str("IT")).unwrap();
        let ix = db.index(e, &[2]);
        assert_eq!(ix.get(&[it]).len(), 3);
        let hr = db.lookup_value(&Value::str("HR")).unwrap();
        assert_eq!(ix.get(&[hr]).len(), 1);
    }

    #[test]
    fn lookup_value_misses_unknown_strings() {
        let db = employee_db();
        assert!(db.lookup_value(&Value::str("Payroll")).is_none());
        assert!(db.lookup_value(&Value::Int(999)).is_some());
    }

    #[test]
    fn resolve_roundtrips() {
        let mut db = employee_db();
        let v = Value::str("R&D");
        let d = db.intern_value(&v);
        assert_eq!(db.resolve(d), v);
    }

    #[test]
    fn fmt_fact_is_readable() {
        let db = employee_db();
        let e = db.schema().rel_id("employee").unwrap();
        let s = db.fmt_fact(FactRef { rel: e, row: 0 });
        assert_eq!(s, "employee(1, 'Bob', 'HR')");
    }

    #[test]
    fn clone_is_deep_for_tables() {
        let db = employee_db();
        let mut db2 = db.clone();
        let e = db2.schema().rel_id("employee").unwrap();
        db2.insert(e, &[Value::Int(9), Value::str("New"), Value::str("HR")]).unwrap();
        assert_eq!(db.fact_count(), 4);
        assert_eq!(db2.fact_count(), 5);
    }
}
