//! Consistency checking w.r.t. a set of primary keys.
//!
//! `D |= Σ` iff no block has more than one fact (§2). The noise generator
//! relies on these helpers to verify its pre/post-conditions, and the
//! harness reports inconsistency statistics per scenario.

use crate::database::{Database, FactRef};
use crate::schema::RelId;

/// A primary-key violation: a block with more than one fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The relation whose key is violated.
    pub rel: RelId,
    /// The conflicting facts (all members of one block), ≥ 2 of them.
    pub facts: Vec<FactRef>,
}

/// True iff the database satisfies every primary key.
pub fn is_consistent(db: &Database) -> bool {
    db.schema()
        .iter()
        .all(|(rel, def)| def.key_len.is_none() || db.blocks(rel).non_singleton_count() == 0)
}

/// All violations, one per conflicting block.
pub fn violations(db: &Database) -> Vec<Violation> {
    let mut out = Vec::new();
    for (rel, def) in db.schema().iter() {
        if def.key_len.is_none() {
            continue;
        }
        let blocks = db.blocks(rel);
        for (_, rows) in blocks.iter() {
            if rows.len() > 1 {
                out.push(Violation {
                    rel,
                    facts: rows.iter().map(|&row| FactRef { rel, row }).collect(),
                });
            }
        }
    }
    out
}

/// The fraction of facts that are involved in some conflict: a simple
/// inconsistency measure reported by the benchmark harness.
pub fn conflicting_fact_ratio(db: &Database) -> f64 {
    let total = db.fact_count();
    if total == 0 {
        return 0.0;
    }
    let conflicting: usize = violations(db).iter().map(|v| v.facts.len()).sum();
    conflicting as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType::*, Schema};
    use crate::value::Value;

    fn db_with(rows: &[(i64, &str)]) -> Database {
        let schema = Schema::builder().relation("r", &[("k", Int), ("v", Str)], Some(1)).build();
        let mut db = Database::new(schema);
        let r = db.schema().rel_id("r").unwrap();
        for &(k, v) in rows {
            db.insert(r, &[Value::Int(k), Value::str(v)]).unwrap();
        }
        db
    }

    #[test]
    fn consistent_database_has_no_violations() {
        let db = db_with(&[(1, "a"), (2, "b"), (3, "c")]);
        assert!(is_consistent(&db));
        assert!(violations(&db).is_empty());
        assert_eq!(conflicting_fact_ratio(&db), 0.0);
    }

    #[test]
    fn conflicting_block_is_detected() {
        let db = db_with(&[(1, "a"), (1, "b"), (2, "c")]);
        assert!(!is_consistent(&db));
        let v = violations(&db);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].facts.len(), 2);
        assert!((conflicting_fact_ratio(&db) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn keyless_relations_are_always_consistent() {
        let schema = Schema::builder().relation("r", &[("a", Int)], None).build();
        let mut db = Database::new(schema);
        let r = db.schema().rel_id("r").unwrap();
        db.insert(r, &[Value::Int(1)]).unwrap();
        db.insert(r, &[Value::Int(1)]).unwrap(); // duplicate: set semantics
        db.insert(r, &[Value::Int(2)]).unwrap();
        assert!(is_consistent(&db));
    }

    #[test]
    fn empty_database_is_consistent() {
        let db = db_with(&[]);
        assert!(is_consistent(&db));
        assert_eq!(conflicting_fact_ratio(&db), 0.0);
    }
}
