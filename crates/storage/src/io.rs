//! Self-describing textual database dumps.
//!
//! The format embeds the DDL (see [`crate::ddl`]) followed by one
//! tab-separated section per relation, so a dump can be reloaded without
//! any out-of-band schema:
//!
//! ```text
//! #cqa-db v1
//! relation employee(id: int, name: str, dept: str) key 1
//! ---
//! @employee
//! 1\tBob\tHR
//! ```
//!
//! String cells are escaped (`\t`, `\n`, `\\`), and an empty string cell
//! is written as `\e` — otherwise a single-column row holding `""` would
//! serialize to a blank line, which the loader treats as padding.
//! Integer/string typing is recovered from the column types. Used by the
//! CLI to persist generated and noisy databases between commands.

use crate::database::Database;
use crate::ddl::{parse_schema, schema_to_ddl};
use crate::schema::ColumnType;
use crate::value::Value;
use cqa_common::{CqaError, Result};

const HEADER: &str = "#cqa-db v1";

fn escape(s: &str) -> String {
    if s.is_empty() {
        return "\\e".to_owned();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('e') => {} // the empty-string marker contributes nothing
            other => {
                return Err(CqaError::Parse(format!("bad escape '\\{:?}'", other)));
            }
        }
    }
    Ok(out)
}

/// Serializes a database to the dump format.
pub fn dump_to_string(db: &Database) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&schema_to_ddl(db.schema()));
    out.push_str("---\n");
    for (rel, def) in db.schema().iter() {
        out.push_str(&format!("@{}\n", def.name));
        for (_, row) in db.table(rel).iter() {
            let cells: Vec<String> = row
                .iter()
                .map(|&d| match db.resolve(d) {
                    Value::Int(i) => i.to_string(),
                    Value::Str(s) => escape(&s),
                })
                .collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
    }
    out
}

/// Parses a dump back into a database.
pub fn load_from_str(text: &str) -> Result<Database> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == HEADER => {}
        other => {
            return Err(CqaError::Parse(format!(
                "not a cqa-db dump (header {other:?}, expected '{HEADER}')"
            )))
        }
    }
    // Split DDL from data at the '---' separator.
    let mut ddl = String::new();
    for line in lines.by_ref() {
        if line.trim() == "---" {
            break;
        }
        ddl.push_str(line);
        ddl.push('\n');
    }
    let schema = parse_schema(&ddl)?;
    let mut db = Database::new(schema);
    let mut current: Option<crate::schema::RelId> = None;
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('@') {
            current = Some(db.schema().require(name.trim())?);
            continue;
        }
        let rel = current.ok_or_else(|| {
            CqaError::Parse(format!("data row before any @relation marker (row {})", i + 1))
        })?;
        let def = db.schema().relation(rel);
        let cells: Vec<&str> = line.split('\t').collect();
        if cells.len() != def.arity() {
            return Err(CqaError::ArityMismatch {
                relation: def.name.clone(),
                expected: def.arity(),
                got: cells.len(),
            });
        }
        let types: Vec<ColumnType> = def.columns.iter().map(|c| c.ty).collect();
        let mut values = Vec::with_capacity(cells.len());
        for (cell, ty) in cells.iter().zip(types) {
            let v = match ty {
                ColumnType::Int => Value::Int(
                    cell.parse()
                        .map_err(|_| CqaError::Parse(format!("bad integer cell '{cell}'")))?,
                ),
                ColumnType::Str => Value::Str(unescape(cell)?),
            };
            values.push(v);
        }
        db.insert(rel, &values)?;
    }
    Ok(db)
}

/// Writes a dump to a file.
pub fn dump_to_file(db: &Database, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, dump_to_string(db))
        .map_err(|e| CqaError::Parse(format!("cannot write {}: {e}", path.display())))
}

/// Loads a dump from a file.
pub fn load_from_file(path: &std::path::Path) -> Result<Database> {
    if cqa_chaos::fault_point!("storage/dump_load").is_some() {
        return Err(CqaError::Parse(format!(
            "injected fault at storage/dump_load reading {}",
            path.display()
        )));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| CqaError::Parse(format!("cannot read {}: {e}", path.display())))?;
    load_from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use ColumnType::*;

    fn sample_db() -> Database {
        let schema = Schema::builder()
            .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
            .relation("dept", &[("dname", Str), ("floor", Int)], Some(1))
            .foreign_key("employee", &["dept"], "dept", &["dname"])
            .build();
        let mut db = Database::new(schema);
        for (id, name, dept) in [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Ann\tTab", "IT")] {
            db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])
                .unwrap();
        }
        db.insert_named("dept", &[Value::str("HR"), Value::Int(1)]).unwrap();
        db.insert_named("dept", &[Value::str("IT"), Value::Int(2)]).unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = sample_db();
        let text = dump_to_string(&db);
        let loaded = load_from_str(&text).unwrap();
        assert_eq!(loaded.fact_count(), db.fact_count());
        assert_eq!(loaded.schema().relations(), db.schema().relations());
        // Same facts (compare as value rows).
        for (rel, _) in db.schema().iter() {
            let mut a: Vec<Vec<Value>> = db
                .table(rel)
                .iter()
                .map(|(_, r)| r.iter().map(|&d| db.resolve(d)).collect())
                .collect();
            let mut b: Vec<Vec<Value>> = loaded
                .table(rel)
                .iter()
                .map(|(_, r)| r.iter().map(|&d| loaded.resolve(d)).collect())
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn escaping_handles_special_characters() {
        for s in ["tab\there", "newline\nhere", "back\\slash", "plain", ""] {
            assert_eq!(unescape(&escape(s)).unwrap(), s);
        }
        assert_eq!(escape(""), "\\e");
    }

    #[test]
    fn empty_string_in_single_column_relation_survives() {
        // Regression: this fact used to dump as a blank line, which the
        // loader skipped as padding.
        let schema = Schema::builder().relation("tag", &[("name", Str)], None).build();
        let mut db = Database::new(schema);
        db.insert_named("tag", &[Value::str("")]).unwrap();
        db.insert_named("tag", &[Value::str("x")]).unwrap();
        let loaded = load_from_str(&dump_to_string(&db)).unwrap();
        assert_eq!(loaded.fact_count(), 2);
    }

    #[test]
    fn missing_header_is_rejected() {
        assert!(load_from_str("relation r(a: int)\n---\n").is_err());
    }

    #[test]
    fn data_before_marker_is_rejected() {
        let text = format!("{HEADER}\nrelation r(a: int) key 1\n---\n42\n");
        assert!(load_from_str(&text).is_err());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let text = format!("{HEADER}\nrelation r(a: int, b: int) key 1\n---\n@r\n42\n");
        assert!(matches!(load_from_str(&text), Err(CqaError::ArityMismatch { .. })));
    }

    #[test]
    fn file_roundtrip() {
        let db = sample_db();
        let path = std::env::temp_dir().join("cqa_io_test.db");
        dump_to_file(&db, &path).unwrap();
        let loaded = load_from_file(&path).unwrap();
        assert_eq!(loaded.fact_count(), db.fact_count());
        std::fs::remove_file(path).ok();
    }
}
