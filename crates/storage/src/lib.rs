#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The relational substrate of the `cqa` workspace.
//!
//! The paper stores its test databases in PostgreSQL and feeds the
//! approximation schemes through a SQL rewriting (`Q^rew`, Appendix C) that
//! attaches `(rid, bid, tid, kcnt)` metadata to every fact via window
//! functions. This crate is the replacement substrate: a compact in-memory
//! relational engine that provides
//!
//! * dictionary-encoded values ([`value`], [`interner`]),
//! * schemas with primary keys (always a prefix of the columns, matching
//!   the paper's w.l.o.g. assumption `key(R) = {1,…,m}`) and foreign keys
//!   ([`schema`]),
//! * set-semantics fact tables ([`table`]),
//! * the database type with lazily-built hash indices and key-equal
//!   **block** metadata — the exact `bid`/`tid`/`kcnt` triple the paper's
//!   `Q^rew` view computes with `dense_rank`/`row_number`/`count`
//!   ([`database`], [`block`]),
//! * consistency checking w.r.t. the primary keys ([`consistency`]).

pub mod block;
pub mod consistency;
pub mod database;
pub mod ddl;
pub mod interner;
pub mod io;
pub mod schema;
pub mod table;
pub mod value;

pub use block::RelationBlocks;
pub use consistency::{is_consistent, violations, Violation};
pub use database::{Database, FactRef, PosIndex};
pub use ddl::{parse_schema, schema_to_ddl};
pub use interner::Interner;
pub use io::{dump_to_file, dump_to_string, load_from_file, load_from_str};
pub use schema::{ColumnDef, ColumnType, ForeignKey, RelId, RelationDef, Schema, SchemaBuilder};
pub use table::Table;
pub use value::{Datum, StrId, Value};
