//! A tiny textual DDL for schemas.
//!
//! ```text
//! relation employee(id: int, name: str, dept: str) key 1
//! relation dept(dname: str, floor: int) key 1
//! fk employee(dept) -> dept(dname)
//! ```
//!
//! `key m` declares the primary key as the first `m` columns (the paper's
//! `key(R) = {1..m}` convention); omitting it declares no key. Blank lines
//! and `#` comments are ignored. Used by the database dump format and the
//! CLI.

use crate::schema::{ColumnType, Schema, SchemaBuilder};
use cqa_common::{CqaError, Result};

fn parse_cols(spec: &str, line_no: usize) -> Result<Vec<(String, ColumnType)>> {
    let mut cols = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, ty) = part.split_once(':').ok_or_else(|| {
            CqaError::Parse(format!("line {line_no}: column '{part}' needs 'name: type'"))
        })?;
        let ty = match ty.trim() {
            "int" => ColumnType::Int,
            "str" => ColumnType::Str,
            other => {
                return Err(CqaError::Parse(format!(
                    "line {line_no}: unknown type '{other}' (expected int or str)"
                )))
            }
        };
        cols.push((name.trim().to_owned(), ty));
    }
    if cols.is_empty() {
        return Err(CqaError::Parse(format!("line {line_no}: relation needs columns")));
    }
    Ok(cols)
}

fn split_rel_spec(rest: &str, line_no: usize) -> Result<(String, String, String)> {
    // `name(col-spec) trailer`
    let open = rest.find('(').ok_or_else(|| {
        CqaError::Parse(format!("line {line_no}: expected '(' after relation name"))
    })?;
    let close =
        rest.rfind(')').ok_or_else(|| CqaError::Parse(format!("line {line_no}: missing ')'")))?;
    if close < open {
        return Err(CqaError::Parse(format!("line {line_no}: mismatched parentheses")));
    }
    let name = rest[..open].trim().to_owned();
    let inner = rest[open + 1..close].to_owned();
    let trailer = rest[close + 1..].trim().to_owned();
    if name.is_empty() {
        return Err(CqaError::Parse(format!("line {line_no}: missing relation name")));
    }
    Ok((name, inner, trailer))
}

/// Parses a schema from DDL text.
pub fn parse_schema(text: &str) -> Result<Schema> {
    let mut builder: SchemaBuilder = Schema::builder();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("relation ") {
            let (name, inner, trailer) = split_rel_spec(rest, line_no)?;
            let cols = parse_cols(&inner, line_no)?;
            let key_len = if trailer.is_empty() {
                None
            } else if let Some(m) = trailer.strip_prefix("key") {
                let m: usize = m.trim().parse().map_err(|_| {
                    CqaError::Parse(format!("line {line_no}: bad key length '{}'", m.trim()))
                })?;
                if m == 0 || m > cols.len() {
                    return Err(CqaError::Parse(format!(
                        "line {line_no}: key length {m} out of range 1..={}",
                        cols.len()
                    )));
                }
                Some(m)
            } else {
                return Err(CqaError::Parse(format!(
                    "line {line_no}: unexpected trailer '{trailer}'"
                )));
            };
            let col_refs: Vec<(&str, ColumnType)> =
                cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            builder = builder.relation(&name, &col_refs, key_len);
        } else if let Some(rest) = line.strip_prefix("fk ") {
            let (from_part, to_part) = rest
                .split_once("->")
                .ok_or_else(|| CqaError::Parse(format!("line {line_no}: fk needs '->'")))?;
            let parse_side = |side: &str| -> Result<(String, Vec<String>)> {
                let (name, inner, trailer) = split_rel_spec(side.trim(), line_no)?;
                if !trailer.is_empty() {
                    return Err(CqaError::Parse(format!(
                        "line {line_no}: unexpected '{trailer}' in fk"
                    )));
                }
                let cols = inner.split(',').map(|c| c.trim().to_owned()).filter(|c| !c.is_empty());
                Ok((name, cols.collect()))
            };
            let (from, from_cols) = parse_side(from_part)?;
            let (to, to_cols) = parse_side(to_part)?;
            if from_cols.len() != to_cols.len() || from_cols.is_empty() {
                return Err(CqaError::Parse(format!(
                    "line {line_no}: fk column lists must be non-empty and equal length"
                )));
            }
            let from_refs: Vec<&str> = from_cols.iter().map(String::as_str).collect();
            let to_refs: Vec<&str> = to_cols.iter().map(String::as_str).collect();
            builder = builder.foreign_key(&from, &from_refs, &to, &to_refs);
        } else {
            return Err(CqaError::Parse(format!("line {line_no}: unrecognized '{line}'")));
        }
    }
    Ok(builder.build())
}

/// Renders a schema back to DDL text (inverse of [`parse_schema`]).
pub fn schema_to_ddl(schema: &Schema) -> String {
    let mut out = String::new();
    for rel in schema.relations() {
        out.push_str(&format!("relation {}(", rel.name));
        for (i, c) in rel.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let ty = match c.ty {
                ColumnType::Int => "int",
                ColumnType::Str => "str",
            };
            out.push_str(&format!("{}: {ty}", c.name));
        }
        out.push(')');
        if let Some(m) = rel.key_len {
            out.push_str(&format!(" key {m}"));
        }
        out.push('\n');
    }
    for rel in schema.relations() {
        for fk in &rel.foreign_keys {
            let target = schema.relation(fk.target);
            let from_cols: Vec<&str> =
                fk.columns.iter().map(|&c| rel.columns[c].name.as_str()).collect();
            let to_cols: Vec<&str> =
                fk.target_columns.iter().map(|&c| target.columns[c].name.as_str()).collect();
            out.push_str(&format!(
                "fk {}({}) -> {}({})\n",
                rel.name,
                from_cols.join(", "),
                target.name,
                to_cols.join(", ")
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DDL: &str = "\
# HR example
relation employee(id: int, name: str, dept: str) key 1
relation dept(dname: str, floor: int) key 1
relation log(msg: str)

fk employee(dept) -> dept(dname)
";

    #[test]
    fn parses_relations_keys_and_fks() {
        let s = parse_schema(DDL).unwrap();
        assert_eq!(s.len(), 3);
        let e = s.relation(s.rel_id("employee").unwrap());
        assert_eq!(e.arity(), 3);
        assert_eq!(e.key_len, Some(1));
        assert_eq!(e.columns[1].name, "name");
        assert_eq!(e.columns[1].ty, ColumnType::Str);
        let l = s.relation(s.rel_id("log").unwrap());
        assert_eq!(l.key_len, None);
        assert_eq!(e.foreign_keys.len(), 1);
        assert_eq!(e.foreign_keys[0].target, s.rel_id("dept").unwrap());
    }

    #[test]
    fn roundtrips_through_ddl_text() {
        let s = parse_schema(DDL).unwrap();
        let text = schema_to_ddl(&s);
        let s2 = parse_schema(&text).unwrap();
        assert_eq!(s.relations(), s2.relations());
    }

    #[test]
    fn composite_keys_and_fks() {
        let ddl = "\
relation part(pk: int, name: str) key 1
relation sup(sk: int, name: str) key 1
relation ps(pk: int, sk: int, qty: int) key 2
fk ps(pk, sk) -> ps(pk, sk)
";
        let s = parse_schema(ddl).unwrap();
        let ps = s.relation(s.rel_id("ps").unwrap());
        assert_eq!(ps.key_len, Some(2));
        assert_eq!(ps.foreign_keys[0].columns, vec![0, 1]);
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        for (ddl, needle) in [
            ("relation r(a int)", "name: type"),
            ("relation r(a: float)", "unknown type"),
            ("relation r(a: int) key 2", "out of range"),
            ("relation r(a: int) nonsense", "trailer"),
            ("blah", "unrecognized"),
            ("relation r(a: int)\nfk r(a) = r(a)", "->"),
            ("relation r()", "columns"),
        ] {
            let err = parse_schema(ddl).unwrap_err().to_string();
            assert!(err.contains(needle), "expected '{needle}' in '{err}' for {ddl:?}");
        }
    }
}
