//! A string dictionary mapping strings to dense 32-bit ids and back.

use crate::value::StrId;
use std::collections::HashMap;

/// Bidirectional string dictionary. One per [`crate::Database`].
#[derive(Debug, Clone, Default)]
pub struct Interner {
    by_str: HashMap<Box<str>, StrId>,
    by_id: Vec<Box<str>>,
}

impl Interner {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its id (existing or fresh).
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(&id) = self.by_str.get(s) {
            return id;
        }
        let id = StrId(u32::try_from(self.by_id.len()).expect("interner overflow"));
        let boxed: Box<str> = s.into();
        self.by_id.push(boxed.clone());
        self.by_str.insert(boxed, id);
        id
    }

    /// Looks up the id of an already-interned string.
    pub fn get(&self, s: &str) -> Option<StrId> {
        self.by_str.get(s).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this interner.
    pub fn resolve(&self, id: StrId) -> &str {
        &self.by_id[id.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("HR");
        let b = i.intern("HR");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern("HR");
        let b = i.intern("IT");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "HR");
        assert_eq!(i.resolve(b), "IT");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("missing").is_none());
        assert!(i.is_empty());
        i.intern("x");
        assert!(i.get("x").is_some());
    }

    #[test]
    fn ids_are_dense_and_ordered_by_insertion() {
        let mut i = Interner::new();
        for k in 0..100 {
            let id = i.intern(&format!("s{k}"));
            assert_eq!(id.0, k);
        }
    }
}
