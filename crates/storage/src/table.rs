//! Set-semantics fact tables.
//!
//! A table stores its rows in one flat `Vec<Datum>` (row-major) plus a
//! hash-based row set for O(1) duplicate detection, because a database is a
//! *set* of facts (§2). Row indices are stable: rows are append-only.

use crate::value::Datum;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A single relation's facts.
#[derive(Debug, Clone, Default)]
pub struct Table {
    arity: usize,
    data: Vec<Datum>,
    /// Row hash → rows with that hash (collision chain).
    row_set: HashMap<u64, Vec<u32>>,
}

fn hash_row(row: &[Datum]) -> u64 {
    let mut h = DefaultHasher::new();
    row.hash(&mut h);
    h.finish()
}

impl Table {
    /// An empty table of the given arity.
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0, "zero-arity relations are not supported");
        Table { arity, data: Vec::new(), row_set: HashMap::new() }
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.arity
    }

    /// True when the table has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The `i`-th row.
    #[inline]
    pub fn row(&self, i: u32) -> &[Datum] {
        let start = i as usize * self.arity;
        &self.data[start..start + self.arity]
    }

    /// True when the table already contains `row`.
    pub fn contains(&self, row: &[Datum]) -> bool {
        self.find(row).is_some()
    }

    /// The index of `row`, if present.
    pub fn find(&self, row: &[Datum]) -> Option<u32> {
        debug_assert_eq!(row.len(), self.arity);
        self.row_set.get(&hash_row(row))?.iter().copied().find(|&i| self.row(i) == row)
    }

    /// Inserts a row; returns its index, or `None` if it was already
    /// present (set semantics).
    pub fn insert(&mut self, row: &[Datum]) -> Option<u32> {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        let h = hash_row(row);
        if let Some(chain) = self.row_set.get(&h) {
            if chain.iter().any(|&i| self.row(i) == row) {
                return None;
            }
        }
        let idx = self.len() as u32;
        self.data.extend_from_slice(row);
        self.row_set.entry(h).or_default().push(idx);
        Some(idx)
    }

    /// Iterates `(row_index, row)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[Datum])> {
        self.data.chunks_exact(self.arity).enumerate().map(|(i, r)| (i as u32, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Vec<Datum> {
        vals.iter().map(|&v| Datum::Int(v)).collect()
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = Table::new(3);
        let r0 = t.insert(&row(&[1, 2, 3])).unwrap();
        let r1 = t.insert(&row(&[4, 5, 6])).unwrap();
        assert_eq!(r0, 0);
        assert_eq!(r1, 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(0), row(&[1, 2, 3]).as_slice());
        assert_eq!(t.row(1), row(&[4, 5, 6]).as_slice());
    }

    #[test]
    fn set_semantics_reject_duplicates() {
        let mut t = Table::new(2);
        assert!(t.insert(&row(&[1, 1])).is_some());
        assert!(t.insert(&row(&[1, 1])).is_none());
        assert_eq!(t.len(), 1);
        assert!(t.contains(&row(&[1, 1])));
        assert!(!t.contains(&row(&[1, 2])));
    }

    #[test]
    fn find_returns_index() {
        let mut t = Table::new(1);
        for i in 0..100 {
            t.insert(&row(&[i]));
        }
        assert_eq!(t.find(&row(&[42])), Some(42));
        assert_eq!(t.find(&row(&[1000])), None);
    }

    #[test]
    fn iter_yields_all_rows_in_order() {
        let mut t = Table::new(2);
        t.insert(&row(&[1, 2]));
        t.insert(&row(&[3, 4]));
        let collected: Vec<_> = t.iter().map(|(i, r)| (i, r.to_vec())).collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0], (0, row(&[1, 2])));
        assert_eq!(collected[1], (1, row(&[3, 4])));
    }

    #[test]
    #[should_panic]
    fn wrong_arity_insert_panics() {
        let mut t = Table::new(2);
        t.insert(&row(&[1]));
    }
}
