//! Key-equal blocks.
//!
//! For a relation `R` with `key(R) = {1..m}`, the facts sharing a key value
//! form a *block* (§2); a repair keeps exactly one fact per block. This
//! module computes, for every row, the `(bid, tid, kcnt)` triple that the
//! paper's SQL rewriting produces with
//! `dense_rank() OVER (ORDER BY key)`,
//! `row_number() OVER (PARTITION BY key ORDER BY non-key)`, and
//! `count(*) OVER (PARTITION BY key)` (Appendix C). `tid` is 0-based here.

use crate::table::Table;
use crate::value::Datum;

/// Block metadata for one relation.
#[derive(Debug, Clone)]
pub struct RelationBlocks {
    /// Per row: `(bid, tid)`.
    row_block: Vec<(u32, u32)>,
    /// Per block: its rows, ordered by `tid`.
    blocks: Vec<Vec<u32>>,
}

impl RelationBlocks {
    /// Computes the blocks of `table` under a key of length `key_len`
    /// (`None` = no key constraint = singleton blocks).
    pub fn compute(table: &Table, key_len: Option<usize>) -> Self {
        let n = table.len();
        match key_len {
            None => {
                // Every fact is its own block (keyΣ(α) is the whole tuple).
                let row_block = (0..n as u32).map(|i| (i, 0)).collect();
                let blocks = (0..n as u32).map(|i| vec![i]).collect();
                RelationBlocks { row_block, blocks }
            }
            Some(m) => {
                debug_assert!(m >= 1 && m <= table.arity());
                // Sort row indices by (key, non-key): groups key-equal rows
                // together (dense_rank) and orders within each group by the
                // non-key suffix (row_number ORDER BY non-key).
                let mut order: Vec<u32> = (0..n as u32).collect();
                order.sort_unstable_by(|&a, &b| table.row(a).cmp(table.row(b)));
                let mut row_block = vec![(0u32, 0u32); n];
                let mut blocks: Vec<Vec<u32>> = Vec::new();
                let mut prev_key: Option<&[Datum]> = None;
                for &row in &order {
                    let key = &table.row(row)[..m];
                    let same = prev_key.is_some_and(|p| p == key);
                    if !same {
                        blocks.push(Vec::new());
                        prev_key = Some(key);
                    }
                    let bid = (blocks.len() - 1) as u32;
                    // cqa-lint: allow(no-panic-in-request-path): the first iteration always pushes (prev_key is None), so `blocks` is non-empty here
                    let block = blocks.last_mut().expect("just pushed");
                    let tid = block.len() as u32;
                    block.push(row);
                    row_block[row as usize] = (bid, tid);
                }
                RelationBlocks { row_block, blocks }
            }
        }
    }

    /// `(bid, tid)` of a row.
    #[inline]
    pub fn of_row(&self, row: u32) -> (u32, u32) {
        self.row_block[row as usize]
    }

    /// The `bid` of a row.
    #[inline]
    pub fn bid(&self, row: u32) -> u32 {
        self.row_block[row as usize].0
    }

    /// Number of blocks.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The rows of block `bid`, ordered by `tid`.
    #[inline]
    pub fn block_rows(&self, bid: u32) -> &[u32] {
        &self.blocks[bid as usize]
    }

    /// Size (`kcnt`) of block `bid`.
    #[inline]
    pub fn block_size(&self, bid: u32) -> u32 {
        self.blocks[bid as usize].len() as u32
    }

    /// `kcnt` of the block containing `row`.
    #[inline]
    pub fn kcnt(&self, row: u32) -> u32 {
        self.block_size(self.bid(row))
    }

    /// Iterates all blocks as `(bid, rows)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32])> {
        self.blocks.iter().enumerate().map(|(i, rows)| (i as u32, rows.as_slice()))
    }

    /// Number of non-singleton blocks — the blocks that actually carry
    /// uncertainty; singleton blocks contribute a factor 1 to `|rep(D,Σ)|`.
    pub fn non_singleton_count(&self) -> usize {
        self.blocks.iter().filter(|b| b.len() > 1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::StrId;

    /// The running example of the paper (Example 1.1): Employee(id,name,dept)
    /// with key {id} and facts (1,Bob,HR) (1,Bob,IT) (2,Alice,IT) (2,Tim,IT).
    fn example_1_1() -> Table {
        let mut t = Table::new(3);
        // Strings interned by hand: Bob=0, HR=1, IT=2, Alice=3, Tim=4.
        let s = |i: u32| Datum::Str(StrId(i));
        t.insert(&[Datum::Int(1), s(0), s(1)]).unwrap();
        t.insert(&[Datum::Int(1), s(0), s(2)]).unwrap();
        t.insert(&[Datum::Int(2), s(3), s(2)]).unwrap();
        t.insert(&[Datum::Int(2), s(4), s(2)]).unwrap();
        t
    }

    #[test]
    fn example_1_1_has_two_blocks_of_two() {
        let t = example_1_1();
        let b = RelationBlocks::compute(&t, Some(1));
        assert_eq!(b.block_count(), 2);
        assert_eq!(b.block_size(0), 2);
        assert_eq!(b.block_size(1), 2);
        assert_eq!(b.non_singleton_count(), 2);
        // Rows 0,1 share key 1; rows 2,3 share key 2.
        assert_eq!(b.bid(0), b.bid(1));
        assert_eq!(b.bid(2), b.bid(3));
        assert_ne!(b.bid(0), b.bid(2));
        // tids are distinct within a block.
        assert_ne!(b.of_row(0).1, b.of_row(1).1);
    }

    #[test]
    fn kcnt_matches_block_size() {
        let t = example_1_1();
        let b = RelationBlocks::compute(&t, Some(1));
        for row in 0..4 {
            assert_eq!(b.kcnt(row), 2);
        }
    }

    #[test]
    fn keyless_relation_has_singleton_blocks() {
        let t = example_1_1();
        let b = RelationBlocks::compute(&t, None);
        assert_eq!(b.block_count(), 4);
        for bid in 0..4 {
            assert_eq!(b.block_size(bid), 1);
        }
        assert_eq!(b.non_singleton_count(), 0);
    }

    #[test]
    fn full_tuple_key_gives_singleton_blocks() {
        // With key = all columns, distinct facts never share a key.
        let t = example_1_1();
        let b = RelationBlocks::compute(&t, Some(3));
        assert_eq!(b.block_count(), 4);
    }

    #[test]
    fn block_rows_are_consistent_with_row_block() {
        let t = example_1_1();
        let b = RelationBlocks::compute(&t, Some(1));
        for (bid, rows) in b.iter() {
            for (tid, &row) in rows.iter().enumerate() {
                assert_eq!(b.of_row(row), (bid, tid as u32));
            }
        }
    }

    #[test]
    fn composite_key_groups_by_prefix() {
        let mut t = Table::new(3);
        t.insert(&[Datum::Int(1), Datum::Int(1), Datum::Int(10)]);
        t.insert(&[Datum::Int(1), Datum::Int(1), Datum::Int(20)]);
        t.insert(&[Datum::Int(1), Datum::Int(2), Datum::Int(30)]);
        let b = RelationBlocks::compute(&t, Some(2));
        assert_eq!(b.block_count(), 2);
        assert_eq!(b.block_size(b.bid(0)), 2);
        assert_eq!(b.block_size(b.bid(2)), 1);
    }

    #[test]
    fn empty_table_has_no_blocks() {
        let t = Table::new(2);
        let b = RelationBlocks::compute(&t, Some(1));
        assert_eq!(b.block_count(), 0);
    }
}
