//! Schemas: relations with typed columns, primary keys, and foreign keys.
//!
//! Following the paper's w.l.o.g. assumption (§2), every primary key is a
//! *prefix* of the column list: `key(R) = {1, …, m}`. A relation may also
//! have no key at all, in which case each fact is its own block (the
//! `keyΣ(α) = ⟨R, c₁…cₙ⟩` case of the paper). Foreign keys carry no
//! integrity semantics here — they drive the *static query generator*'s
//! notion of joinable attribute pairs (Appendix D).

use cqa_common::{CqaError, Result};
use std::collections::HashMap;
use std::fmt;

/// Dense id of a relation inside a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integers (also dates and money, encoded).
    Int,
    /// Dictionary-encoded strings.
    Str,
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name, unique within its relation.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// A foreign key: `columns` of this relation reference `target_columns`
/// of `target`. Used by the query generators to find joinable attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column positions (0-based).
    pub columns: Vec<usize>,
    /// The referenced relation.
    pub target: RelId,
    /// Referenced column positions (0-based), same length as `columns`.
    pub target_columns: Vec<usize>,
}

/// A relation definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDef {
    /// Relation name, unique within the schema.
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<ColumnDef>,
    /// `Some(m)`: the primary key is the first `m` columns (1 ≤ m ≤ arity).
    /// `None`: no key constraint; every fact is its own block.
    pub key_len: Option<usize>,
    /// Foreign keys out of this relation.
    pub foreign_keys: Vec<ForeignKey>,
}

impl RelationDef {
    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a column by name.
    pub fn column_pos(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// True when position `pos` is part of the primary key.
    pub fn is_key_position(&self, pos: usize) -> bool {
        match self.key_len {
            Some(m) => pos < m,
            None => false,
        }
    }
}

/// A relational schema: a set of relation definitions addressable by name.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    relations: Vec<RelationDef>,
    by_name: HashMap<String, RelId>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// All relations in definition order.
    pub fn relations(&self) -> &[RelationDef] {
        &self.relations
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The definition of a relation.
    pub fn relation(&self, rel: RelId) -> &RelationDef {
        &self.relations[rel.idx()]
    }

    /// Looks up a relation by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a relation by name, failing with a descriptive error.
    pub fn require(&self, name: &str) -> Result<RelId> {
        self.rel_id(name).ok_or_else(|| CqaError::UnknownName(name.to_owned()))
    }

    /// Iterates `(RelId, &RelationDef)`.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationDef)> {
        self.relations.iter().enumerate().map(|(i, r)| (RelId(i as u32), r))
    }

    /// All joinable attribute pairs `((R, k), (P, ℓ))` induced by the
    /// foreign keys, in both directions. This is the joinability relation
    /// the static query generator samples from (Appendix D).
    pub fn joinable_pairs(&self) -> Vec<((RelId, usize), (RelId, usize))> {
        let mut out = Vec::new();
        for (rid, rel) in self.iter() {
            for fk in &rel.foreign_keys {
                for (&c, &tc) in fk.columns.iter().zip(&fk.target_columns) {
                    out.push(((rid, c), (fk.target, tc)));
                    out.push(((fk.target, tc), (rid, c)));
                }
            }
        }
        out
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in &self.relations {
            write!(f, "{}(", rel.name)?;
            for (i, c) in rel.columns.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                let key_mark = if rel.is_key_position(i) { "*" } else { "" };
                let ty = match c.ty {
                    ColumnType::Int => "int",
                    ColumnType::Str => "str",
                };
                write!(f, "{key_mark}{}: {ty}", c.name)?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

/// Incremental [`Schema`] construction with validation.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    relations: Vec<RelationDef>,
    by_name: HashMap<String, RelId>,
    pending_fks: Vec<(usize, Vec<String>, String, Vec<String>)>,
}

impl SchemaBuilder {
    /// Adds a relation. `key_len = Some(m)` declares `key(R) = {1..m}`.
    ///
    /// Columns are `(name, type)` pairs; the key columns must come first,
    /// per the paper's convention.
    pub fn relation(
        mut self,
        name: &str,
        columns: &[(&str, ColumnType)],
        key_len: Option<usize>,
    ) -> Self {
        assert!(!columns.is_empty(), "relation {name} needs at least one column");
        if let Some(m) = key_len {
            assert!(
                m >= 1 && m <= columns.len(),
                "key length {m} invalid for arity {} of {name}",
                columns.len()
            );
        }
        assert!(!self.by_name.contains_key(name), "duplicate relation {name}");
        let id = RelId(self.relations.len() as u32);
        self.by_name.insert(name.to_owned(), id);
        self.relations.push(RelationDef {
            name: name.to_owned(),
            columns: columns
                .iter()
                .map(|(n, t)| ColumnDef { name: (*n).to_owned(), ty: *t })
                .collect(),
            key_len,
            foreign_keys: Vec::new(),
        });
        self
    }

    /// Declares a foreign key by column names. Resolved at [`Self::build`].
    pub fn foreign_key(mut self, from: &str, cols: &[&str], to: &str, to_cols: &[&str]) -> Self {
        assert_eq!(cols.len(), to_cols.len(), "FK column count mismatch");
        let from_idx = self
            .by_name
            .get(from)
            .unwrap_or_else(|| panic!("FK source relation {from} not declared yet"))
            .idx();
        self.pending_fks.push((
            from_idx,
            cols.iter().map(|s| (*s).to_owned()).collect(),
            to.to_owned(),
            to_cols.iter().map(|s| (*s).to_owned()).collect(),
        ));
        self
    }

    /// Finalizes the schema, resolving foreign keys.
    pub fn build(mut self) -> Schema {
        for (from_idx, cols, to, to_cols) in std::mem::take(&mut self.pending_fks) {
            let target = *self
                .by_name
                .get(&to)
                .unwrap_or_else(|| panic!("FK target relation {to} not declared"));
            let resolve = |rel: &RelationDef, names: &[String]| -> Vec<usize> {
                names
                    .iter()
                    .map(|n| {
                        rel.column_pos(n)
                            .unwrap_or_else(|| panic!("FK column {n} missing in {}", rel.name))
                    })
                    .collect()
            };
            let columns = resolve(&self.relations[from_idx], &cols);
            let target_columns = resolve(&self.relations[target.idx()], &to_cols);
            for (&c, &tc) in columns.iter().zip(&target_columns) {
                let a = self.relations[from_idx].columns[c].ty;
                let b = self.relations[target.idx()].columns[tc].ty;
                assert_eq!(a, b, "FK column type mismatch");
            }
            self.relations[from_idx].foreign_keys.push(ForeignKey {
                columns,
                target,
                target_columns,
            });
        }
        Schema { relations: self.relations, by_name: self.by_name }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employee_schema() -> Schema {
        Schema::builder()
            .relation(
                "employee",
                &[("id", ColumnType::Int), ("name", ColumnType::Str), ("dept", ColumnType::Str)],
                Some(1),
            )
            .relation("dept", &[("dname", ColumnType::Str), ("floor", ColumnType::Int)], Some(1))
            .foreign_key("employee", &["dept"], "dept", &["dname"])
            .build()
    }

    #[test]
    fn lookup_by_name() {
        let s = employee_schema();
        let e = s.rel_id("employee").unwrap();
        assert_eq!(s.relation(e).name, "employee");
        assert_eq!(s.relation(e).arity(), 3);
        assert!(s.rel_id("nope").is_none());
        assert!(s.require("nope").is_err());
    }

    #[test]
    fn key_prefix_semantics() {
        let s = employee_schema();
        let e = s.rel_id("employee").unwrap();
        let rel = s.relation(e);
        assert!(rel.is_key_position(0));
        assert!(!rel.is_key_position(1));
        assert!(!rel.is_key_position(2));
    }

    #[test]
    fn keyless_relation_has_no_key_positions() {
        let s = Schema::builder().relation("r", &[("a", ColumnType::Int)], None).build();
        let r = s.rel_id("r").unwrap();
        assert!(!s.relation(r).is_key_position(0));
    }

    #[test]
    fn joinable_pairs_are_symmetric() {
        let s = employee_schema();
        let e = s.rel_id("employee").unwrap();
        let d = s.rel_id("dept").unwrap();
        let pairs = s.joinable_pairs();
        assert!(pairs.contains(&((e, 2), (d, 0))));
        assert!(pairs.contains(&((d, 0), (e, 2))));
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn display_marks_key_columns() {
        let s = employee_schema();
        let text = s.to_string();
        assert!(text.contains("*id"));
        assert!(text.contains("name: str"));
    }

    #[test]
    #[should_panic]
    fn duplicate_relation_panics() {
        let _ = Schema::builder()
            .relation("r", &[("a", ColumnType::Int)], Some(1))
            .relation("r", &[("b", ColumnType::Int)], Some(1))
            .build();
    }

    #[test]
    #[should_panic]
    fn oversized_key_panics() {
        let _ = Schema::builder().relation("r", &[("a", ColumnType::Int)], Some(2)).build();
    }
}
