//! Property test: random schemas round-trip through the DDL text format,
//! and random databases round-trip through the dump format.

use cqa_storage::{
    dump_to_string, load_from_str, parse_schema, schema_to_ddl, ColumnType, Database, Schema, Value,
};
use proptest::prelude::*;

fn ident(prefix: &str, i: usize) -> String {
    format!("{prefix}{i}")
}

/// Strategy: a random schema with 1–4 relations, 1–5 typed columns each,
/// optional prefix keys, and FKs between type-compatible columns.
fn schema_strategy() -> impl Strategy<Value = Schema> {
    let relation = prop::collection::vec(prop::bool::ANY, 1..=5) // column types
        .prop_flat_map(|types| {
            let arity = types.len();
            (Just(types), prop::option::of(1..=arity))
        });
    prop::collection::vec(relation, 1..=4).prop_map(|rels| {
        let mut b = Schema::builder();
        for (ri, (types, key)) in rels.iter().enumerate() {
            let cols: Vec<(String, ColumnType)> = types
                .iter()
                .enumerate()
                .map(|(ci, &is_int)| {
                    (ident("c", ci), if is_int { ColumnType::Int } else { ColumnType::Str })
                })
                .collect();
            let col_refs: Vec<(&str, ColumnType)> =
                cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            b = b.relation(&ident("rel", ri), &col_refs, *key);
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schemas_roundtrip_through_ddl(schema in schema_strategy()) {
        let text = schema_to_ddl(&schema);
        let parsed = parse_schema(&text).expect("generated DDL parses");
        prop_assert_eq!(schema.relations(), parsed.relations());
    }

    #[test]
    fn databases_roundtrip_through_dumps(
        schema in schema_strategy(),
        rows in prop::collection::vec(prop::collection::vec(0i64..5, 5), 0..20),
        strings in prop::collection::vec("[a-z\\t\\\\]{0,6}", 8),
    ) {
        let mut db = Database::new(schema);
        for row in rows {
            // Insert into relation 0, coercing values to column types.
            let rel = cqa_storage::RelId(0);
            let def = db.schema().relation(rel);
            let values: Vec<Value> = def
                .columns
                .iter()
                .zip(&row)
                .map(|(c, &v)| match c.ty {
                    ColumnType::Int => Value::Int(v),
                    ColumnType::Str => {
                        Value::str(strings[(v.unsigned_abs() as usize) % strings.len()].clone())
                    }
                })
                .collect();
            db.insert(rel, &values).expect("typed insert");
        }
        let dump = dump_to_string(&db);
        let loaded = load_from_str(&dump).expect("dump loads");
        prop_assert_eq!(loaded.fact_count(), db.fact_count());
        prop_assert_eq!(loaded.schema().relations(), db.schema().relations());
        // Block structure (and hence the repair count) survives.
        prop_assert!((loaded.repair_count().ln() - db.repair_count().ln()).abs() < 1e-9);
    }
}
