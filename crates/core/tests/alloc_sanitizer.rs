//! Runtime cross-check of cqa-lint's `no-alloc-in-hot-path` rule.
//!
//! The static rule proves "no allocation is *reachable* from the marked
//! sampling regions" on a conservative call graph; this harness proves the
//! dynamic counterpart: a counting `#[global_allocator]` wraps the system
//! allocator, and every scheme's per-sample work must register **zero**
//! heap operations. The two checks fail together when someone puts a
//! `Vec::push` back into a sampler loop — the lint at `cargo run -p
//! cqa-lint -- check`, this test at `cargo test`.
//!
//! The counter is thread-local so the harness stays exact while the rest
//! of the test binary runs on sibling threads.

use cqa_common::Mt64;
use cqa_core::convergence;
use cqa_core::coverage::self_adjusting_coverage;
use cqa_core::sampler::{KlSampler, KlmSampler, NaturalSampler, Sampler};
use cqa_core::scheme::Budget;
use cqa_synopsis::AdmissiblePair;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Forwards to [`System`], counting every heap operation that can acquire
/// memory on the current thread.
struct CountingAlloc;

thread_local! {
    static HEAP_OPS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates verbatim to the system allocator; the bookkeeping is a
// thread-local counter bump, which itself performs no heap operations
// (const-initialized Cell<u64>, no destructor).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_OPS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_OPS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        HEAP_OPS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Heap operations performed by `f` on this thread.
fn heap_ops_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = HEAP_OPS.with(Cell::get);
    let value = f();
    let after = HEAP_OPS.with(Cell::get);
    (after - before, value)
}

const SAMPLES: usize = 2_048; // ≥ 10³ per the acceptance bar

fn overlap_pair() -> AdmissiblePair {
    AdmissiblePair::new(
        vec![vec![(0, 0)], vec![(0, 0), (1, 1)], vec![(1, 1), (2, 2)], vec![(2, 0)]],
        vec![2, 3, 4],
    )
    .unwrap()
}

/// Drives `SAMPLES` draws after one warm-up call and asserts the loop as a
/// whole touched the heap zero times (stronger than zero *per* sample).
/// The loop also exercises the full convergence-telemetry surface —
/// [`convergence::tick_sample`] per draw plus one terminal
/// [`convergence::export_estimate`] and [`convergence::snapshot`] — so exporting
/// estimator-quality counters is proven to add zero heap operations.
fn assert_sampling_is_alloc_free<S: Sampler>(mut sampler: S, seed: u64) {
    let mut rng = Mt64::new(seed);
    // Warm-up: constructor-adjacent laziness (alias tables, scratch
    // buffers) must not be billed to the steady-state loop. `reset` also
    // touches the convergence thread-locals once outside the window.
    let _ = sampler.sample(&mut rng);
    convergence::reset();
    let (ops, conv) = heap_ops_during(|| {
        let mut acc = 0.0f64;
        let mut sq = 0.0f64;
        for _ in 0..SAMPLES {
            let z = sampler.sample(&mut rng);
            convergence::tick_sample();
            acc += z;
            sq += z * z;
        }
        let n = SAMPLES as f64;
        let mean = acc / n;
        let variance = (sq / n - mean * mean).max(0.0);
        convergence::export_estimate(variance, (variance / n).sqrt());
        convergence::snapshot()
    });
    assert_eq!(
        ops,
        0,
        "{}: {ops} heap op(s) over {SAMPLES} samples — the per-sample loop (convergence \
         telemetry included) must not allocate",
        sampler.name()
    );
    assert_eq!(conv.samples, SAMPLES as u64, "every draw must be counted");
}

#[test]
fn natural_sampler_is_alloc_free_per_sample() {
    let pair = overlap_pair();
    assert_sampling_is_alloc_free(NaturalSampler::new(&pair), 101);
}

#[test]
fn kl_sampler_is_alloc_free_per_sample() {
    let pair = overlap_pair();
    assert_sampling_is_alloc_free(KlSampler::new(&pair), 102);
}

#[test]
fn klm_sampler_is_alloc_free_per_sample() {
    let pair = overlap_pair();
    assert_sampling_is_alloc_free(KlmSampler::new(&pair), 103);
}

/// The coverage scheme owns its loop (no public per-sample hook), so it is
/// measured differentially: a run with a ~4× larger step budget must cost
/// exactly as many heap operations as a small run — i.e. the inner loop
/// contributes zero and all allocation is one-time setup.
#[test]
fn coverage_allocations_do_not_scale_with_steps() {
    let pair = overlap_pair();
    let budget = Budget::unbounded();
    // Warm-up run: name interning and other first-use laziness.
    let mut rng = Mt64::new(104);
    self_adjusting_coverage(&pair, 0.2, 0.25, &budget, &mut rng).unwrap();

    let mut rng_small = Mt64::new(105);
    let (small_ops, small) = heap_ops_during(|| {
        self_adjusting_coverage(&pair, 0.2, 0.25, &budget, &mut rng_small).unwrap()
    });
    let mut rng_big = Mt64::new(106);
    let (big_ops, big) = heap_ops_during(|| {
        self_adjusting_coverage(&pair, 0.08, 0.25, &budget, &mut rng_big).unwrap()
    });
    assert!(
        big.steps >= 4 * small.steps,
        "budgets too close to discriminate: {} vs {} steps",
        big.steps,
        small.steps
    );
    assert_eq!(
        small_ops, big_ops,
        "coverage heap ops scale with the step count ({small_ops} at {} steps vs {big_ops} at {} \
         steps) — the sampling loop allocates",
        small.steps, big.steps
    );
}
