//! End-to-end validation: `ApxCQA[scheme]` against brute-force repair
//! enumeration, for all four schemes, on databases small enough that the
//! exact relative frequencies are computable.

use cqa_common::Mt64;
use cqa_core::{apx_cqa, Budget, ALL_SCHEMES};
use cqa_query::parse;
use cqa_repair::consistent_answers_exact;
use cqa_storage::ColumnType::*;
use cqa_storage::{Database, Schema, Value};

fn check_all_schemes(db: &Database, text: &str, seed: u64) {
    let q = parse(db.schema(), text).unwrap();
    let exact = consistent_answers_exact(db, &q, 5_000_000).unwrap();
    for (k, scheme) in ALL_SCHEMES.into_iter().enumerate() {
        let mut rng = Mt64::new(seed * 10 + k as u64);
        let res = apx_cqa(db, &q, scheme, 0.1, 0.25, &Budget::unbounded(), &mut rng)
            .unwrap_or_else(|e| panic!("{scheme} failed on {text}: {e}"));
        assert_eq!(
            res.answers.len(),
            exact.len(),
            "{scheme} returned {} answers, exact has {} for {text}",
            res.answers.len(),
            exact.len()
        );
        for te in &res.answers {
            let (_, f) = exact
                .iter()
                .find(|(t, _)| *t == te.tuple)
                .unwrap_or_else(|| panic!("{scheme} produced unexpected tuple for {text}"));
            // ε = 0.1 at 75% confidence; allow a 2× slack per tuple so a
            // single unlucky estimate does not flake the suite.
            assert!(
                (te.frequency - f).abs() <= 0.2 * f + 1e-9,
                "{scheme} on {text}: tuple {:?} estimated {} vs exact {f}",
                te.tuple,
                te.frequency
            );
        }
    }
}

fn hr_database() -> Database {
    let schema = Schema::builder()
        .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
        .relation("dept", &[("dname", Str), ("floor", Int)], Some(1))
        .build();
    let mut db = Database::new(schema);
    for (id, name, dept) in [
        (1, "Bob", "HR"),
        (1, "Bob", "IT"),
        (2, "Alice", "IT"),
        (2, "Tim", "IT"),
        (3, "Eve", "HR"),
        (3, "Eve", "Sales"),
        (4, "Dan", "Sales"),
    ] {
        db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)]).unwrap();
    }
    for (dname, floor) in [("HR", 1), ("HR", 3), ("IT", 2), ("Sales", 2)] {
        db.insert_named("dept", &[Value::str(dname), Value::Int(floor)]).unwrap();
    }
    db
}

#[test]
fn boolean_query_matches_ground_truth() {
    let db = hr_database();
    check_all_schemes(&db, "Q() :- employee(1, n1, d), employee(2, n2, d)", 1);
}

#[test]
fn unary_query_matches_ground_truth() {
    let db = hr_database();
    check_all_schemes(&db, "Q(d) :- employee(x, n, d)", 2);
}

#[test]
fn join_query_matches_ground_truth() {
    let db = hr_database();
    check_all_schemes(&db, "Q(n, f) :- employee(x, n, d), dept(d, f)", 3);
}

#[test]
fn constant_query_matches_ground_truth() {
    let db = hr_database();
    check_all_schemes(&db, "Q(x) :- employee(x, n, 'Sales')", 4);
}

#[test]
fn random_databases_match_ground_truth() {
    let mut master = Mt64::new(4242);
    for round in 0..6u64 {
        let schema = Schema::builder()
            .relation("r", &[("k", Int), ("a", Int)], Some(1))
            .relation("s", &[("k", Int), ("b", Int)], Some(1))
            .build();
        let mut db = Database::new(schema);
        let mut rng = master.fork();
        for _ in 0..6 {
            db.insert_named(
                "r",
                &[Value::Int(rng.below(3) as i64), Value::Int(rng.below(3) as i64)],
            )
            .unwrap();
            db.insert_named(
                "s",
                &[Value::Int(rng.below(3) as i64), Value::Int(rng.below(3) as i64)],
            )
            .unwrap();
        }
        check_all_schemes(&db, "Q(a) :- r(k, a), s(a, b)", 100 + round);
    }
}
