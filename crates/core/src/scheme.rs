//! The four approximation schemes for `RelativeFreq` (Algorithms 3–5).
//!
//! Each scheme takes an encoded synopsis and `(ε, δ)` and returns an
//! estimate of `R(H, B)`:
//!
//! * [`Scheme::Natural`] — `MonteCarlo[SampleNatural]`; the estimate is the
//!   raw mean (Theorem 4.4).
//! * [`Scheme::Kl`] — `MonteCarlo[SampleKL] · |S•|/|db(B)|` (Theorem 4.6).
//! * [`Scheme::Klm`] — `MonteCarlo[SampleKLM] · |S•|/|db(B)|` (Theorem 4.8).
//! * [`Scheme::Cover`] — `SelfAdjustingCoverage / |db(B)|` (Theorem 4.9).

use crate::coverage::self_adjusting_coverage;
use crate::montecarlo::monte_carlo;
use crate::sampler::{KlSampler, KlmSampler, NaturalSampler, Sampler};
use crate::telemetry;
use cqa_common::{Deadline, Mt64, Result};
use cqa_synopsis::AdmissiblePair;
use std::fmt;

/// A resource budget for one approximation run (the paper's 1-hour timeout
/// per scenario, scaled to our setting).
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Wall-clock deadline.
    pub deadline: Deadline,
    /// Hard cap on the number of samples drawn.
    pub max_samples: u64,
}

impl Budget {
    /// No limits.
    pub fn unbounded() -> Self {
        Budget { deadline: Deadline::none(), max_samples: u64::MAX }
    }

    /// A wall-clock budget of `secs` seconds.
    pub fn with_timeout_secs(secs: f64) -> Self {
        Budget { deadline: Deadline::after_secs(secs), max_samples: u64::MAX }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// The four approximation schemes under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scheme {
    /// Monte Carlo over the natural sampling space (Algorithm 3).
    Natural,
    /// Karp–Luby symbolic-space Monte Carlo (Algorithm 4 with Sampler 2).
    Kl,
    /// Karp–Luby–Madras variation (Algorithm 4 with Sampler 3).
    Klm,
    /// Self-adjusting coverage (Algorithm 5).
    Cover,
}

/// All schemes, in the paper's presentation order.
pub const ALL_SCHEMES: [Scheme; 4] = [Scheme::Natural, Scheme::Kl, Scheme::Klm, Scheme::Cover];

impl Scheme {
    /// The scheme's display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Natural => "Natural",
            Scheme::Kl => "KL",
            Scheme::Klm => "KLM",
            Scheme::Cover => "Cover",
        }
    }

    /// The trace-span name of one `ApxRelativeFreq` run of this scheme.
    pub fn span_name(self) -> &'static str {
        match self {
            Scheme::Natural => "scheme/Natural",
            Scheme::Kl => "scheme/KL",
            Scheme::Klm => "scheme/KLM",
            Scheme::Cover => "scheme/Cover",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Scheme {
    type Err = cqa_common::CqaError;

    /// Parses a scheme name, case-insensitively (CLI flags, wire protocol).
    fn from_str(s: &str) -> Result<Scheme> {
        match s.to_ascii_lowercase().as_str() {
            "natural" => Ok(Scheme::Natural),
            "kl" => Ok(Scheme::Kl),
            "klm" => Ok(Scheme::Klm),
            "cover" => Ok(Scheme::Cover),
            other => Err(cqa_common::CqaError::InvalidParameter(format!(
                "unknown scheme '{other}' (expected natural, kl, klm, or cover)"
            ))),
        }
    }
}

/// Outcome of one `ApxRelativeFreq` run.
#[derive(Debug, Clone, Copy)]
pub struct ApproxOutcome {
    /// The estimate of `R(H, B)`.
    pub estimate: f64,
    /// Samples drawn (Monte-Carlo schemes) or inner steps (Cover).
    pub samples: u64,
    /// The iteration count chosen by the planner (`OptEstimate` or the
    /// deterministic coverage budget).
    pub planned_n: u64,
}

/// `ApxRelativeFreq` on an encoded synopsis: approximates `R(H, B)` within
/// relative error `ε` with probability ≥ 1 − δ.
///
/// The caller is responsible for the `H = ∅` case (where the frequency is
/// 0 and no synopsis exists — Lemma 4.1(4)); admissible pairs are non-empty
/// by construction. Estimates are clamped to `[0, 1]`: the symbolic
/// schemes multiply a sample mean by `|S•|/|db(B)|`, which can nudge the
/// raw value past 1, and since the true ratio is at most 1 the clamp can
/// only reduce the error.
pub fn approx_relative_frequency(
    pair: &AdmissiblePair,
    scheme: Scheme,
    eps: f64,
    delta: f64,
    budget: &Budget,
    rng: &mut Mt64,
) -> Result<ApproxOutcome> {
    let mut span = cqa_obs::span(scheme.span_name());
    let out = match scheme {
        Scheme::Natural => {
            let mut s = NaturalSampler::new(pair);
            run_monte_carlo(&mut s, 1.0, eps, delta, budget, rng)
        }
        Scheme::Kl => {
            let mut s = KlSampler::new(pair);
            let r = s.r_factor();
            run_monte_carlo(&mut s, r, eps, delta, budget, rng)
        }
        Scheme::Klm => {
            let mut s = KlmSampler::new(pair);
            let r = s.r_factor();
            run_monte_carlo(&mut s, r, eps, delta, budget, rng)
        }
        Scheme::Cover => {
            let res = self_adjusting_coverage(pair, eps, delta, budget, rng);
            if cqa_obs::enabled() {
                if let Ok(out) = &res {
                    telemetry::samples_total().add(out.steps);
                    telemetry::scheme_runs_total().inc();
                }
            }
            let out = res?;
            Ok(ApproxOutcome {
                estimate: out.ratio.clamp(0.0, 1.0),
                samples: out.steps,
                planned_n: out.planned_steps,
            })
        }
    }?;
    span.set_args(out.samples, out.planned_n);
    Ok(out)
}

/// Runs `MonteCarlo[sampler]`, divides by the r-factor, and feeds the
/// observability counters (sample totals, rejections) when tracing is on.
fn run_monte_carlo<S: Sampler>(
    sampler: &mut S,
    r: f64,
    eps: f64,
    delta: f64,
    budget: &Budget,
    rng: &mut Mt64,
) -> Result<ApproxOutcome> {
    let res = monte_carlo(sampler, eps, delta, budget, rng);
    if cqa_obs::enabled() {
        telemetry::samples_rejected_total().add(sampler.rejected());
        if let Ok(out) = &res {
            telemetry::samples_total().add(out.samples);
            telemetry::scheme_runs_total().inc();
        }
    }
    let out = res?;
    Ok(ApproxOutcome {
        estimate: (out.mean / r).clamp(0.0, 1.0),
        samples: out.samples,
        planned_n: out.planned_n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_synopsis::exact_ratio_enumerate;

    /// `span_name` builds its names in match arms, which the cqa-lint
    /// token scan cannot tie to a call site — this cross-check keeps them
    /// in the central registry instead.
    #[test]
    fn scheme_span_names_are_registered() {
        for scheme in ALL_SCHEMES {
            assert!(
                cqa_obs::names::SPANS.contains(&scheme.span_name()),
                "{} missing from crates/obs/src/names.rs",
                scheme.span_name()
            );
        }
    }

    fn overlap_pair() -> AdmissiblePair {
        AdmissiblePair::new(
            vec![vec![(0, 0)], vec![(0, 0), (1, 1)], vec![(1, 1), (2, 2)], vec![(2, 0)]],
            vec![2, 3, 4],
        )
        .unwrap()
    }

    #[test]
    fn all_schemes_agree_with_the_exact_ratio() {
        let pair = overlap_pair();
        let exact = exact_ratio_enumerate(&pair, 100_000).unwrap();
        for (k, scheme) in ALL_SCHEMES.into_iter().enumerate() {
            let mut rng = Mt64::new(500 + k as u64);
            let out =
                approx_relative_frequency(&pair, scheme, 0.1, 0.25, &Budget::unbounded(), &mut rng)
                    .unwrap();
            assert!(
                (out.estimate - exact).abs() <= 0.1 * exact * 1.5,
                "{scheme}: estimate {} vs exact {exact}",
                out.estimate
            );
        }
    }

    #[test]
    fn all_schemes_handle_high_frequency_pairs() {
        // R = 1: the single block is fully covered.
        let pair = AdmissiblePair::new(vec![vec![(0, 0)], vec![(0, 1)]], vec![2]).unwrap();
        for scheme in ALL_SCHEMES {
            let mut rng = Mt64::new(60);
            let out =
                approx_relative_frequency(&pair, scheme, 0.1, 0.25, &Budget::unbounded(), &mut rng)
                    .unwrap();
            assert!(
                (out.estimate - 1.0).abs() <= 0.12,
                "{scheme}: estimate {} for R=1",
                out.estimate
            );
        }
    }

    #[test]
    fn all_schemes_handle_low_frequency_pairs() {
        // Single image over four blocks of size 4: R = 1/256.
        let pair =
            AdmissiblePair::new(vec![vec![(0, 0), (1, 0), (2, 0), (3, 0)]], vec![4, 4, 4, 4])
                .unwrap();
        let exact = 1.0 / 256.0;
        for scheme in ALL_SCHEMES {
            let mut rng = Mt64::new(61);
            let out =
                approx_relative_frequency(&pair, scheme, 0.2, 0.25, &Budget::unbounded(), &mut rng)
                    .unwrap();
            assert!(
                (out.estimate - exact).abs() <= 0.25 * exact + 1e-6,
                "{scheme}: estimate {} vs {exact}",
                out.estimate
            );
        }
    }

    #[test]
    fn scheme_names_match_the_paper() {
        assert_eq!(Scheme::Natural.name(), "Natural");
        assert_eq!(Scheme::Kl.name(), "KL");
        assert_eq!(Scheme::Klm.name(), "KLM");
        assert_eq!(Scheme::Cover.name(), "Cover");
        assert_eq!(format!("{}", Scheme::Kl), "KL");
    }

    #[test]
    fn symbolic_schemes_are_cheaper_when_frequency_is_low() {
        // The motivating property of the symbolic space (§1): for small R,
        // the natural scheme needs far more samples than KL.
        let pair =
            AdmissiblePair::new(vec![vec![(0, 0), (1, 0), (2, 0), (3, 0)]], vec![4, 4, 4, 4])
                .unwrap();
        let mut rng = Mt64::new(62);
        let nat = approx_relative_frequency(
            &pair,
            Scheme::Natural,
            0.2,
            0.25,
            &Budget::unbounded(),
            &mut rng,
        )
        .unwrap();
        let kl =
            approx_relative_frequency(&pair, Scheme::Kl, 0.2, 0.25, &Budget::unbounded(), &mut rng)
                .unwrap();
        assert!(
            nat.samples > 10 * kl.samples,
            "natural {} samples vs KL {}",
            nat.samples,
            kl.samples
        );
    }
}
