//! Estimator-convergence telemetry: per-thread zero-allocation slots.
//!
//! The four sampling loops report how hard they worked and how tight the
//! estimate got — samples drawn, running sample variance, and the
//! one-standard-error CI half-width at termination — through three
//! fixed thread-local slots. The slots are plain `Cell<u64>`s (floats
//! stored as bits): writing them is a couple of thread-local stores, so
//! the export keeps both the static `no-alloc-in-hot-path` lint and the
//! counting-allocator sanitizer (`crates/core/tests/alloc_sanitizer.rs`)
//! green.
//!
//! Slots are per-thread because a request runs its schemes on exactly one
//! worker thread: the server [`reset`]s before a request, the estimators
//! [`tick_sample`] / [`export_estimate`] during it, and the server [`snapshot`]s
//! after — no cross-request or cross-thread races by construction. The
//! parallel offline driver spreads answers over threads; its per-thread
//! slots then describe only that thread's share, which is why the
//! serving path (single-threaded per request) is the consumer.
//!
//! Variance and half-width accumulate by *maximum* across scheme runs
//! since the last reset: a multi-answer query reports its worst answer's
//! convergence, the conservative summary a caller wants.

use std::cell::Cell;

thread_local! {
    static SAMPLES: Cell<u64> = const { Cell::new(0) };
    static VARIANCE_BITS: Cell<u64> = const { Cell::new(0) };
    static CI_BITS: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of this thread's convergence slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Convergence {
    /// Samples drawn since the last [`reset`] (all phases: stopping rule,
    /// variance estimation, final loop, coverage steps).
    pub samples: u64,
    /// Largest running sample variance any scheme run exported.
    pub variance: f64,
    /// Largest one-standard-error CI half-width any scheme run exported.
    pub ci_half_width: f64,
}

/// Zeroes this thread's slots. Call at the start of a request (or a
/// measurement window).
#[inline]
pub fn reset() {
    SAMPLES.with(|s| s.set(0));
    VARIANCE_BITS.with(|s| s.set(0));
    CI_BITS.with(|s| s.set(0));
}

/// Counts one drawn sample. Called from the sampling loops; must stay
/// allocation-free.
#[inline(always)]
pub fn tick_sample() {
    SAMPLES.with(|s| s.set(s.get().saturating_add(1)));
}

/// Exports a scheme run's terminal variance and CI half-width, keeping
/// the per-thread maximum since the last [`reset`]. Allocation-free; NaN
/// inputs are ignored.
#[inline]
pub fn export_estimate(variance: f64, ci_half_width: f64) {
    VARIANCE_BITS.with(|s| {
        if variance > f64::from_bits(s.get()) {
            s.set(variance.to_bits());
        }
    });
    CI_BITS.with(|s| {
        if ci_half_width > f64::from_bits(s.get()) {
            s.set(ci_half_width.to_bits());
        }
    });
}

/// Reads this thread's slots.
#[inline]
pub fn snapshot() -> Convergence {
    Convergence {
        samples: SAMPLES.with(Cell::get),
        variance: f64::from_bits(VARIANCE_BITS.with(Cell::get)),
        ci_half_width: f64::from_bits(CI_BITS.with(Cell::get)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_accumulate_and_reset() {
        reset();
        assert_eq!(snapshot(), Convergence { samples: 0, variance: 0.0, ci_half_width: 0.0 });
        for _ in 0..5 {
            tick_sample();
        }
        export_estimate(0.25, 0.01);
        export_estimate(0.5, 0.005); // variance rises, half-width does not
        let c = snapshot();
        assert_eq!(c.samples, 5);
        assert_eq!(c.variance, 0.5);
        assert_eq!(c.ci_half_width, 0.01);
        reset();
        assert_eq!(snapshot().samples, 0);
    }

    #[test]
    fn nan_exports_are_ignored() {
        reset();
        export_estimate(f64::NAN, f64::NAN);
        let c = snapshot();
        assert_eq!(c.variance, 0.0);
        assert_eq!(c.ci_half_width, 0.0);
    }

    #[test]
    fn slots_are_per_thread() {
        reset();
        tick_sample();
        std::thread::spawn(|| {
            assert_eq!(snapshot().samples, 0, "another thread's slots are untouched");
        })
        .join()
        .unwrap();
        assert_eq!(snapshot().samples, 1);
    }
}
