//! `OptEstimate`: the Dagum–Karp–Luby–Ross optimal Monte-Carlo estimator.
//!
//! Reference: P. Dagum, R. M. Karp, M. Luby, S. M. Ross, *An Optimal
//! Algorithm for Monte Carlo Estimation*, SIAM J. Comput. 29(5), 2000 —
//! the paper's citation \[8\]. Given sampling access to a random variable
//! `Z ∈ [0,1]` with unknown mean `µ > 0`, the `AA` algorithm estimates `µ`
//! within relative error `ε` with confidence `1 − δ`, using an expected
//! number of samples that is optimal up to constants: proportional to
//! `max(σ², ε·µ)/ (ε²µ²)`.
//!
//! Per the benchmark paper's Algorithm 2, `OptEstimate` is used to compute
//! the number of iterations `N` that the plain Monte-Carlo loop then runs;
//! our [`plan_iterations`] performs steps 1–2 of `AA` (stopping rule for a
//! rough mean, then variance estimation) and returns the step-3 sample
//! count. The confidence budget `δ` is split evenly across the three
//! steps.

use crate::sampler::Sampler;
use crate::scheme::Budget;
use crate::telemetry;
use cqa_common::{CqaError, Mt64, Result};

/// Outcome of the stopping-rule algorithm.
#[derive(Debug, Clone, Copy)]
pub struct StoppingOutcome {
    /// The mean estimate `µ̂ = Υ₁ / N`.
    pub mu: f64,
    /// Samples consumed.
    pub samples: u64,
}

/// Outcome of the planning phase (AA steps 1–2).
#[derive(Debug, Clone, Copy)]
pub struct PlanOutcome {
    /// Iterations the final Monte-Carlo loop should run (AA step 3).
    pub n: u64,
    /// Rough mean estimate from the stopping rule.
    pub mu_hat: f64,
    /// Variance proxy `ρ̂ = max(S/N₂, ε·µ̂)`.
    pub rho_hat: f64,
    /// Samples consumed during planning.
    pub samples: u64,
}

const LAMBDA: f64 = std::f64::consts::E - 2.0;

/// `Υ(ε, δ) = 4λ ln(2/δ) / ε²`.
fn upsilon(eps: f64, delta: f64) -> f64 {
    4.0 * LAMBDA * (2.0 / delta).ln() / (eps * eps)
}

fn check_params(eps: f64, delta: f64) -> Result<()> {
    if !(eps > 0.0 && eps.is_finite()) {
        return Err(CqaError::InvalidParameter(format!("ε must be positive, got {eps}")));
    }
    if !(0.0 < delta && delta < 1.0) {
        return Err(CqaError::InvalidParameter(format!("δ must be in (0,1), got {delta}")));
    }
    Ok(())
}

/// How often the sample loops poll the deadline.
pub(crate) const POLL: u64 = 4096;

/// Draws one sample while enforcing the budget. `count` is the running
/// sample counter shared across phases.
#[inline]
pub(crate) fn budgeted_sample<S: Sampler>(
    sampler: &mut S,
    rng: &mut Mt64,
    budget: &Budget,
    count: &mut u64,
    phase: &'static str,
) -> Result<f64> {
    *count = count.saturating_add(1);
    crate::convergence::tick_sample();
    if count.is_multiple_of(POLL) && budget.deadline.expired() {
        if cqa_obs::enabled() {
            telemetry::budget_exhausted_total().inc();
            cqa_obs::instant_args("core/deadline_expired", *count, 0);
        }
        return Err(CqaError::TimedOut { phase });
    }
    if *count > budget.max_samples {
        if cqa_obs::enabled() {
            telemetry::budget_exhausted_total().inc();
            cqa_obs::instant_args("core/sample_cap_hit", *count, 0);
        }
        return Err(CqaError::TimedOut { phase });
    }
    Ok(sampler.sample(rng))
}

/// The DKLR *stopping rule*: samples until the running sum reaches
/// `Υ₁ = 1 + (1+ε)Υ` and outputs `µ̂ = Υ₁/N`, an (ε, δ)-approximation of
/// the mean.
pub fn stopping_rule<S: Sampler>(
    sampler: &mut S,
    eps: f64,
    delta: f64,
    budget: &Budget,
    rng: &mut Mt64,
    count: &mut u64,
) -> Result<StoppingOutcome> {
    check_params(eps, delta)?;
    let mut span = cqa_obs::span("dklr/stopping_rule");
    // For valid (ε, δ) the sum is already > 1; the floor makes the loop's
    // ≥1-iteration guarantee (and thus `n ≥ 1`, `mu > 0` downstream)
    // unconditional even for degenerate Υ.
    let upsilon1 = (1.0 + (1.0 + eps) * upsilon(eps, delta)).max(1.0);
    let mut s = 0.0f64;
    let mut n: u64 = 0;
    while s < upsilon1 {
        s += budgeted_sample(sampler, rng, budget, count, "stopping rule")?;
        n = n.saturating_add(1);
    }
    span.set_args(n, 0);
    Ok(StoppingOutcome { mu: upsilon1 / n as f64, samples: n })
}

/// AA steps 1–2: computes the optimal final iteration count `N` for
/// estimating `E[sampler]` within `(ε, δ)`.
///
/// * Step 1 runs the stopping rule with `(min(1/2, √ε), δ/3)` for a rough
///   mean `µ̂`.
/// * Step 2 draws `N₂ = Υ₂·ε/µ̂` sample *pairs* and sets
///   `ρ̂ = max(S/N₂, ε·µ̂)` where `S` accumulates `(Z₂ᵢ₋₁ − Z₂ᵢ)²/2` — an
///   unbiased variance estimate.
/// * The returned `N = Υ₂·ρ̂/µ̂²` is the step-3 count that [`crate::monte_carlo`]
///   runs (with the remaining δ/3 of the confidence budget).
pub fn plan_iterations<S: Sampler>(
    sampler: &mut S,
    eps: f64,
    delta: f64,
    budget: &Budget,
    rng: &mut Mt64,
    count: &mut u64,
) -> Result<PlanOutcome> {
    check_params(eps, delta)?;
    let sqrt_eps = eps.sqrt();
    let eps1 = 0.5f64.min(sqrt_eps);
    let step = stopping_rule(sampler, eps1, delta / 3.0, budget, rng, count)?;
    let mu_hat = step.mu;
    let mut samples = step.samples;

    let upsilon2 = 2.0
        * (1.0 + sqrt_eps)
        * (1.0 + 2.0 * sqrt_eps)
        * (1.0 + (1.5f64).ln() / (2.0 / (delta / 3.0)).ln())
        * upsilon(eps, delta / 3.0);

    let n2 = cqa_common::checked::f64_to_u64((upsilon2 * eps / mu_hat).ceil()).max(1);
    let mut var_span = cqa_obs::span_args("dklr/variance_estimation", n2, 0);
    let mut s = 0.0f64;
    for _ in 0..n2 {
        let a = budgeted_sample(sampler, rng, budget, &mut samples, "variance estimation")?;
        let b = budgeted_sample(sampler, rng, budget, &mut samples, "variance estimation")?;
        let d = a - b;
        s += d * d / 2.0;
    }
    var_span.set_args(n2, samples - step.samples);
    drop(var_span);
    let rho_hat = (s / n2 as f64).max(eps * mu_hat);
    let n = (upsilon2 * rho_hat / (mu_hat * mu_hat)).ceil().max(1.0);
    if !n.is_finite() || n >= budget.max_samples as f64 {
        return Err(CqaError::TimedOut { phase: "iteration planning" });
    }
    cqa_obs::instant_args("dklr/planned", n as u64, samples);
    *count = samples.max(*count);
    Ok(PlanOutcome { n: n as u64, mu_hat, rho_hat, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Budget;

    /// A deterministic-mean Bernoulli sampler for testing the estimator in
    /// isolation from the CQA machinery.
    struct Bernoulli {
        p: f64,
    }

    impl Sampler for Bernoulli {
        fn sample(&mut self, rng: &mut Mt64) -> f64 {
            if rng.next_f64() < self.p {
                1.0
            } else {
                0.0
            }
        }
        fn r_factor(&self) -> f64 {
            1.0
        }
        fn name(&self) -> &'static str {
            "Bernoulli"
        }
    }

    /// A low-variance sampler: constant value.
    struct Constant {
        v: f64,
    }

    impl Sampler for Constant {
        fn sample(&mut self, _rng: &mut Mt64) -> f64 {
            self.v
        }
        fn r_factor(&self) -> f64 {
            1.0
        }
        fn name(&self) -> &'static str {
            "Constant"
        }
    }

    #[test]
    fn stopping_rule_estimates_bernoulli_mean() {
        let mut rng = Mt64::new(1);
        let mut count = 0;
        for &p in &[0.9, 0.5, 0.1] {
            let out = stopping_rule(
                &mut Bernoulli { p },
                0.1,
                0.25,
                &Budget::unbounded(),
                &mut rng,
                &mut count,
            )
            .unwrap();
            assert!((out.mu - p).abs() <= 0.15 * p, "stopping rule gave {} for mean {p}", out.mu);
        }
    }

    #[test]
    fn stopping_rule_sample_count_scales_inversely_with_mean() {
        let mut rng = Mt64::new(2);
        let mut count = 0;
        let budget = Budget::unbounded();
        let hi = stopping_rule(&mut Bernoulli { p: 0.5 }, 0.2, 0.25, &budget, &mut rng, &mut count)
            .unwrap();
        let lo =
            stopping_rule(&mut Bernoulli { p: 0.01 }, 0.2, 0.25, &budget, &mut rng, &mut count)
                .unwrap();
        assert!(
            lo.samples > 10 * hi.samples,
            "expected many more samples for small mean: {} vs {}",
            lo.samples,
            hi.samples
        );
    }

    #[test]
    fn plan_iterations_reflects_variance() {
        // A constant sampler has zero variance → ρ̂ = ε·µ̂ → far fewer final
        // iterations than a fair Bernoulli of the same mean.
        let mut rng = Mt64::new(3);
        let budget = Budget::unbounded();
        let mut count = 0;
        let plan_const =
            plan_iterations(&mut Constant { v: 0.5 }, 0.1, 0.25, &budget, &mut rng, &mut count)
                .unwrap();
        let mut count = 0;
        let plan_bern =
            plan_iterations(&mut Bernoulli { p: 0.5 }, 0.1, 0.25, &budget, &mut rng, &mut count)
                .unwrap();
        assert!(
            plan_bern.n > plan_const.n,
            "variance should increase iterations: {} vs {}",
            plan_bern.n,
            plan_const.n
        );
    }

    #[test]
    fn sample_budget_is_enforced() {
        let mut rng = Mt64::new(4);
        let budget = Budget { max_samples: 500, ..Budget::unbounded() };
        let mut count = 0;
        let res =
            stopping_rule(&mut Bernoulli { p: 0.001 }, 0.05, 0.1, &budget, &mut rng, &mut count);
        assert!(matches!(res, Err(CqaError::TimedOut { .. })));
    }

    #[test]
    fn deadline_is_enforced() {
        let mut rng = Mt64::new(5);
        let budget =
            Budget { deadline: cqa_common::Deadline::after_secs(0.02), max_samples: u64::MAX };
        let mut count = 0;
        // Mean 1e-9 would need ~1e10 samples; the deadline fires first.
        let res =
            stopping_rule(&mut Bernoulli { p: 1e-9 }, 0.1, 0.25, &budget, &mut rng, &mut count);
        assert!(matches!(res, Err(CqaError::TimedOut { .. })));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut rng = Mt64::new(6);
        let mut count = 0;
        let b = Budget::unbounded();
        assert!(
            stopping_rule(&mut Constant { v: 0.5 }, 0.0, 0.25, &b, &mut rng, &mut count).is_err()
        );
        assert!(
            stopping_rule(&mut Constant { v: 0.5 }, 0.1, 0.0, &b, &mut rng, &mut count).is_err()
        );
        assert!(
            stopping_rule(&mut Constant { v: 0.5 }, 0.1, 1.0, &b, &mut rng, &mut count).is_err()
        );
    }

    #[test]
    fn confidence_holds_empirically() {
        // Repeat the stopping rule many times; the failure rate should stay
        // below δ (the guarantee is conservative in practice).
        let delta = 0.25;
        let eps = 0.2;
        let p = 0.3;
        let mut failures = 0;
        let budget = Budget::unbounded();
        for seed in 0..60 {
            let mut rng = Mt64::new(1000 + seed);
            let mut count = 0;
            let out =
                stopping_rule(&mut Bernoulli { p }, eps, delta, &budget, &mut rng, &mut count)
                    .unwrap();
            if (out.mu - p).abs() > eps * p {
                failures += 1;
            }
        }
        assert!(failures as f64 / 60.0 <= delta, "failure rate {failures}/60 exceeds δ");
    }
}
