//! `MonteCarlo[Sample]` (Algorithm 2): the optimal Monte-Carlo estimator.
//!
//! First `OptEstimate` computes the iteration count `N` (AA steps 1–2,
//! [`crate::optest::plan_iterations`]); then the loop accumulates `N`
//! fresh samples and returns `S/N`. By Lemma 4.2 this is an efficient
//! randomized approximation scheme for `EV[Sample]` whenever the sampler
//! runs in polynomial time and its expectation is polynomially bounded
//! away from zero — which Lemmas 4.3/4.5/4.7 establish for the three
//! samplers.

use crate::optest::{budgeted_sample, plan_iterations};
use crate::sampler::Sampler;
use crate::scheme::Budget;
use cqa_common::{Mt64, Result};

/// Outcome of `MonteCarlo[Sample]`.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloOutcome {
    /// The estimate of `E[Sample]` (the raw mean, *not* yet divided by the
    /// sampler's r-factor).
    pub mean: f64,
    /// The iteration count `N` chosen by `OptEstimate`.
    pub planned_n: u64,
    /// Total samples drawn (planning + final loop).
    pub samples: u64,
}

/// Runs Algorithm 2 on a sampler.
pub fn monte_carlo<S: Sampler>(
    sampler: &mut S,
    eps: f64,
    delta: f64,
    budget: &Budget,
    rng: &mut Mt64,
) -> Result<MonteCarloOutcome> {
    let mut count: u64 = 0;
    let plan = plan_iterations(sampler, eps, delta, budget, rng, &mut count)?;
    let mut loop_span = cqa_obs::span_args("core/mc_final_loop", plan.n, 0);
    let mut s = 0.0f64;
    let mut ss = 0.0f64;
    // repeat … until ctr = N
    for _ in 0..plan.n {
        let z = budgeted_sample(sampler, rng, budget, &mut count, "monte-carlo loop")?;
        s += z;
        ss += z * z;
    }
    loop_span.set_args(plan.n, count);
    let n_f = plan.n as f64;
    let mean = s / n_f;
    // Convergence export: the final loop's running sample variance and the
    // one-standard-error half-width of its mean.
    let variance = (ss / n_f - mean * mean).max(0.0);
    crate::convergence::export_estimate(variance, (variance / n_f).sqrt());
    Ok(MonteCarloOutcome { mean, planned_n: plan.n, samples: count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{KlSampler, KlmSampler, NaturalSampler};
    use cqa_synopsis::{exact_ratio_enumerate, AdmissiblePair};

    fn overlap_pair() -> AdmissiblePair {
        AdmissiblePair::new(
            vec![vec![(0, 0)], vec![(0, 0), (1, 1)], vec![(1, 1), (2, 2)], vec![(2, 0)]],
            vec![2, 3, 4],
        )
        .unwrap()
    }

    #[test]
    fn monte_carlo_natural_approximates_the_ratio() {
        let pair = overlap_pair();
        let exact = exact_ratio_enumerate(&pair, 100_000).unwrap();
        let mut rng = Mt64::new(21);
        let out =
            monte_carlo(&mut NaturalSampler::new(&pair), 0.1, 0.25, &Budget::unbounded(), &mut rng)
                .unwrap();
        assert!(
            (out.mean - exact).abs() <= 0.1 * exact * 1.5,
            "estimate {} vs exact {exact}",
            out.mean
        );
        assert!(out.planned_n >= 1);
        assert!(out.samples >= out.planned_n);
    }

    #[test]
    fn monte_carlo_symbolic_needs_the_r_factor() {
        let pair = overlap_pair();
        let exact = exact_ratio_enumerate(&pair, 100_000).unwrap();
        let mut rng = Mt64::new(22);
        let mut kl = KlSampler::new(&pair);
        let r = kl.r_factor();
        let out = monte_carlo(&mut kl, 0.1, 0.25, &Budget::unbounded(), &mut rng).unwrap();
        let est = out.mean / r;
        assert!((est - exact).abs() <= 0.1 * exact * 1.5, "KL estimate {est} vs {exact}");

        let mut klm = KlmSampler::new(&pair);
        let r = klm.r_factor();
        let out = monte_carlo(&mut klm, 0.1, 0.25, &Budget::unbounded(), &mut rng).unwrap();
        let est = out.mean / r;
        assert!((est - exact).abs() <= 0.1 * exact * 1.5, "KLM estimate {est} vs {exact}");
    }

    #[test]
    fn epsilon_guarantee_holds_over_repetitions() {
        // With ε=0.15, δ=0.25 the failure rate over repetitions must stay
        // around/below δ.
        let pair = overlap_pair();
        let exact = exact_ratio_enumerate(&pair, 100_000).unwrap();
        let eps = 0.15;
        let mut failures = 0;
        let runs = 40;
        for seed in 0..runs {
            let mut rng = Mt64::new(3000 + seed);
            let out = monte_carlo(
                &mut NaturalSampler::new(&pair),
                eps,
                0.25,
                &Budget::unbounded(),
                &mut rng,
            )
            .unwrap();
            if (out.mean - exact).abs() > eps * exact {
                failures += 1;
            }
        }
        assert!(failures as f64 / runs as f64 <= 0.25, "failure rate {failures}/{runs}");
    }

    #[test]
    fn tighter_epsilon_costs_more_samples() {
        let pair = overlap_pair();
        let mut rng = Mt64::new(23);
        let loose =
            monte_carlo(&mut NaturalSampler::new(&pair), 0.3, 0.25, &Budget::unbounded(), &mut rng)
                .unwrap();
        let tight = monte_carlo(
            &mut NaturalSampler::new(&pair),
            0.05,
            0.25,
            &Budget::unbounded(),
            &mut rng,
        )
        .unwrap();
        assert!(
            tight.samples > loose.samples,
            "tight {} vs loose {}",
            tight.samples,
            loose.samples
        );
    }
}
