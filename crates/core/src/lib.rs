#![warn(missing_docs)]

//! Approximation schemes for consistent query answering — the paper's
//! primary contribution.
//!
//! Given a database `D`, primary keys `Σ`, a CQ `Q(x̄)` and error
//! parameters `ε, δ`, a *data-efficient randomized approximation scheme*
//! for `RelativeFreq` outputs, for each candidate answer `t̄`, a value
//! within relative error `ε` of `R_{D,Σ,Q}(t̄)` with probability ≥ 1 − δ,
//! in time polynomial in `‖D‖`, `1/ε`, `log(1/δ)` (§3).
//!
//! Four schemes are implemented, all operating on encoded synopses
//! (Lemma 4.1):
//!
//! | module | algorithm |
//! |---|---|
//! | [`sampler`] | Samplers 1–3: `SampleNatural`, `SampleKL`, `SampleKLM` |
//! | [`optest`]  | `OptEstimate`: the Dagum–Karp–Luby–Ross optimal Monte-Carlo estimator |
//! | [`montecarlo`] | `MonteCarlo[Sample]` (Algorithm 2) |
//! | [`coverage`] | `SelfAdjustingCoverage` (Algorithm 6, after Karp–Luby–Madras) |
//! | [`scheme`] | the four schemes `Natural`, `KL`, `KLM`, `Cover` (Algorithms 3–5) |
//! | [`driver`] | `ApxCQA` (Algorithm 1 with the shared preprocessing of §5) |

pub mod coverage;
pub mod driver;
pub mod montecarlo;
pub mod optest;
pub mod sampler;
pub mod scheme;
mod telemetry;

pub use coverage::{coverage_iterations, self_adjusting_coverage, CoverageOutcome};
pub use driver::{apx_cqa, apx_cqa_on_synopses, apx_cqa_parallel, ApxCqaResult, TupleEstimate};
pub use montecarlo::{monte_carlo, MonteCarloOutcome};
pub use optest::{plan_iterations, stopping_rule, PlanOutcome, StoppingOutcome};
pub use sampler::{KlSampler, KlmSampler, NaturalSampler, Sampler, SymbolicDraw};
pub use scheme::{approx_relative_frequency, ApproxOutcome, Budget, Scheme, ALL_SCHEMES};
