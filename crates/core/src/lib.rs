#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Approximation schemes for consistent query answering — the paper's
//! primary contribution.
//!
//! Given a database `D`, primary keys `Σ`, a CQ `Q(x̄)` and error
//! parameters `ε, δ`, a *data-efficient randomized approximation scheme*
//! for `RelativeFreq` outputs, for each candidate answer `t̄`, a value
//! within relative error `ε` of `R_{D,Σ,Q}(t̄)` with probability ≥ 1 − δ,
//! in time polynomial in `‖D‖`, `1/ε`, `log(1/δ)` (§3).
//!
//! Four schemes are implemented, all operating on encoded synopses
//! (Lemma 4.1):
//!
//! | module | algorithm |
//! |---|---|
//! | [`sampler`] | Samplers 1–3: `SampleNatural`, `SampleKL`, `SampleKLM` |
//! | [`optest`]  | `OptEstimate`: the Dagum–Karp–Luby–Ross optimal Monte-Carlo estimator |
//! | [`montecarlo`] | `MonteCarlo[Sample]` (Algorithm 2) |
//! | [`coverage`] | `SelfAdjustingCoverage` (Algorithm 6, after Karp–Luby–Madras) |
//! | [`scheme`] | the four schemes `Natural`, `KL`, `KLM`, `Cover` (Algorithms 3–5) |
//! | [`driver`] | `ApxCQA` (Algorithm 1 with the shared preprocessing of §5) |
//! | [`convergence`] | per-thread estimator-convergence telemetry slots |
//!
//! # Example
//!
//! The synopsis → scheme pipeline on the paper's Example 1.1: preprocess
//! the inconsistent database once (§5), then run an estimator over the
//! synopses. Alice works in IT in both repairs, Bob in one of two:
//!
//! ```
//! use cqa_common::Mt64;
//! use cqa_core::{apx_cqa_on_synopses, Budget, Scheme};
//! use cqa_query::parse;
//! use cqa_storage::{ColumnType, Database, Schema, Value};
//! use cqa_synopsis::{build_synopses, BuildOptions};
//!
//! let schema = Schema::builder()
//!     .relation(
//!         "employee",
//!         &[("id", ColumnType::Int), ("name", ColumnType::Str), ("dept", ColumnType::Str)],
//!         Some(1),
//!     )
//!     .build();
//! let mut db = Database::new(schema);
//! for (id, name, dept) in [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT")] {
//!     db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])?;
//! }
//!
//! let q = parse(db.schema(), "Q(n) :- employee(i, n, 'IT')")?;
//! let syn = build_synopses(&db, &q, BuildOptions::default())?;
//! let mut rng = Mt64::new(42);
//! let res = apx_cqa_on_synopses(&syn, Scheme::Klm, 0.1, 0.25, &Budget::unbounded(), &mut rng)?;
//! for a in &res.answers {
//!     let expect = if db.resolve(a.tuple[0]) == Value::str("Alice") { 1.0 } else { 0.5 };
//!     assert!((a.frequency - expect).abs() <= 0.1 * expect);
//! }
//! # Ok::<(), cqa_common::CqaError>(())
//! ```

pub mod convergence;
pub mod coverage;
pub mod driver;
pub mod montecarlo;
pub mod optest;
pub mod sampler;
pub mod scheme;
mod telemetry;

pub use convergence::Convergence;
pub use coverage::{coverage_iterations, self_adjusting_coverage, CoverageOutcome};
pub use driver::{apx_cqa, apx_cqa_on_synopses, apx_cqa_parallel, ApxCqaResult, TupleEstimate};
pub use montecarlo::{monte_carlo, MonteCarloOutcome};
pub use optest::{plan_iterations, stopping_rule, PlanOutcome, StoppingOutcome};
pub use sampler::{KlSampler, KlmSampler, NaturalSampler, Sampler, SymbolicDraw};
pub use scheme::{approx_relative_frequency, ApproxOutcome, Budget, Scheme, ALL_SCHEMES};
