//! Samplers 1–3: the randomized procedures the Monte-Carlo estimators are
//! parameterized with (§4.2).
//!
//! Every sampler takes an admissible pair `(H, B)` and outputs a number in
//! `[0, 1]`; a sampler is *r-good* when `E[Sample] = R(H, B) · r` and the
//! expectation is polynomially bounded away from zero. The three samplers:
//!
//! * [`NaturalSampler`] draws `I ∈ db(B)` uniformly and reports whether
//!   some image is contained — 1-good (Lemma 4.3).
//! * [`KlSampler`] draws `(i, I)` from the symbolic space `S•` and reports
//!   whether no earlier image is contained — `|db(B)|/|S•|`-good
//!   (Lemma 4.5, Karp–Luby).
//! * [`KlmSampler`] draws the same way and reports `1/k` where `k` is the
//!   number of contained images — same goodness, lower variance but every
//!   sample pays an `O(Σ|Hⱼ|)` scan (Lemma 4.7, Karp–Luby–Madras).
//!
//! Sampling `(i, I)` uniformly from `S•` uses the factorization
//! `Pr[i] = |I^i|/|S•| ∝ 1/|db(B_{H_i})|` (an O(1) alias-table draw)
//! followed by a uniform draw of the unforced blocks.

use cqa_common::{AliasTable, Mt64};
use cqa_synopsis::AdmissiblePair;

/// A randomized procedure producing values in `[0, 1]` whose expectation
/// determines `R(H, B)` through the factor [`Sampler::r_factor`].
pub trait Sampler {
    /// Draws one sample.
    fn sample(&mut self, rng: &mut Mt64) -> f64;

    /// The `r` of r-goodness: `E[sample] = R(H, B) · r`.
    fn r_factor(&self) -> f64;

    /// Display name.
    fn name(&self) -> &'static str;

    /// Zero-contribution draws so far: natural-space misses and KL draws
    /// discarded because an earlier image was contained. Feeds the
    /// `core_samples_rejected_total` observability counter; samplers
    /// without a rejection notion report 0.
    fn rejected(&self) -> u64 {
        0
    }
}

/// Sampler 1: uniform over the natural space `db(B)`.
pub struct NaturalSampler<'a> {
    pair: &'a AdmissiblePair,
    chosen: Vec<u32>,
    rejected: u64,
}

impl<'a> NaturalSampler<'a> {
    /// Prepares a sampler for `pair`.
    pub fn new(pair: &'a AdmissiblePair) -> Self {
        NaturalSampler { pair, chosen: vec![0; pair.num_blocks()], rejected: 0 }
    }
}

impl Sampler for NaturalSampler<'_> {
    // cqa-lint: hot-path begin — one call per Monte-Carlo sample
    fn sample(&mut self, rng: &mut Mt64) -> f64 {
        for (b, slot) in self.chosen.iter_mut().enumerate() {
            *slot = rng.below(self.pair.block_size(b as u32) as u64) as u32;
        }
        let hit = (0..self.pair.num_images()).any(|i| self.pair.image_contained(i, &self.chosen));
        if hit {
            1.0
        } else {
            self.rejected += 1;
            0.0
        }
    }
    // cqa-lint: hot-path end

    fn r_factor(&self) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "SampleNatural"
    }

    fn rejected(&self) -> u64 {
        self.rejected
    }
}

/// Shared machinery for drawing `(i, I)` uniformly from the symbolic space
/// `S• = {(i, I) | I ∈ I^i}`.
pub struct SymbolicDraw<'a> {
    pair: &'a AdmissiblePair,
    alias: AliasTable,
    chosen: Vec<u32>,
}

impl<'a> SymbolicDraw<'a> {
    /// Precomputes the alias table of image weights `|I^i| / |S•|`.
    pub fn new(pair: &'a AdmissiblePair) -> Self {
        SymbolicDraw { pair, alias: pair.image_alias(), chosen: vec![0; pair.num_blocks()] }
    }

    /// The underlying pair.
    pub fn pair(&self) -> &AdmissiblePair {
        self.pair
    }

    /// Draws `(i, I)`: the image index is returned, the database `I` is
    /// left in the internal `chosen` buffer.
    // cqa-lint: hot-path begin — one call per KL/KLM sample
    #[inline]
    pub fn draw(&mut self, rng: &mut Mt64) -> usize {
        let i = self.alias.sample(rng);
        for (b, slot) in self.chosen.iter_mut().enumerate() {
            *slot = rng.below(self.pair.block_size(b as u32) as u64) as u32;
        }
        // Force the facts of H_i: every I ∈ I^i contains them, and the
        // remaining blocks stay uniform, so (i, I) is uniform on S•.
        for a in self.pair.image(i) {
            self.chosen[a.block as usize] = a.tid;
        }
        i
    }
    // cqa-lint: hot-path end

    /// The chosen database from the last [`Self::draw`].
    #[inline]
    pub fn chosen(&self) -> &[u32] {
        &self.chosen
    }
}

/// Sampler 2 (`SampleKL`): 1 iff no image *earlier in the canonical order*
/// is contained in `I`.
pub struct KlSampler<'a> {
    draw: SymbolicDraw<'a>,
    r: f64,
    rejected: u64,
}

impl<'a> KlSampler<'a> {
    /// Prepares a sampler for `pair`.
    pub fn new(pair: &'a AdmissiblePair) -> Self {
        KlSampler { draw: SymbolicDraw::new(pair), r: 1.0 / pair.s_ratio(), rejected: 0 }
    }
}

impl Sampler for KlSampler<'_> {
    // cqa-lint: hot-path begin — one call per Monte-Carlo sample
    fn sample(&mut self, rng: &mut Mt64) -> f64 {
        let i = self.draw.draw(rng);
        let pair = self.draw.pair;
        let chosen = &self.draw.chosen;
        for j in 0..i {
            if pair.image_contained(j, chosen) {
                self.rejected += 1;
                return 0.0;
            }
        }
        1.0
    }
    // cqa-lint: hot-path end

    fn r_factor(&self) -> f64 {
        self.r
    }

    fn name(&self) -> &'static str {
        "SampleKL"
    }

    fn rejected(&self) -> u64 {
        self.rejected
    }
}

/// Sampler 3 (`SampleKLM`): `1/k` where `k = |{j : H_j ⊆ I}| ≥ 1`.
pub struct KlmSampler<'a> {
    draw: SymbolicDraw<'a>,
    r: f64,
}

impl<'a> KlmSampler<'a> {
    /// Prepares a sampler for `pair`.
    pub fn new(pair: &'a AdmissiblePair) -> Self {
        KlmSampler { draw: SymbolicDraw::new(pair), r: 1.0 / pair.s_ratio() }
    }
}

impl Sampler for KlmSampler<'_> {
    // cqa-lint: hot-path begin — one call per Monte-Carlo sample
    fn sample(&mut self, rng: &mut Mt64) -> f64 {
        let _ = self.draw.draw(rng);
        let pair = self.draw.pair;
        let chosen = &self.draw.chosen;
        let mut k = 0u32;
        for j in 0..pair.num_images() {
            if pair.image_contained(j, chosen) {
                k += 1;
            }
        }
        debug_assert!(k >= 1, "the drawn image must be contained");
        1.0 / k as f64
    }
    // cqa-lint: hot-path end

    fn r_factor(&self) -> f64 {
        self.r
    }

    fn name(&self) -> &'static str {
        "SampleKLM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_common::RunningStats;
    use cqa_synopsis::exact_ratio_enumerate;

    fn example_pair() -> AdmissiblePair {
        AdmissiblePair::new(vec![vec![(0, 1), (1, 0)], vec![(0, 1), (1, 1)]], vec![2, 2]).unwrap()
    }

    fn overlap_pair() -> AdmissiblePair {
        // Overlapping images over three blocks of mixed sizes.
        AdmissiblePair::new(
            vec![vec![(0, 0)], vec![(0, 0), (1, 1)], vec![(1, 1), (2, 2)], vec![(2, 0)]],
            vec![2, 3, 4],
        )
        .unwrap()
    }

    fn empirical_mean<S: Sampler>(mut s: S, n: usize, seed: u64) -> f64 {
        let mut rng = Mt64::new(seed);
        let mut stats = RunningStats::new();
        for _ in 0..n {
            let x = s.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x), "sample {x} out of [0,1]");
            stats.push(x);
        }
        stats.mean()
    }

    /// E[sample] · (1/r) should equal R(H,B) for every sampler — the
    /// r-goodness lemmas 4.3, 4.5, 4.7.
    fn check_r_good(pair: &AdmissiblePair, seed: u64) {
        let exact = exact_ratio_enumerate(pair, 1_000_000).unwrap();
        let n = 200_000;
        let nat = empirical_mean(NaturalSampler::new(pair), n, seed);
        assert!((nat - exact).abs() < 0.01, "natural mean {nat} vs R {exact}");

        let kl_mean = empirical_mean(KlSampler::new(pair), n, seed + 1);
        let kl_est = kl_mean / KlSampler::new(pair).r_factor();
        assert!((kl_est - exact).abs() < 0.01, "KL estimate {kl_est} vs R {exact}");

        let klm_mean = empirical_mean(KlmSampler::new(pair), n, seed + 2);
        let klm_est = klm_mean / KlmSampler::new(pair).r_factor();
        assert!((klm_est - exact).abs() < 0.01, "KLM estimate {klm_est} vs R {exact}");
    }

    #[test]
    fn samplers_are_r_good_on_example() {
        check_r_good(&example_pair(), 11);
    }

    #[test]
    fn samplers_are_r_good_on_overlapping_images() {
        check_r_good(&overlap_pair(), 12);
    }

    #[test]
    fn samplers_are_r_good_on_random_pairs() {
        let mut rng = Mt64::new(77);
        for round in 0..5 {
            // Small random pair; reuse the synopsis crate's generator shape.
            let nblocks = 2 + rng.index(3);
            let sizes: Vec<u32> = (0..nblocks).map(|_| 2 + rng.below(3) as u32).collect();
            let nimages = 1 + rng.index(4);
            let images: Vec<Vec<(u32, u32)>> = (0..nimages)
                .map(|_| {
                    let natoms = 1 + rng.index(2);
                    rng.sample_indices(nblocks, natoms)
                        .into_iter()
                        .map(|b| (b as u32, rng.below(sizes[b] as u64) as u32))
                        .collect()
                })
                .collect();
            let pair = AdmissiblePair::new(images, sizes).unwrap();
            check_r_good(&pair, 100 + round);
        }
    }

    #[test]
    fn kl_and_klm_have_the_same_expectation() {
        let pair = overlap_pair();
        let kl = empirical_mean(KlSampler::new(&pair), 300_000, 5);
        let klm = empirical_mean(KlmSampler::new(&pair), 300_000, 6);
        assert!((kl - klm).abs() < 0.01, "KL {kl} vs KLM {klm}");
    }

    #[test]
    fn klm_variance_is_no_larger_than_kl() {
        // The variance-reduction claim of §4.2: Var[SampleKLM] ≤ Var[SampleKL]
        // (both have the same mean; KLM replaces an indicator with its
        // conditional expectation).
        let pair = overlap_pair();
        let mut rng = Mt64::new(42);
        let mut kl = KlSampler::new(&pair);
        let mut klm = KlmSampler::new(&pair);
        let mut s_kl = RunningStats::new();
        let mut s_klm = RunningStats::new();
        for _ in 0..200_000 {
            s_kl.push(kl.sample(&mut rng));
            s_klm.push(klm.sample(&mut rng));
        }
        assert!(
            s_klm.variance() <= s_kl.variance() + 0.005,
            "KLM variance {} vs KL {}",
            s_klm.variance(),
            s_kl.variance()
        );
    }

    #[test]
    fn natural_sampler_hits_iff_some_image_contained() {
        // With a single image covering every block, the natural sampler's
        // positive rate is exactly 1/|db(B)|.
        let pair = AdmissiblePair::new(vec![vec![(0, 0), (1, 0)]], vec![3, 3]).unwrap();
        let mean = empirical_mean(NaturalSampler::new(&pair), 200_000, 9);
        assert!((mean - 1.0 / 9.0).abs() < 0.01);
    }

    #[test]
    fn symbolic_draw_always_contains_drawn_image() {
        let pair = overlap_pair();
        let mut draw = SymbolicDraw::new(&pair);
        let mut rng = Mt64::new(3);
        for _ in 0..10_000 {
            let i = draw.draw(&mut rng);
            assert!(pair.image_contained(i, draw.chosen()));
        }
    }

    #[test]
    fn symbolic_draw_index_distribution_matches_weights() {
        let pair = overlap_pair();
        let mut draw = SymbolicDraw::new(&pair);
        let mut rng = Mt64::new(4);
        let n = 300_000;
        let mut counts = vec![0usize; pair.num_images()];
        for _ in 0..n {
            counts[draw.draw(&mut rng)] += 1;
        }
        let total: f64 = (0..pair.num_images()).map(|i| pair.inv_db_bh(i)).sum();
        for (i, &c) in counts.iter().enumerate() {
            let expect = pair.inv_db_bh(i) / total;
            let got = c as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "image {i}: {got} vs {expect}");
        }
    }
}
