//! `SelfAdjustingCoverage` (Algorithm 6): the Karp–Luby–Madras coverage
//! algorithm for the union-of-sets problem, adapted to synopses.
//!
//! In contrast to the Monte-Carlo schemes, the iteration budget
//! `N = ⌈8(1+ε)·|H|·ln(3/δ) / ((1−ε²/8)·ε²)⌉` is computed
//! *deterministically* — more predictable, but linear in `|H|` with a
//! large constant, which is exactly why the paper finds `Cover` slow on
//! Boolean queries (large `|H|`) and competitive only when synopses are
//! tiny (§7).
//!
//! The algorithm estimates `|⋃ᵢ I^i|` — the numerator of `R(H,B)` — by
//! repeatedly drawing `(i, I) ∈ S•` and counting how many uniform probes
//! `j` it takes until `I ∈ I^j`. We return the estimate as a *ratio* to
//! `|db(B)|` (using `|S•|/|db(B)| = Σᵢ 1/|db(B_{H_i})|`), so no big-number
//! arithmetic is needed.

use crate::sampler::SymbolicDraw;
use crate::scheme::Budget;
use cqa_common::{CqaError, Mt64, Result};
use cqa_synopsis::AdmissiblePair;

/// Outcome of the coverage algorithm.
#[derive(Debug, Clone, Copy)]
pub struct CoverageOutcome {
    /// Estimate of `|⋃ᵢ I^i| / |db(B)|`, i.e. of `R(H, B)`.
    pub ratio: f64,
    /// The deterministic step budget `N`.
    pub planned_steps: u64,
    /// Inner-loop steps actually executed.
    pub steps: u64,
    /// Completed outer trials.
    pub trials: u64,
}

/// The deterministic step budget of Algorithm 6.
pub fn coverage_iterations(num_images: usize, eps: f64, delta: f64) -> u64 {
    let h = num_images as f64;
    let n = 8.0 * (1.0 + eps) * h * (3.0 / delta).ln() / ((1.0 - eps * eps / 8.0) * eps * eps);
    cqa_common::checked::f64_to_u64(n.ceil())
}

/// Runs `SelfAdjustingCoverage((H,B), ε, δ)` and converts the union-size
/// estimate into an `R(H,B)` estimate.
pub fn self_adjusting_coverage(
    pair: &AdmissiblePair,
    eps: f64,
    delta: f64,
    budget: &Budget,
    rng: &mut Mt64,
) -> Result<CoverageOutcome> {
    // ε ∈ (0, 1): the protocol's documented accuracy domain. (Algorithm 6
    // only needs ε² < 8, but every admitted request already satisfies the
    // tighter bound, and (0, 1) is what makes the budget formula's divisor
    // (1 − ε²/8)·ε² provably positive.)
    if !(eps > 0.0 && eps < 1.0) {
        return Err(CqaError::InvalidParameter(format!("ε out of range: {eps}")));
    }
    if !(0.0 < delta && delta < 1.0) {
        return Err(CqaError::InvalidParameter(format!("δ must be in (0,1), got {delta}")));
    }
    let h = pair.num_images();
    if h == 0 {
        // An empty image set leaves the estimator 0/0-undefined (and the
        // draw index rng.index(0) degenerate); refuse up front.
        return Err(CqaError::InvalidParameter("admissible pair has no images".into()));
    }
    let n_budget = coverage_iterations(h, eps, delta);
    if n_budget > budget.max_samples {
        return Err(CqaError::TimedOut { phase: "coverage planning" });
    }
    let mut span = cqa_obs::span_args("core/coverage_loop", n_budget, 0);
    let mut draw = SymbolicDraw::new(pair);
    let mut steps: u64 = 0;
    let mut total: u64 = 0;
    let mut trials: u64 = 0;
    let mut prev_steps: u64 = 0;
    let mut len_sum_sq = 0.0f64;
    // `finished` is the goto-finish of Algorithm 6, with one safeguard: we
    // always complete at least one trial so the estimator is well-defined
    // (the theoretical budget makes zero completed trials vanishingly
    // unlikely; a hard guarantee costs nothing).
    'outer: loop {
        let _i = draw.draw(rng);
        loop {
            steps = steps.saturating_add(1);
            crate::convergence::tick_sample();
            if steps.is_multiple_of(crate::optest::POLL) && budget.deadline.expired() {
                if cqa_obs::enabled() {
                    crate::telemetry::budget_exhausted_total().inc();
                    cqa_obs::instant_args("core/deadline_expired", steps, 0);
                }
                return Err(CqaError::TimedOut { phase: "coverage" });
            }
            if steps > n_budget && trials > 0 {
                break 'outer;
            }
            let j = rng.index(h);
            if pair.image_contained(j, draw.chosen()) {
                break;
            }
        }
        total = steps;
        trials = trials.saturating_add(1);
        let len = steps.saturating_sub(prev_steps) as f64;
        len_sum_sq += len * len;
        prev_steps = steps;
    }
    // p := total·|S•| / (|H|·trials), reported relative to |db(B)|.
    let (total_f, images_f, trials_f) = (total as f64, h as f64, trials as f64);
    let scale = pair.s_ratio() / images_f;
    let ratio = total_f * scale / trials_f;
    // Convergence export: the estimator is the mean per-trial probe count
    // scaled by |S•|/(|H|·trials); propagate the trial-length variance
    // through the scale for the running variance and the standard error of
    // the trial mean for the half-width.
    let mean_len = total_f / trials_f;
    let var_len = (len_sum_sq / trials_f - mean_len * mean_len).max(0.0);
    let var_ratio = var_len * scale * scale;
    crate::convergence::export_estimate(var_ratio, (var_ratio / trials_f).sqrt());
    span.set_args(steps, trials);
    Ok(CoverageOutcome { ratio, planned_steps: n_budget, steps, trials })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_synopsis::exact_ratio_enumerate;

    fn overlap_pair() -> AdmissiblePair {
        AdmissiblePair::new(
            vec![vec![(0, 0)], vec![(0, 0), (1, 1)], vec![(1, 1), (2, 2)], vec![(2, 0)]],
            vec![2, 3, 4],
        )
        .unwrap()
    }

    #[test]
    fn coverage_approximates_the_ratio() {
        let pair = overlap_pair();
        let exact = exact_ratio_enumerate(&pair, 100_000).unwrap();
        let mut rng = Mt64::new(31);
        let out =
            self_adjusting_coverage(&pair, 0.1, 0.25, &Budget::unbounded(), &mut rng).unwrap();
        assert!(
            (out.ratio - exact).abs() <= 0.1 * exact * 1.5,
            "coverage {} vs exact {exact}",
            out.ratio
        );
        assert!(out.trials > 0);
        assert!(out.steps >= out.planned_steps);
    }

    #[test]
    fn coverage_on_single_image_pair() {
        // R = 1/|db(B_H)| exactly; the inner loop always succeeds on the
        // first probe (only one image), so steps == trials.
        let pair = AdmissiblePair::new(vec![vec![(0, 1), (1, 2)]], vec![2, 3]).unwrap();
        let exact = 1.0 / 6.0;
        let mut rng = Mt64::new(32);
        let out =
            self_adjusting_coverage(&pair, 0.1, 0.25, &Budget::unbounded(), &mut rng).unwrap();
        // Every trial succeeds on its first probe, so the completed trials
        // equal the step budget and the estimator is exact.
        assert_eq!(out.trials, out.planned_steps);
        assert!((out.ratio - exact).abs() < 1e-9, "got {}", out.ratio);
    }

    #[test]
    fn planned_steps_scale_linearly_in_images() {
        let n1 = coverage_iterations(10, 0.1, 0.25);
        let n2 = coverage_iterations(20, 0.1, 0.25);
        assert!((n2 as f64 / n1 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn planned_steps_match_formula() {
        let eps = 0.1;
        let delta = 0.25;
        let expect = (8.0 * 1.1 * 5.0 * (3.0f64 / 0.25).ln()
            / ((1.0 - eps * eps / 8.0) * eps * eps))
            .ceil() as u64;
        assert_eq!(coverage_iterations(5, eps, delta), expect);
    }

    #[test]
    fn epsilon_guarantee_holds_over_repetitions() {
        let pair = overlap_pair();
        let exact = exact_ratio_enumerate(&pair, 100_000).unwrap();
        let eps = 0.15;
        let mut failures = 0;
        let runs = 30;
        for seed in 0..runs {
            let mut rng = Mt64::new(4000 + seed);
            let out =
                self_adjusting_coverage(&pair, eps, 0.25, &Budget::unbounded(), &mut rng).unwrap();
            if (out.ratio - exact).abs() > eps * exact {
                failures += 1;
            }
        }
        assert!(failures as f64 / runs as f64 <= 0.25, "failures {failures}/{runs}");
    }

    #[test]
    fn sample_budget_is_enforced() {
        let pair = overlap_pair();
        let mut rng = Mt64::new(33);
        let budget = Budget { max_samples: 10, ..Budget::unbounded() };
        assert!(matches!(
            self_adjusting_coverage(&pair, 0.1, 0.25, &budget, &mut rng),
            Err(CqaError::TimedOut { .. })
        ));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let pair = overlap_pair();
        let mut rng = Mt64::new(34);
        let b = Budget::unbounded();
        assert!(self_adjusting_coverage(&pair, 0.0, 0.25, &b, &mut rng).is_err());
        assert!(self_adjusting_coverage(&pair, 0.1, 1.5, &b, &mut rng).is_err());
    }
}
