//! Library-level counters on the process-wide [`cqa_obs`] registry.
//!
//! Handles are cached in `OnceLock`s so the hot paths never touch the
//! registry lock; every increment site is additionally gated behind
//! [`cqa_obs::enabled`], so with tracing off a scheme run pays a single
//! relaxed atomic load here.

use cqa_obs::Counter;
use std::sync::OnceLock;

macro_rules! counter {
    ($fn_name:ident, $name:literal, $help:literal) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static C: OnceLock<Counter> = OnceLock::new();
            C.get_or_init(|| cqa_obs::metrics::global().counter($name, $help))
        }
    };
}

counter!(
    samples_total,
    "core_samples_total",
    "Samples drawn across all scheme runs (planning + final loops)."
);
counter!(
    samples_rejected_total,
    "core_samples_rejected_total",
    "Zero-contribution draws: natural-space misses and KL earlier-image hits."
);
counter!(scheme_runs_total, "core_scheme_runs_total", "Completed ApxRelativeFreq runs.");
counter!(
    budget_exhausted_total,
    "core_budget_exhausted_total",
    "Scheme runs aborted by the wall-clock deadline or the sample cap."
);
