//! `ApxCQA` (Algorithm 1): approximate consistent query answering.
//!
//! Per §5, the implementation deviates from the naive pseudocode for
//! efficiency: a single preprocessing pass builds `enc(syn_{Σ,Q}(D))` —
//! every candidate answer's encoded synopsis — and the approximation
//! scheme is then invoked once per synopsis, never touching the database
//! again. Theorem 3.1: plugging any data-efficient approximation scheme
//! for `RelativeFreq` into this loop yields one for `CQA`.

use crate::scheme::{approx_relative_frequency, Budget, Scheme};
use cqa_common::{Mt64, Result, Stopwatch};
use cqa_query::ConjunctiveQuery;
use cqa_storage::{Database, Datum};
use cqa_synopsis::{build_synopses, BuildOptions, SynopsisSet};
use std::time::Duration;

/// One approximated answer.
#[derive(Debug, Clone)]
pub struct TupleEstimate {
    /// The candidate answer `t̄`.
    pub tuple: Vec<Datum>,
    /// The approximation of `R_{D,Σ,Q}(t̄)`.
    pub frequency: f64,
    /// Samples spent on this tuple.
    pub samples: u64,
}

/// The result of `ApxCQA[scheme]`.
#[derive(Debug, Clone)]
pub struct ApxCqaResult {
    /// The approximated `ans_{D,Σ}(Q)`, ordered by tuple.
    pub answers: Vec<TupleEstimate>,
    /// Wall time of the preprocessing step (synopsis construction).
    pub preprocess_time: Duration,
    /// Wall time of the approximation phase (all tuples).
    pub scheme_time: Duration,
    /// Total samples across all tuples.
    pub total_samples: u64,
}

/// Runs `ApxCQA[scheme]` end to end: preprocessing + one
/// `ApxRelativeFreq` call per candidate answer.
pub fn apx_cqa(
    db: &Database,
    q: &ConjunctiveQuery,
    scheme: Scheme,
    eps: f64,
    delta: f64,
    budget: &Budget,
    rng: &mut Mt64,
) -> Result<ApxCqaResult> {
    let syn =
        build_synopses(db, q, BuildOptions { deadline: Some(budget.deadline), max_homs: None })?;
    apx_cqa_on_synopses(&syn, scheme, eps, delta, budget, rng)
}

/// The approximation phase alone, for callers that already hold the
/// synopsis set (the benchmark harness reuses one preprocessing pass
/// across all four schemes, as the paper does).
pub fn apx_cqa_on_synopses(
    syn: &SynopsisSet,
    scheme: Scheme,
    eps: f64,
    delta: f64,
    budget: &Budget,
    rng: &mut Mt64,
) -> Result<ApxCqaResult> {
    let sw = Stopwatch::start();
    let mut span = cqa_obs::span_args("driver/apx_cqa", syn.entries.len() as u64, 0);
    let mut answers = Vec::with_capacity(syn.entries.len());
    let mut total_samples = 0u64;
    for entry in &syn.entries {
        let out = approx_relative_frequency(&entry.pair, scheme, eps, delta, budget, rng)?;
        total_samples += out.samples;
        answers.push(TupleEstimate {
            tuple: entry.tuple.clone(),
            frequency: out.estimate,
            samples: out.samples,
        });
    }
    span.set_args(syn.entries.len() as u64, total_samples);
    Ok(ApxCqaResult {
        answers,
        preprocess_time: syn.build_time,
        scheme_time: sw.elapsed(),
        total_samples,
    })
}

/// Parallel `ApxCQA`: the approximation phase distributed over worker
/// threads, one candidate answer at a time.
///
/// The paper's appendix notes that "the performance of the approximation
/// schemes for CQA can greatly benefit from a parallel implementation of
/// the sampling phase without additional synchronization overhead"
/// (Appendix E). Synopses are independent, so tuple-level parallelism is
/// exactly that: each worker owns a forked MT19937-64 stream and no shared
/// mutable state. Results are deterministic for a fixed `(seed, threads)`
/// pair because streams are assigned by tuple index, not by scheduling
/// order.
pub fn apx_cqa_parallel(
    syn: &SynopsisSet,
    scheme: Scheme,
    eps: f64,
    delta: f64,
    budget: &Budget,
    seed: u64,
    threads: usize,
) -> Result<ApxCqaResult> {
    let sw = Stopwatch::start();
    let n = syn.entries.len();
    let threads = threads.clamp(1, n.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<Result<TupleEstimate>>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let entry = &syn.entries[i];
                // Stream keyed by tuple index: independent of scheduling.
                let mut rng = cqa_common::Mt64::from_key(&[seed, i as u64, 0x7A11]);
                let out =
                    approx_relative_frequency(&entry.pair, scheme, eps, delta, budget, &mut rng)
                        .map(|o| TupleEstimate {
                            tuple: entry.tuple.clone(),
                            frequency: o.estimate,
                            samples: o.samples,
                        });
                *results[i].lock().expect("no poisoning") = Some(out);
            });
        }
    });
    let mut answers = Vec::with_capacity(n);
    let mut total_samples = 0u64;
    for slot in results {
        let te = slot.into_inner().expect("no poisoning").expect("every slot filled")?;
        total_samples += te.samples;
        answers.push(te);
    }
    Ok(ApxCqaResult {
        answers,
        preprocess_time: syn.build_time,
        scheme_time: sw.elapsed(),
        total_samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ALL_SCHEMES;
    use cqa_query::parse;
    use cqa_storage::ColumnType::*;
    use cqa_storage::{Schema, Value};

    fn example_db() -> Database {
        let schema = Schema::builder()
            .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
            .build();
        let mut db = Database::new(schema);
        for (id, name, dept) in
            [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT")]
        {
            db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])
                .unwrap();
        }
        db
    }

    #[test]
    fn example_1_1_all_schemes_give_one_half() {
        // The relative frequency of the empty tuple is 50% (§1).
        let db = example_db();
        let q = parse(db.schema(), "Q() :- employee(1, n1, d), employee(2, n2, d)").unwrap();
        for (k, scheme) in ALL_SCHEMES.into_iter().enumerate() {
            let mut rng = Mt64::new(700 + k as u64);
            let res = apx_cqa(&db, &q, scheme, 0.1, 0.25, &Budget::unbounded(), &mut rng).unwrap();
            assert_eq!(res.answers.len(), 1);
            assert!(res.answers[0].tuple.is_empty());
            let f = res.answers[0].frequency;
            assert!((f - 0.5).abs() <= 0.08, "{scheme}: frequency {f}");
        }
    }

    #[test]
    fn non_boolean_query_estimates_each_tuple() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(x, n, d)").unwrap();
        let mut rng = Mt64::new(71);
        let res = apx_cqa(&db, &q, Scheme::Klm, 0.1, 0.25, &Budget::unbounded(), &mut rng).unwrap();
        // Bob certain (1.0); Alice and Tim each 0.5.
        assert_eq!(res.answers.len(), 3);
        for te in &res.answers {
            let name = db.resolve(te.tuple[0]).to_string();
            let expected = if name == "'Bob'" { 1.0 } else { 0.5 };
            assert!(
                (te.frequency - expected).abs() <= 0.08,
                "{name}: {} vs {expected}",
                te.frequency
            );
        }
        assert!(res.total_samples > 0);
    }

    #[test]
    fn empty_answer_set_yields_empty_result() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(9, n, d)").unwrap();
        let mut rng = Mt64::new(72);
        let res =
            apx_cqa(&db, &q, Scheme::Natural, 0.1, 0.25, &Budget::unbounded(), &mut rng).unwrap();
        assert!(res.answers.is_empty());
        assert_eq!(res.total_samples, 0);
    }

    #[test]
    fn timings_are_populated() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(x, n, d)").unwrap();
        let mut rng = Mt64::new(73);
        let res = apx_cqa(&db, &q, Scheme::Kl, 0.1, 0.25, &Budget::unbounded(), &mut rng).unwrap();
        assert!(res.scheme_time.as_nanos() > 0);
        // preprocess_time comes from the synopsis builder's stopwatch.
        assert!(res.preprocess_time.as_nanos() > 0);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::scheme::ALL_SCHEMES;
    use cqa_common::Mt64;
    use cqa_query::parse;
    use cqa_storage::ColumnType::*;
    use cqa_storage::{Schema, Value};
    use cqa_synopsis::{build_synopses, BuildOptions};

    fn wide_db() -> Database {
        let schema = Schema::builder().relation("r", &[("k", Int), ("v", Int)], Some(1)).build();
        let mut db = Database::new(schema);
        let mut rng = Mt64::new(1);
        for k in 0..30 {
            for _ in 0..2 {
                db.insert_named("r", &[Value::Int(k), Value::Int(rng.below(6) as i64)]).unwrap();
            }
        }
        db
    }

    #[test]
    fn parallel_matches_sequential_answer_set() {
        let db = wide_db();
        let q = parse(db.schema(), "Q(v) :- r(k, v)").unwrap();
        let syn = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        for scheme in ALL_SCHEMES {
            let par =
                apx_cqa_parallel(&syn, scheme, 0.1, 0.25, &Budget::unbounded(), 9, 4).unwrap();
            let mut rng = Mt64::new(9);
            let seq = apx_cqa_on_synopses(&syn, scheme, 0.1, 0.25, &Budget::unbounded(), &mut rng)
                .unwrap();
            assert_eq!(par.answers.len(), seq.answers.len());
            for (p, s) in par.answers.iter().zip(&seq.answers) {
                assert_eq!(p.tuple, s.tuple);
                // Different RNG streams: estimates agree within the band.
                assert!((p.frequency - s.frequency).abs() < 0.25);
            }
        }
    }

    #[test]
    fn parallel_is_deterministic_for_fixed_seed() {
        let db = wide_db();
        let q = parse(db.schema(), "Q(v) :- r(k, v)").unwrap();
        let syn = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        let a = apx_cqa_parallel(&syn, Scheme::Klm, 0.1, 0.25, &Budget::unbounded(), 7, 4).unwrap();
        let b = apx_cqa_parallel(&syn, Scheme::Klm, 0.1, 0.25, &Budget::unbounded(), 7, 2).unwrap();
        for (x, y) in a.answers.iter().zip(&b.answers) {
            assert_eq!(x.frequency, y.frequency, "thread count must not change results");
            assert_eq!(x.samples, y.samples);
        }
    }

    #[test]
    fn parallel_handles_empty_synopsis_set() {
        let db = wide_db();
        let q = parse(db.schema(), "Q(v) :- r(999, v)").unwrap();
        let syn = build_synopses(&db, &q, BuildOptions::default()).unwrap();
        let res =
            apx_cqa_parallel(&syn, Scheme::Kl, 0.1, 0.25, &Budget::unbounded(), 1, 4).unwrap();
        assert!(res.answers.is_empty());
    }
}
