#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Repairs of an inconsistent database w.r.t. primary keys.
//!
//! A repair keeps exactly one fact from each key-equal block (§2):
//! `rep(D, Σ) = { {α₁,…,αₙ} | ⟨α₁,…,αₙ⟩ ∈ ×_{B ∈ blockΣ(D)} B }`.
//!
//! This crate provides repair counting (log-space), full enumeration and
//! uniform sampling (for small inputs and for ground-truth tests), and an
//! **exact** consistent-query-answering baseline that computes the relative
//! frequency `R_{D,Σ,Q}(t̄)` by brute force. The exact baseline is
//! exponential by design — `RelativeFreq` is `#P`-hard (§2) — and exists to
//! validate the synopsis reduction (Lemma 4.1) and the approximation
//! schemes' ε-guarantees on small instances.

pub mod enumerate;
pub mod exact;
pub mod sample;

pub use enumerate::{repair_count_checked, repair_to_database, RepairIter};
pub use exact::{certain_answer_exact, consistent_answers_exact, relative_frequency_exact};
pub use sample::sample_repair;
