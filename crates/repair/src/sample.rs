//! Uniform sampling of repairs.
//!
//! Because the blocks partition the conflicting facts, choosing one fact
//! uniformly and independently per block yields a uniform distribution over
//! `rep(D, Σ)` — the natural sampling space restricted to the whole
//! database rather than a synopsis.

use crate::enumerate::all_blocks;
use cqa_common::Mt64;
use cqa_storage::{Database, FactRef};

/// Draws a repair uniformly at random (one fact per block).
pub fn sample_repair(db: &Database, rng: &mut Mt64) -> Vec<FactRef> {
    all_blocks(db)
        .into_iter()
        .map(|(rel, rows)| {
            let pick = rows[rng.index(rows.len())];
            FactRef { rel, row: pick }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::RepairIter;
    use cqa_storage::ColumnType::*;
    use cqa_storage::{Schema, Value};
    use std::collections::HashMap;

    fn example_db() -> Database {
        let schema = Schema::builder()
            .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
            .build();
        let mut db = Database::new(schema);
        for (id, name, dept) in
            [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT")]
        {
            db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])
                .unwrap();
        }
        db
    }

    #[test]
    fn samples_are_valid_repairs() {
        let db = example_db();
        let valid: Vec<Vec<FactRef>> = RepairIter::new(&db, 100)
            .unwrap()
            .map(|mut r| {
                r.sort();
                r
            })
            .collect();
        let mut rng = Mt64::new(1);
        for _ in 0..50 {
            let mut s = sample_repair(&db, &mut rng);
            s.sort();
            assert!(valid.contains(&s));
        }
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let db = example_db();
        let mut rng = Mt64::new(2);
        let mut counts: HashMap<Vec<FactRef>, usize> = HashMap::new();
        let n = 40_000;
        for _ in 0..n {
            let mut s = sample_repair(&db, &mut rng);
            s.sort();
            *counts.entry(s).or_default() += 1;
        }
        assert_eq!(counts.len(), 4);
        for (_, c) in counts {
            let freq = c as f64 / n as f64;
            assert!((freq - 0.25).abs() < 0.02, "repair frequency {freq}");
        }
    }
}
