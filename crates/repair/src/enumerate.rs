//! Enumeration of all repairs (small instances only).

use cqa_common::{CqaError, Result};
use cqa_storage::{Database, FactRef, RelId};

/// All blocks of a database as `(relation, rows)` pairs, in a fixed order.
pub(crate) fn all_blocks(db: &Database) -> Vec<(RelId, Vec<u32>)> {
    let mut out = Vec::new();
    for (rel, _) in db.schema().iter() {
        let blocks = db.blocks(rel);
        for (_, rows) in blocks.iter() {
            out.push((rel, rows.to_vec()));
        }
    }
    out
}

/// The exact repair count if it fits in `u128`.
pub fn repair_count_checked(db: &Database) -> Option<u128> {
    let mut total: u128 = 1;
    for (_, rows) in all_blocks(db) {
        total = total.checked_mul(rows.len() as u128)?;
    }
    Some(total)
}

/// Iterates every repair of a database as a set of facts (one per block).
///
/// The iteration order is the odometer order over blocks; each item is the
/// chosen facts in block order.
pub struct RepairIter {
    blocks: Vec<(RelId, Vec<u32>)>,
    /// Current choice per block; `None` once exhausted.
    counters: Option<Vec<usize>>,
    started: bool,
}

impl RepairIter {
    /// Creates an iterator, refusing instances with more than `limit`
    /// repairs.
    pub fn new(db: &Database, limit: u128) -> Result<Self> {
        let count = repair_count_checked(db)
            .ok_or_else(|| CqaError::TooLarge("repair count exceeds u128".into()))?;
        if count > limit {
            return Err(CqaError::TooLarge(format!("{count} repairs exceeds limit {limit}")));
        }
        let blocks = all_blocks(db);
        let counters = if blocks.iter().any(|(_, rows)| rows.is_empty()) {
            None // an empty block means no repairs (cannot happen for real data)
        } else {
            Some(vec![0; blocks.len()])
        };
        Ok(RepairIter { blocks, counters, started: false })
    }

    fn current(&self) -> Option<Vec<FactRef>> {
        let counters = self.counters.as_ref()?;
        Some(
            self.blocks
                .iter()
                .zip(counters)
                .map(|((rel, rows), &c)| FactRef { rel: *rel, row: rows[c] })
                .collect(),
        )
    }

    fn advance(&mut self) {
        let Some(counters) = self.counters.as_mut() else { return };
        for (c, (_, rows)) in counters.iter_mut().zip(&self.blocks) {
            *c += 1;
            if *c < rows.len() {
                return;
            }
            *c = 0;
        }
        self.counters = None;
    }
}

impl Iterator for RepairIter {
    type Item = Vec<FactRef>;

    fn next(&mut self) -> Option<Vec<FactRef>> {
        if self.started {
            self.advance();
        } else {
            self.started = true;
            // The empty database has exactly one repair: the empty one.
        }
        self.current()
    }
}

/// Materializes a repair as a standalone consistent [`Database`] over the
/// same schema (sharing the string dictionary contents by re-insertion).
pub fn repair_to_database(db: &Database, repair: &[FactRef]) -> Database {
    let mut out = Database::new(db.schema().clone());
    for &f in repair {
        let values: Vec<_> = db.fact(f).iter().map(|&d| db.resolve(d)).collect();
        out.insert(f.rel, &values).expect("repair facts are schema-valid");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_storage::ColumnType::*;
    use cqa_storage::{is_consistent, Schema, Value};

    /// The paper's Example 1.1: two blocks of two facts → four repairs.
    fn example_db() -> Database {
        let schema = Schema::builder()
            .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
            .build();
        let mut db = Database::new(schema);
        for (id, name, dept) in
            [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT")]
        {
            db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])
                .unwrap();
        }
        db
    }

    #[test]
    fn example_1_1_has_four_repairs() {
        let db = example_db();
        assert_eq!(repair_count_checked(&db), Some(4));
        let repairs: Vec<_> = RepairIter::new(&db, 1000).unwrap().collect();
        assert_eq!(repairs.len(), 4);
        // All repairs are distinct.
        let mut sorted: Vec<Vec<FactRef>> = repairs
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.sort();
                r
            })
            .collect();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn every_repair_is_consistent_and_maximal() {
        let db = example_db();
        for repair in RepairIter::new(&db, 1000).unwrap() {
            // One fact per block: 2 facts in this instance.
            assert_eq!(repair.len(), 2);
            let rdb = repair_to_database(&db, &repair);
            assert!(is_consistent(&rdb));
            assert_eq!(rdb.fact_count(), 2);
        }
    }

    #[test]
    fn consistent_database_has_one_repair_itself() {
        let schema = Schema::builder().relation("r", &[("k", Int), ("v", Int)], Some(1)).build();
        let mut db = Database::new(schema);
        db.insert_named("r", &[Value::Int(1), Value::Int(10)]).unwrap();
        db.insert_named("r", &[Value::Int(2), Value::Int(20)]).unwrap();
        assert_eq!(repair_count_checked(&db), Some(1));
        let repairs: Vec<_> = RepairIter::new(&db, 10).unwrap().collect();
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].len(), 2);
    }

    #[test]
    fn limit_is_enforced() {
        let db = example_db();
        assert!(matches!(RepairIter::new(&db, 3), Err(CqaError::TooLarge(_))));
    }

    #[test]
    fn empty_database_has_the_empty_repair() {
        let schema = Schema::builder().relation("r", &[("k", Int)], Some(1)).build();
        let db = Database::new(schema);
        let repairs: Vec<_> = RepairIter::new(&db, 10).unwrap().collect();
        assert_eq!(repairs, vec![Vec::<FactRef>::new()]);
    }

    #[test]
    fn repair_count_matches_log_space_count() {
        let db = example_db();
        let exact = repair_count_checked(&db).unwrap() as f64;
        assert!((db.repair_count().value() - exact).abs() < 1e-9);
    }
}
