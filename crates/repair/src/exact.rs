//! Exact consistent query answering by repair enumeration.
//!
//! These are the reference implementations of the problems `RelativeFreq`
//! and `CQA` (§2): exponential-time brute force over `rep(D, Σ)`, used only
//! as ground truth in tests and in the accuracy experiments.

use crate::enumerate::{repair_to_database, RepairIter};
use cqa_common::Result;
use cqa_query::{answers, is_answer, ConjunctiveQuery};
use cqa_storage::{Database, Datum};
use std::collections::HashMap;

/// Default cap on the number of repairs the exact baseline will enumerate.
pub const DEFAULT_REPAIR_LIMIT: u128 = 2_000_000;

/// The exact relative frequency `R_{D,Σ,Q}(t̄)`: the fraction of repairs in
/// which `t̄` is an answer to `Q`.
///
/// Fails with `CqaError::TooLarge` when the instance has more than `limit`
/// repairs.
pub fn relative_frequency_exact(
    db: &Database,
    q: &ConjunctiveQuery,
    t: &[Datum],
    limit: u128,
) -> Result<f64> {
    let mut total: u64 = 0;
    let mut hits: u64 = 0;
    for repair in RepairIter::new(db, limit)? {
        let rdb = repair_to_database(db, &repair);
        total += 1;
        // Datum encodings agree between db and rdb because repair facts are
        // re-inserted in block order; translate via values to be safe.
        let tv: Vec<_> = t.iter().map(|&d| db.resolve(d)).collect();
        let td: Option<Vec<Datum>> = tv.iter().map(|v| rdb.lookup_value(v)).collect();
        if let Some(td) = td {
            if is_answer(&rdb, q, &td)? {
                hits += 1;
            }
        }
    }
    Ok(hits as f64 / total as f64)
}

/// The exact answer set `ans_{D,Σ}(Q)`: every tuple with positive relative
/// frequency, paired with that frequency.
pub fn consistent_answers_exact(
    db: &Database,
    q: &ConjunctiveQuery,
    limit: u128,
) -> Result<Vec<(Vec<Datum>, f64)>> {
    let mut counts: HashMap<Vec<Datum>, u64> = HashMap::new();
    let mut total: u64 = 0;
    for repair in RepairIter::new(db, limit)? {
        let rdb = repair_to_database(db, &repair);
        total += 1;
        for t in answers(&rdb, q)? {
            // Translate the answer tuple back into the original database's
            // datum encoding so callers can compare tuples across repairs.
            let tv: Vec<_> = t.iter().map(|&d| rdb.resolve(d)).collect();
            let td: Vec<Datum> = tv
                .iter()
                .map(|v| db.lookup_value(v).expect("answer values come from db"))
                .collect();
            *counts.entry(td).or_default() += 1;
        }
    }
    let mut out: Vec<(Vec<Datum>, f64)> =
        counts.into_iter().map(|(t, c)| (t, c as f64 / total as f64)).collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// The classical certain-answer test: is `t̄` an answer in *every* repair?
/// Provided for completeness — the paper's refined approach replaces this
/// boolean verdict with the relative frequency.
pub fn certain_answer_exact(
    db: &Database,
    q: &ConjunctiveQuery,
    t: &[Datum],
    limit: u128,
) -> Result<bool> {
    Ok((relative_frequency_exact(db, q, t, limit)? - 1.0).abs() < f64::EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::parse;
    use cqa_storage::ColumnType::*;
    use cqa_storage::{Schema, Value};

    fn example_db() -> Database {
        let schema = Schema::builder()
            .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
            .build();
        let mut db = Database::new(schema);
        for (id, name, dept) in
            [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT")]
        {
            db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])
                .unwrap();
        }
        db
    }

    #[test]
    fn example_1_1_frequency_is_one_half() {
        // "This query is true only in two repairs" out of four → 50% (§1).
        let db = example_db();
        let q = parse(db.schema(), "Q() :- employee(1, n1, d), employee(2, n2, d)").unwrap();
        let f = relative_frequency_exact(&db, &q, &[], 100).unwrap();
        assert!((f - 0.5).abs() < 1e-12);
        assert!(!certain_answer_exact(&db, &q, &[], 100).unwrap());
    }

    #[test]
    fn name_frequencies_reflect_block_structure() {
        let db = example_db();
        // Q(n) :- employee(2, n, d): Alice in half the repairs, Tim in half.
        let q = parse(db.schema(), "Q(n) :- employee(2, n, d)").unwrap();
        let ans = consistent_answers_exact(&db, &q, 100).unwrap();
        assert_eq!(ans.len(), 2);
        for (_, f) in ans {
            assert!((f - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn certain_answer_in_every_repair() {
        let db = example_db();
        // Bob is employee 1's name in every repair.
        let q = parse(db.schema(), "Q(n) :- employee(1, n, d)").unwrap();
        let bob = db.lookup_value(&Value::str("Bob")).unwrap();
        assert!(certain_answer_exact(&db, &q, &[bob], 100).unwrap());
    }

    #[test]
    fn tuple_with_unknown_value_has_zero_frequency() {
        let mut db = example_db();
        let zoe = db.intern_value(&Value::str("Zoe"));
        let q = parse(db.schema(), "Q(n) :- employee(1, n, d)").unwrap();
        let f = relative_frequency_exact(&db, &q, &[zoe], 100).unwrap();
        assert_eq!(f, 0.0);
    }

    #[test]
    fn consistent_database_frequencies_are_binary() {
        let schema = Schema::builder().relation("r", &[("k", Int), ("v", Int)], Some(1)).build();
        let mut db = Database::new(schema);
        db.insert_named("r", &[Value::Int(1), Value::Int(10)]).unwrap();
        let q = parse(db.schema(), "Q(v) :- r(k, v)").unwrap();
        let ans = consistent_answers_exact(&db, &q, 100).unwrap();
        assert_eq!(ans, vec![(vec![Datum::Int(10)], 1.0)]);
    }

    #[test]
    fn respects_the_limit() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(1, n, d)").unwrap();
        assert!(relative_frequency_exact(&db, &q, &[Datum::Int(0)], 2).is_err());
    }
}
